"""TrafficStats facade regression: the historical mutable-field API
must behave identically after the rebase onto registry counters, and
the registry must mirror every value (docs/OBSERVABILITY.md §3)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.server import SimulatedNetwork
from repro.server.network import TRAFFIC_FIELDS, TrafficStats


class TestHistoricalApi:
    """Pre-rebase behaviour, field by field."""

    def test_zero_construction(self):
        stats = TrafficStats()
        assert all(getattr(stats, f) == 0 for f in TRAFFIC_FIELDS)

    def test_keyword_construction(self):
        stats = TrafficStats(round_trips=3, bytes_sent=128)
        assert stats.round_trips == 3
        assert stats.bytes_sent == 128
        assert stats.entry_pdus == 0

    def test_augmented_assignment(self):
        stats = TrafficStats()
        stats.round_trips += 1
        stats.round_trips += 2
        stats.sync_entry_pdus += 5
        assert stats.round_trips == 3
        assert stats.sync_entry_pdus == 5

    def test_plain_assignment(self):
        stats = TrafficStats()
        stats.bytes_sent = 999
        assert stats.bytes_sent == 999

    def test_unknown_attribute_read_raises(self):
        with pytest.raises(AttributeError):
            TrafficStats().no_such_field

    def test_unknown_attribute_write_raises(self):
        with pytest.raises(AttributeError):
            TrafficStats().no_such_field = 1

    def test_reset(self):
        stats = TrafficStats(round_trips=9, requests=9)
        stats.reset()
        assert all(getattr(stats, f) == 0 for f in TRAFFIC_FIELDS)

    def test_as_dict_order(self):
        assert tuple(TrafficStats().as_dict()) == TRAFFIC_FIELDS

    def test_equality(self):
        assert TrafficStats(round_trips=2) == TrafficStats(round_trips=2)
        assert TrafficStats(round_trips=2) != TrafficStats(round_trips=3)
        assert TrafficStats().__eq__(42) is NotImplemented

    def test_repr_lists_fields(self):
        r = repr(TrafficStats(round_trips=2))
        assert r.startswith("TrafficStats(") and "round_trips=2" in r

    def test_snapshot_is_independent(self):
        stats = TrafficStats()
        stats.round_trips += 1
        frozen = stats.snapshot()
        stats.round_trips += 10
        assert frozen.round_trips == 1
        assert stats.round_trips == 11

    def test_subtraction_gives_interval_delta(self):
        stats = TrafficStats()
        stats.entry_pdus += 4
        stats.bytes_sent += 100
        before = stats.snapshot()
        stats.entry_pdus += 6
        stats.bytes_sent += 50
        delta = stats - before
        assert delta.entry_pdus == 6
        assert delta.bytes_sent == 50
        assert delta.round_trips == 0

    def test_subtraction_result_is_detached(self):
        stats = TrafficStats()
        before = stats.snapshot()
        stats.requests += 3
        delta = stats - before
        stats.requests += 100
        assert delta.requests == 3


class TestRegistryMirroring:
    """The facade's second window: the backing registry."""

    def test_fields_alias_net_traffic_counters(self):
        stats = TrafficStats()
        stats.round_trips += 2
        stats.sync_dn_pdus += 7
        d = stats.registry.to_dict()
        assert d["net.traffic.round_trips"] == 2
        assert d["net.traffic.sync_dn_pdus"] == 7

    def test_shared_registry_is_used(self):
        registry = MetricsRegistry()
        stats = TrafficStats(registry=registry)
        stats.requests += 1
        assert registry.to_dict()["net.traffic.requests"] == 1

    def test_counter_writes_are_visible_through_facade(self):
        stats = TrafficStats()
        stats.registry.counter("net.traffic.entry_pdus").inc(5)
        assert stats.entry_pdus == 5

    def test_snapshot_has_private_registry(self):
        stats = TrafficStats()
        stats.round_trips += 1
        frozen = stats.snapshot()
        assert frozen.registry is not stats.registry
        stats.round_trips += 1
        assert frozen.registry.to_dict()["net.traffic.round_trips"] == 1


class TestNetworkIntegration:
    def test_network_charges_show_in_both_windows(self):
        network = SimulatedNetwork()
        network.charge_round_trip()
        network.charge_entries(3, total_bytes=300)
        network.charge_sync_entry(120)
        network.charge_sync_dn()
        assert network.stats.round_trips == 1
        assert network.stats.entry_pdus == 3
        assert network.stats.sync_entry_pdus == 1
        assert network.stats.sync_dn_pdus == 1
        assert network.stats.bytes_sent == 300 + 120 + 64
        d = network.registry.to_dict()
        assert d["net.traffic.round_trips"] == 1
        assert d["net.traffic.bytes_sent"] == 484

    def test_latency_gauge(self):
        network = SimulatedNetwork(round_trip_latency_ms=150.0)
        network.charge_round_trip()
        network.charge_round_trip()
        assert network.elapsed_ms == 300.0
        assert network.registry.to_dict()["net.latency.elapsed_ms"] == 300.0

    def test_connection_accounting(self):
        network = SimulatedNetwork()
        network.connection_opened()
        network.connection_opened()
        network.connection_closed()
        assert network.open_connections == 1
        assert network.total_connections == 2
        d = network.registry.to_dict()
        assert d["net.connections.open"] == 1.0
        assert d["net.connections.total"] == 2

    def test_connection_close_never_goes_negative(self):
        network = SimulatedNetwork()
        network.connection_closed()
        assert network.open_connections == 0

    def test_shared_registry_across_network_and_server(self):
        from repro.server import DirectoryServer

        registry = MetricsRegistry()
        network = SimulatedNetwork(registry=registry)
        server = DirectoryServer("master", metrics=registry)
        server.add_naming_context("o=xyz")
        network.charge_round_trip()
        from repro.ldap import Scope, SearchRequest

        server.search(SearchRequest("o=xyz", Scope.SUB, "(objectClass=*)"))
        d = registry.to_dict()
        assert d["net.traffic.round_trips"] == 1
        assert d['server.op.count{op="search"}'] >= 1
