"""ReSync consumer: the replica side of filter synchronization.

A :class:`SyncedContent` holds the replicated content of one search
request (the paper's replication unit) and applies update PDUs:

* ``add`` / ``modify`` — upsert the carried entry,
* ``delete`` — drop the DN,
* ``retain`` — incomplete-history mode: after applying a retain-style
  response, everything neither retained nor upserted is discarded
  (eq. 3's reconstruction of the content).

Traffic is charged to an optional
:class:`~repro.server.network.SimulatedNetwork` so the update-traffic
experiments (Figures 6/7, E11) can read PDU and byte counts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ldap.controls import ReSyncControl, SyncAction, SyncMode
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.query import SearchRequest
from ..obs.tracing import span
from ..server.network import SimulatedNetwork
from .protocol import SyncResponse, SyncUpdate

__all__ = ["SyncedContent"]


class SyncedContent:
    """Replicated content of one search request at a consumer.

    Args:
        request: the replicated query (the unit of replication).
        network: optional network for traffic accounting.
    """

    def __init__(
        self,
        request: SearchRequest,
        network: Optional[SimulatedNetwork] = None,
    ):
        self.request = request
        self.network = network
        self.entries: Dict[DN, Entry] = {}
        self.cookie: Optional[str] = None
        self.polls = 0
        self.updates_applied = 0

    # ------------------------------------------------------------------
    # applying responses
    # ------------------------------------------------------------------
    def apply(self, response: SyncResponse) -> None:
        """Apply one synchronization response to the local content."""
        retained: set = set()
        upserted: set = set()
        for update in response.updates:
            self._charge(update)
            self.updates_applied += 1
            if update.action in (SyncAction.ADD, SyncAction.MODIFY):
                self.entries[update.dn] = update.entry.copy()
                upserted.add(update.dn)
            elif update.action is SyncAction.DELETE:
                self.entries.pop(update.dn, None)
            elif update.action is SyncAction.RETAIN:
                retained.add(update.dn)
        if response.uses_retain:
            keep = retained | upserted
            self.entries = {dn: e for dn, e in self.entries.items() if dn in keep}
        if response.cookie is not None:
            self.cookie = response.cookie
        self.polls += 1

    def apply_notification(self, update: SyncUpdate) -> None:
        """Apply one persist-mode change notification."""
        self._charge(update)
        self.updates_applied += 1
        if update.action in (SyncAction.ADD, SyncAction.MODIFY):
            self.entries[update.dn] = update.entry.copy()
        elif update.action is SyncAction.DELETE:
            self.entries.pop(update.dn, None)

    def _charge(self, update: SyncUpdate) -> None:
        if self.network is None:
            return
        if update.entry is not None:
            self.network.charge_sync_entry(update.pdu_bytes)
        else:
            self.network.charge_sync_dn(update.pdu_bytes)

    # ------------------------------------------------------------------
    # driving a provider
    # ------------------------------------------------------------------
    def poll(self, provider) -> SyncResponse:
        """One poll cycle against *provider* (either provider class).

        One full cookie round-trip: request with the resumption cookie,
        provider-side scan, response application — traced as
        ``sync.resync.cookie_round_trip``.
        """
        with span("sync.resync.cookie_round_trip") as sp:
            control = ReSyncControl(mode=SyncMode.POLL, cookie=self.cookie)
            response = provider.handle(self.request, control)
            if self.network is not None:
                self.network.charge_round_trip()
            self.apply(response)
            sp.add("updates_applied", len(response.updates))
        return response

    def reload(self, provider) -> SyncResponse:
        """Full recovery: discard local state, restart with a null cookie.

        The escape hatch for an expired/stale session (the server
        answers such cookies with :class:`SyncProtocolError`).
        """
        self.cookie = None
        self.entries.clear()
        return self.poll(provider)

    def resilient_poll(self, provider) -> SyncResponse:
        """Poll, falling back to a full reload on protocol errors.

        Handles both recoverable failures a consumer can see: an
        expired session (unknown cookie) and a cookie too old to
        retransmit.
        """
        from .protocol import SyncProtocolError

        try:
            return self.poll(provider)
        except SyncProtocolError:
            return self.reload(provider)

    def end(self, provider) -> None:
        """Terminate the session at the provider (mode ``sync_end``)."""
        control = ReSyncControl(mode=SyncMode.SYNC_END, cookie=self.cookie)
        provider.handle(self.request, control)
        if self.network is not None:
            self.network.charge_round_trip()
        self.cookie = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def dns(self) -> set:
        """DNs currently held."""
        return set(self.entries)

    def matches_master(self, master) -> bool:
        """Ground-truth convergence check against *master*'s live content."""
        truth = {e.dn: e for e in master.search(self.request).entries}
        if set(truth) != set(self.entries):
            return False
        return all(self.entries[dn].semantically_equal(truth[dn]) for dn in truth)

    def __len__(self) -> int:
        return len(self.entries)
