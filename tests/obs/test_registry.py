"""MetricsRegistry: instrument semantics, labels, export, diffing."""

from __future__ import annotations

import math

import pytest

from repro.obs import Histogram, MetricsRegistry, default_buckets, snapshot_diff


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("a.b.c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_raises(self):
        c = MetricsRegistry().counter("a.b.c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_for_facade_aliasing(self):
        c = MetricsRegistry().counter("a.b.c")
        c.set(42)
        assert c.value == 42

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_reset(self):
        c = MetricsRegistry().counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("net.connections.open")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        bounds = default_buckets(start=1.0, factor=2.0, count=4)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_bad_bucket_params_raise(self):
        with pytest.raises(ValueError):
            default_buckets(start=0.0)
        with pytest.raises(ValueError):
            default_buckets(factor=1.0)
        with pytest.raises(ValueError):
            default_buckets(count=0)

    def test_unsorted_bounds_raise(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", bounds=(2.0, 1.0))

    def test_observe_accumulates(self):
        h = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert h.mean == pytest.approx(18.5)
        assert h.min == 0.5
        assert h.max == 50.0

    def test_cumulative_buckets_end_at_inf(self):
        h = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        cumulative = h.cumulative_buckets()
        assert cumulative == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_value_dict_shape(self):
        h = MetricsRegistry().histogram("h", bounds=(1.0,))
        h.observe(0.25)
        d = h.value_dict()
        assert d["count"] == 1
        assert d["sum"] == 0.25
        assert d["buckets"]["+Inf"] == 1

    def test_empty_histogram_min_max_are_zero(self):
        d = MetricsRegistry().histogram("h").value_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0 and d["count"] == 0


class TestTimer:
    def test_time_context_manager_observes(self):
        t = MetricsRegistry().timer("server.op.latency")
        with t.time():
            pass
        assert t.count == 1
        assert t.sum >= 0.0

    def test_timer_is_histogram(self):
        assert isinstance(MetricsRegistry().timer("t"), Histogram)


class TestLabels:
    def test_labeled_child_is_distinct_and_cached(self):
        registry = MetricsRegistry()
        parent = registry.counter("server.op.count")
        child = parent.labels(op="search")
        assert child is not parent
        assert child is parent.labels(op="search")
        assert child is registry.counter("server.op.count", op="search")

    def test_full_name_renders_labels(self):
        child = MetricsRegistry().counter("server.op.count").labels(op="add")
        assert child.full_name == 'server.op.count{op="add"}'

    def test_labeled_timer_inherits_bounds(self):
        registry = MetricsRegistry()
        parent = registry.histogram("h", bounds=(1.0, 2.0))
        child = parent.labels(op="x")
        assert child.bounds == parent.bounds

    def test_counts_are_independent(self):
        parent = MetricsRegistry().counter("c")
        a, b = parent.labels(op="a"), parent.labels(op="b")
        a.inc(3)
        b.inc(1)
        assert (a.value, b.value, parent.value) == (3, 1, 0)


class TestRegistryExport:
    def test_to_dict_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1.5)
        registry.counter("b", op="x").inc()
        d = registry.to_dict()
        assert d == {"a": 1.5, "b": 2, 'b{op="x"}': 1}
        assert list(d) == ["a", "b", 'b{op="x"}']

    def test_get_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert registry.get("a").value == 0
        assert registry.get("missing") is None
        assert len(registry) == 1

    def test_registry_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.to_dict()["a"] == 0
        assert registry.to_dict()["h"]["count"] == 0

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        c = registry.counter("a")
        c.inc(1)
        snap = registry.snapshot()
        c.inc(10)
        assert snap["a"] == 1

    def test_snapshot_diff_counters(self):
        registry = MetricsRegistry()
        c = registry.counter("a")
        c.inc(3)
        before = registry.snapshot()
        c.inc(4)
        diff = snapshot_diff(registry.snapshot(), before)
        assert diff["a"] == 4

    def test_snapshot_diff_histograms(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", bounds=(1.0,))
        h.observe(0.5)
        before = registry.snapshot()
        h.observe(0.5)
        h.observe(2.0)
        diff = snapshot_diff(registry.snapshot(), before)
        assert diff["h"]["count"] == 2
        assert diff["h"]["sum"] == pytest.approx(2.5)
        # min/max/mean come from the *after* frame (not interval-additive).
        assert diff["h"]["min"] == 0.5
        assert diff["h"]["max"] == 2.0
        assert diff["h"]["buckets"]["+Inf"] == 2

    def test_snapshot_diff_new_key_diffs_against_zero(self):
        assert snapshot_diff({"a": 7}, {})["a"] == 7

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("net.traffic.round_trips").inc(2)
        registry.counter("server.op.count", op="search").inc()
        h = registry.histogram("h", bounds=(1.0,))
        h.observe(0.5)
        text = registry.to_prometheus_text()
        assert "# TYPE net_traffic_round_trips counter" in text
        assert "net_traffic_round_trips 2" in text
        assert 'server_op_count{op="search"} 1' in text
        assert 'h_bucket{le="1.0"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 0.5" in text
        assert "h_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_timer_exported_as_histogram(self):
        registry = MetricsRegistry()
        registry.timer("t")
        assert "# TYPE t histogram" in registry.to_prometheus_text()

    def test_iteration_yields_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        kinds = [i.kind for i in registry]
        assert kinds == ["counter", "gauge"]
