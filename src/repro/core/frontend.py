"""Replica frontends: replicas as network-addressable directory servers.

A deployed replica *is* an LDAP server — clients send it ordinary
searches and receive entries or referrals without knowing it is
partial.  :class:`ReplicaFrontend` adapts a :class:`FilterReplica` or
:class:`SubtreeReplica` to the server interface the simulated network
and :class:`~repro.server.client.LdapClient` speak, so a client can
point at the replica and transparently chase misses to the master —
exactly the deployment of §7 (remote branch replica + central master).
"""

from __future__ import annotations

from typing import Sequence, Union

from ..ldap.query import SearchRequest
from ..server.operations import ResultCode, SearchResult
from .filter_replica import FilterReplica
from .replica import AnswerStatus
from .subtree_replica import SubtreeReplica

__all__ = ["ReplicaFrontend"]

Replica = Union[FilterReplica, SubtreeReplica]


class ReplicaFrontend:
    """Duck-typed directory server wrapping a partial replica.

    Implements the two members the network/client machinery uses:
    ``url`` and ``search()``.  A replica hit answers with entries; a
    partial answer carries both entries and continuation referrals; a
    miss yields the superior referral to the master (the client
    re-sends the same request there).
    """

    def __init__(self, name: str, replica: Replica):
        self.name = name
        self.replica = replica

    @property
    def url(self) -> str:
        return f"ldap://{self.name}"

    def search(
        self, request: SearchRequest, controls: Sequence[object] = ()
    ) -> SearchResult:
        answer = self.replica.answer(request)
        if answer.status is AnswerStatus.MISS:
            return SearchResult(
                referrals=list(answer.referrals), code=ResultCode.REFERRAL
            )
        return SearchResult(
            entries=list(answer.entries),
            referrals=list(answer.referrals),
            code=ResultCode.SUCCESS,
        )

    def __repr__(self) -> str:
        return f"ReplicaFrontend({self.name!r}, {self.replica!r})"
