"""SessionRouter: unit behaviour + routed-vs-linear fan-out equivalence.

The router's contract has two halves, both tested here:

* **completeness** — ``route(record)`` never skips a session the seed
  linear scan would notify (audited per update inside the equivalence
  property, via a wrapper that replays the linear verdict for every
  active session);
* **equivalence** — with routing on, every session's notification
  stream (poll batches and persist deliveries) is byte-identical to a
  linear provider fed the same update stream, for poll and persist
  modes, including deliver callbacks that update the master and
  re-enter ``on_update`` mid-flush.
"""

from hypothesis import given, settings, strategies as st

from repro.ldap import (
    And,
    Entry,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    ReSyncControl,
    Scope,
    SearchRequest,
    Substring,
    SyncMode,
    parse_filter,
)
from repro.server import DirectoryServer, LdapError, Modification
from repro.sync import ResyncProvider
from repro.sync.router import anchor_attrs

# ----------------------------------------------------------------------
# anchor derivation
# ----------------------------------------------------------------------


def test_predicate_anchors_on_its_attribute():
    assert anchor_attrs(parse_filter("(sn=a)")) == {"sn"}
    assert anchor_attrs(parse_filter("(sn=*)")) == {"sn"}


def test_and_anchors_on_one_conjunct():
    got = anchor_attrs(parse_filter("(&(objectClass=person)(sn=a))"))
    assert got is not None and len(got) == 1


def test_or_anchors_union_all_disjuncts():
    assert anchor_attrs(parse_filter("(|(sn=a)(uid=b))")) == {"sn", "uid"}


def test_not_has_no_anchor():
    assert anchor_attrs(parse_filter("(!(sn=a))")) is None
    assert anchor_attrs(parse_filter("(|(sn=a)(!(uid=b)))")) is None


# ----------------------------------------------------------------------
# equivalence harness
# ----------------------------------------------------------------------

_POOL = [
    "cn=e0,o=xyz",
    "cn=e1,o=xyz",
    "cn=e2,o=xyz",
    "cn=e3,o=xyz",
    "cn=u0,c=us,o=xyz",
    "cn=u1,c=us,o=xyz",
]

_ATTRS = ["sn", "uid", "l"]
_VALUES = ["a", "ab", "abc", "b", "ba", "c"]


def _build_master(name: str) -> DirectoryServer:
    master = DirectoryServer(name)
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    master.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    return master


def _apply(master: DirectoryServer, op) -> None:
    """Apply one generated op; invalid ops fail identically on both
    masters (validation precedes commit), keeping their states equal."""
    kind = op[0]
    try:
        if kind == "upsert":
            _kind, dn, attr, value = op
            if master.store.get(dn) is not None:
                master.modify(dn, [Modification.replace(attr, value)])
            else:
                rdn = dn.split(",", 1)[0].split("=", 1)[1]
                master.add(
                    Entry(
                        dn,
                        {"objectClass": ["person"], "cn": rdn, attr: [value]},
                    )
                )
        elif kind == "clearattr":
            _kind, dn, attr = op
            if master.store.get(dn) is not None:
                master.modify(dn, [Modification.replace(attr)])
        elif kind == "delete":
            master.delete(op[1])
        elif kind == "rename":
            _kind, dn, tag = op
            master.modify_dn(dn, new_rdn=f"cn=r{tag}")
    except LdapError:
        pass


def _update_fp(update):
    entry = update.entry
    attrs = (
        None
        if entry is None
        else sorted(
            (name, tuple(entry.get(name))) for name in entry.attribute_names()
        )
    )
    return (update.action, str(update.dn), attrs)


class _RouteAudit:
    """Wraps ``router.route`` to assert completeness on every update:
    any session the linear verdict would notify must be routed."""

    def __init__(self, provider: ResyncProvider):
        self.provider = provider
        self.violations = []
        self._inner = provider.router.route
        provider.router.route = self._route  # type: ignore[method-assign]

    def _route(self, record):
        routed = self._inner(record)
        routed_ids = {rs.session_id for rs in routed}
        for session in self.provider.sessions.active_sessions():
            in_before = record.before is not None and session.request.selects(
                record.before
            )
            in_after = record.after is not None and session.request.selects(
                record.after
            )
            if (in_before or in_after) and session.session_id not in routed_ids:
                self.violations.append((str(record.dn), session.session_id))
        return routed


def _run_side(routed: bool, ops1, ops2, requests, persist_flags):
    master = _build_master(f"m-{routed}")
    for dn in _POOL[:3]:  # part of the pool pre-exists
        _apply(master, ("upsert", dn, "sn", "a"))
    provider = ResyncProvider(master, routed=routed)
    audit = _RouteAudit(provider) if routed else None

    streams = []  # one list of update fingerprints per session
    cookies = []
    for request, persist in zip(requests, persist_flags):
        if persist:
            log = []
            response, _handle = provider.persist(
                request, lambda u, log=log: log.append(_update_fp(u))
            )
            streams.append(log)
            cookies.append(None)
        else:
            log = []
            response = provider.handle(
                request, ReSyncControl(mode=SyncMode.POLL)
            )
            streams.append(log)
            cookies.append(response.cookie)

    def poll_all():
        for i, cookie in enumerate(cookies):
            if cookie is None:
                continue
            response = provider.handle(
                requests[i], ReSyncControl(mode=SyncMode.POLL, cookie=cookie)
            )
            streams[i].extend(_update_fp(u) for u in response.updates)
            cookies[i] = response.cookie

    for op in ops1:
        _apply(master, op)
    poll_all()
    for op in ops2:
        _apply(master, op)
    poll_all()

    if audit is not None:
        assert not audit.violations, f"routing skipped sessions: {audit.violations}"
    return streams


_attr = st.sampled_from(_ATTRS)
_value = st.sampled_from(_VALUES)

_leaves = st.one_of(
    st.builds(Equality, _attr, _value),
    st.builds(GreaterOrEqual, _attr, _value),
    st.builds(LessOrEqual, _attr, _value),
    st.builds(Present, _attr),
    st.builds(lambda a, v: Substring(a, initial=v), _attr, _value),
    st.builds(lambda a, v: Substring(a, final=v), _attr, _value),
)

_filters = st.recursive(
    _leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        kids.map(Not),
    ),
    max_leaves=5,
)

_requests = st.builds(
    SearchRequest,
    st.sampled_from(["o=xyz", "c=us,o=xyz"]),
    st.sampled_from([Scope.SUB, Scope.ONE]),
    _filters,
)

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"), st.sampled_from(_POOL), _attr, _value
        ),
        st.tuples(st.just("clearattr"), st.sampled_from(_POOL), _attr),
        st.tuples(st.just("delete"), st.sampled_from(_POOL)),
        st.tuples(
            st.just("rename"),
            st.sampled_from(_POOL),
            st.integers(min_value=0, max_value=2),
        ),
    ),
    min_size=1,
    max_size=10,
)


@settings(max_examples=60, deadline=None)
@given(
    _ops,
    _ops,
    st.lists(_requests, min_size=1, max_size=6),
    st.lists(st.booleans(), min_size=6, max_size=6),
)
def test_routed_fanout_equals_linear(ops1, ops2, requests, persist_flags):
    """Poll batches and persist deliveries are byte-identical between the
    routed provider and the seed linear scan, and routing never skips a
    session the linear verdict would notify (audited per update)."""
    routed = _run_side(True, ops1, ops2, requests, persist_flags)
    linear = _run_side(False, ops1, ops2, requests, persist_flags)
    assert routed == linear


def test_reentrant_persist_delivery_matches_linear():
    """A persist deliver callback that updates the master re-enters
    on_update mid-flush; the routed two-phase fan-out must interleave
    the nested record between deliveries exactly like the linear scan."""

    def run(routed: bool):
        master = _build_master(f"m-{routed}")
        for dn in _POOL[:3]:
            _apply(master, ("upsert", dn, "sn", "a"))
        provider = ResyncProvider(master, routed=routed)
        wide = SearchRequest("o=xyz", Scope.SUB, "(sn=*)")
        log1, log2 = [], []
        fired = []

        def deliver1(update):
            log1.append(_update_fp(update))
            if not fired:  # one nested master update, mid-flush
                fired.append(True)
                master.modify(
                    "cn=e1,o=xyz", [Modification.replace("sn", "ba")]
                )

        provider.persist(wide, deliver1)
        provider.persist(wide, lambda u: log2.append(_update_fp(u)))
        master.modify("cn=e0,o=xyz", [Modification.replace("sn", "ab")])
        return log1, log2

    assert run(True) == run(False)


def test_ended_session_is_unrouted():
    master = _build_master("m-end")
    _apply(master, ("upsert", "cn=e0,o=xyz", "sn", "a"))
    provider = ResyncProvider(master, routed=True)
    request = SearchRequest("o=xyz", Scope.SUB, "(sn=*)")
    response = provider.handle(request, ReSyncControl(mode=SyncMode.POLL))
    assert len(provider.router) == 1
    provider.handle(
        request, ReSyncControl(mode=SyncMode.SYNC_END, cookie=response.cookie)
    )
    assert len(provider.router) == 0
    # Updates after the end must not reach the dead session.
    master.modify("cn=e0,o=xyz", [Modification.replace("sn", "b")])


def test_restart_resets_router():
    master = _build_master("m-restart")
    provider = ResyncProvider(master, routed=True)
    provider.handle(
        SearchRequest("o=xyz", Scope.SUB, "(sn=*)"),
        ReSyncControl(mode=SyncMode.POLL),
    )
    assert len(provider.router) == 1
    provider.restart()
    assert len(provider.router) == 0


def test_expired_session_lazily_unregistered():
    master = _build_master("m-expire")
    _apply(master, ("upsert", "cn=e0,o=xyz", "sn", "a"))
    provider = ResyncProvider(master, idle_limit=2, routed=True)
    stale_req = SearchRequest("o=xyz", Scope.SUB, "(sn=a)")
    provider.handle(stale_req, ReSyncControl(mode=SyncMode.POLL))
    busy_req = SearchRequest("o=xyz", Scope.SUB, "(sn=*)")
    response = provider.handle(busy_req, ReSyncControl(mode=SyncMode.POLL))
    for _ in range(4):  # run the store's activity clock past the limit
        response = provider.handle(
            busy_req, ReSyncControl(mode=SyncMode.POLL, cookie=response.cookie)
        )
    assert provider.active_session_count == 1
    assert len(provider.router) == 2  # stale registration still around
    master.modify("cn=e0,o=xyz", [Modification.replace("sn", "ab")])
    assert len(provider.router) == 1  # dropped on first routed visit
