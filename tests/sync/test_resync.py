"""Tests for the ReSync providers, including the Figure 3 session."""

import pytest

from repro.ldap import (
    DN,
    Entry,
    ReSyncControl,
    Scope,
    SearchRequest,
    SyncAction,
    SyncMode,
)
from repro.server import DirectoryServer, Modification
from repro.sync import (
    ResyncProvider,
    RetainResyncProvider,
    SyncProtocolError,
    SyncedContent,
)


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},c=us,o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


class TestInitialPoll:
    def test_full_content_on_null_cookie(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        response = content.poll(provider)
        assert response.initial
        assert len(content) == 3
        assert content.cookie is not None

    def test_empty_content_filter(self, tiny_master):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=99)"))
        content.poll(provider)
        assert len(content) == 0

    def test_session_registered(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        SyncedContent(dept42).poll(provider)
        assert provider.active_session_count == 1


class TestPollCycles:
    def test_add_flows(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.add(person("E4"))
        response = content.poll(provider)
        assert [u.action for u in response.updates] == [SyncAction.ADD]
        assert content.matches_master(tiny_master)

    def test_delete_flows(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.delete("cn=E1,c=us,o=xyz")
        response = content.poll(provider)
        assert [u.action for u in response.updates] == [SyncAction.DELETE]
        assert content.matches_master(tiny_master)

    def test_modify_within_content_flows(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify("cn=E1,c=us,o=xyz", [Modification.replace("title", "X")])
        response = content.poll(provider)
        assert [u.action for u in response.updates] == [SyncAction.MODIFY]
        assert content.entries[DN.parse("cn=E1,c=us,o=xyz")].first("title") == "X"

    def test_modify_out_of_content_is_delete(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=E1,c=us,o=xyz", [Modification.replace("departmentNumber", "99")]
        )
        response = content.poll(provider)
        assert [u.action for u in response.updates] == [SyncAction.DELETE]
        assert content.matches_master(tiny_master)

    def test_modify_into_content_is_add(self, tiny_master, dept42):
        tiny_master.add(person("Outsider", dept="99"))
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=Outsider,c=us,o=xyz", [Modification.replace("departmentNumber", "42")]
        )
        response = content.poll(provider)
        assert [u.action for u in response.updates] == [SyncAction.ADD]
        assert content.matches_master(tiny_master)

    def test_rename_within_content(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify_dn("cn=E3,c=us,o=xyz", new_rdn="cn=E5")
        response = content.poll(provider)
        actions = sorted((u.action.value, str(u.dn)) for u in response.updates)
        assert actions == [
            ("add", "cn=E5,c=us,o=xyz"),
            ("delete", "cn=E3,c=us,o=xyz"),
        ]
        assert content.matches_master(tiny_master)

    def test_quiet_poll_empty(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        response = content.poll(provider)
        assert response.updates == []

    def test_multiple_sessions_independent(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        c1 = SyncedContent(dept42)
        c2 = SyncedContent(SearchRequest("o=xyz", Scope.SUB, "(cn=E1)"))
        c1.poll(provider)
        c2.poll(provider)
        tiny_master.delete("cn=E2,c=us,o=xyz")
        assert len(c1.poll(provider).updates) == 1
        assert c2.poll(provider).updates == []


class TestProtocolEdges:
    def test_unknown_cookie_rejected(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        with pytest.raises(SyncProtocolError):
            provider.handle(dept42, ReSyncControl(mode=SyncMode.POLL, cookie="zz:9"))

    def test_cookie_with_wrong_request_rejected(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        other = SearchRequest("o=xyz", Scope.SUB, "(cn=E1)")
        with pytest.raises(SyncProtocolError):
            provider.handle(other, ReSyncControl(mode=SyncMode.POLL, cookie=content.cookie))

    def test_sync_end_terminates(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        content.end(provider)
        assert provider.active_session_count == 0

    def test_persist_requires_callback(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        with pytest.raises(SyncProtocolError):
            provider.handle(dept42, ReSyncControl(mode=SyncMode.PERSIST))


class TestPersistMode:
    def test_notifications_flow_immediately(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        notes = []
        response, handle = provider.persist(dept42, notes.append)
        assert response.initial and len(response.updates) == 3
        tiny_master.add(person("E4"))
        assert [u.action for u in notes] == [SyncAction.ADD]

    def test_abandon_stops_notifications(self, tiny_master, dept42):
        provider = ResyncProvider(tiny_master)
        notes = []
        _response, handle = provider.persist(dept42, notes.append)
        handle.abandon()
        tiny_master.add(person("E4"))
        assert notes == []
        assert provider.active_session_count == 0

    def test_poll_then_switch_to_persist(self, tiny_master, dept42):
        """Figure 3's third request: persist presented with cookie1."""
        provider = ResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.delete("cn=E1,c=us,o=xyz")
        notes = []
        response, handle = provider.persist(dept42, notes.append, cookie=content.cookie)
        # pending updates accumulated before the switch are delivered
        assert [u.action for u in response.updates] == [SyncAction.DELETE]
        for u in response.updates:
            content.apply_notification(u)
        tiny_master.add(person("E9"))
        for u in notes:
            content.apply_notification(u)
        assert content.matches_master(tiny_master)
        handle.abandon()

    def test_update_from_inside_callback_keeps_order(self, tiny_master, dept42):
        """A deliver callback triggering a master update must not re-enter
        the delivery loop mid-batch (reentrancy regression).

        A rename queues delete+add in one batch; the callback reacts to
        the delete by modifying another in-content entry.  The triggered
        notification must arrive *after* the in-flight batch, not
        interleaved into it.
        """
        provider = ResyncProvider(tiny_master)
        notes = []

        def deliver(update):
            notes.append(update)
            if update.action is SyncAction.DELETE and len(notes) == 1:
                tiny_master.modify(
                    "cn=E2,c=us,o=xyz", [Modification.replace("title", "X")]
                )

        _response, handle = provider.persist(dept42, deliver)
        tiny_master.modify_dn("cn=E3,c=us,o=xyz", new_rdn="cn=E5")
        assert [(u.action.value, str(u.dn)) for u in notes] == [
            ("delete", "cn=E3,c=us,o=xyz"),
            ("add", "cn=E5,c=us,o=xyz"),
            ("modify", "cn=E2,c=us,o=xyz"),
        ]
        handle.abandon()


class TestFigure3Scenario:
    """The complete message sequence chart of Figure 3."""

    def test_full_session(self):
        master = DirectoryServer("M")
        master.add_naming_context("o=xyz")
        master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        S = SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)")
        # E1..E3 exist before the session starts
        for name in ("E1", "E2", "E3"):
            master.add(Entry(f"cn={name},o=xyz", {"objectClass": ["person"], "cn": name, "sn": "T"}))

        provider = ResyncProvider(master)
        content = SyncedContent(S)

        # -- request 1: (poll, null) → E1,E2,E3 add + cookie
        r1 = content.poll(provider)
        assert r1.initial and len(r1.updates) == 3

        # interval: E4 added; E1,E2 deleted; E3 modified
        master.add(Entry("cn=E4,o=xyz", {"objectClass": ["person"], "cn": "E4", "sn": "T"}))
        master.delete("cn=E1,o=xyz")
        master.delete("cn=E2,o=xyz")
        master.modify("cn=E3,o=xyz", [Modification.replace("title", "mod")])

        # -- request 2: (poll, cookie) → E4 add, E1/E2 delete, E3 mod
        r2 = content.poll(provider)
        got = sorted((u.action.value, str(u.dn)) for u in r2.updates)
        assert got == [
            ("add", "cn=E4,o=xyz"),
            ("delete", "cn=E1,o=xyz"),
            ("delete", "cn=E2,o=xyz"),
            ("modify", "cn=E3,o=xyz"),
        ]

        # -- request 3: (persist, cookie1); E3 renamed to E5 → delete+add
        notes = []
        r3, handle = provider.persist(S, notes.append, cookie=content.cookie)
        for u in r3.updates:
            content.apply_notification(u)
        master.modify_dn("cn=E3,o=xyz", new_rdn="cn=E5")
        assert [(u.action.value, str(u.dn)) for u in notes] == [
            ("delete", "cn=E3,o=xyz"),
            ("add", "cn=E5,o=xyz"),
        ]
        for u in notes:
            content.apply_notification(u)
        assert content.matches_master(master)

        # -- abandon ends the session
        handle.abandon()
        assert provider.active_session_count == 0


class TestRetainProvider:
    def test_initial_full_content(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        r = content.poll(provider)
        assert r.initial and not r.uses_retain
        assert len(content) == 3

    def test_unchanged_entries_retained(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        r = content.poll(provider)
        assert r.uses_retain
        assert all(u.action is SyncAction.RETAIN for u in r.updates)
        assert len(content) == 3

    def test_changed_entry_sent_in_full(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify("cn=E1,c=us,o=xyz", [Modification.replace("title", "X")])
        r = content.poll(provider)
        by_action = {u.action for u in r.updates}
        assert SyncAction.ADD in by_action and SyncAction.RETAIN in by_action
        assert content.matches_master(tiny_master)

    def test_unretained_entries_dropped(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify(
            "cn=E2,c=us,o=xyz", [Modification.replace("departmentNumber", "99")]
        )
        tiny_master.delete("cn=E1,c=us,o=xyz")
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_rename_converges(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        tiny_master.modify_dn("cn=E3,c=us,o=xyz", new_rdn="cn=E5")
        content.poll(provider)
        assert content.matches_master(tiny_master)

    def test_persist_not_supported(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        with pytest.raises(SyncProtocolError):
            provider.handle(dept42, ReSyncControl(mode=SyncMode.PERSIST))

    def test_malformed_cookie_rejected(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        with pytest.raises(SyncProtocolError):
            provider.handle(dept42, ReSyncControl(mode=SyncMode.POLL, cookie="bogus"))

    def test_stateless_no_sessions(self, tiny_master, dept42):
        provider = RetainResyncProvider(tiny_master)
        content = SyncedContent(dept42)
        content.poll(provider)
        assert not hasattr(provider, "sessions")
