"""Shared replica machinery: answers, hit accounting, the replica API.

Both replication models (§3) expose the same client-facing behaviour:
given a query, either answer it completely from local content (**hit**),
answer part of it and refer the rest (**partial**), or refer the client
to the master (**miss**).  Hit-ratio — the paper's headline metric — is
the fraction of queries *completely* answered (§3.1): partial answers
do not count as hits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..ldap.entry import Entry
from ..server.operations import Referral

__all__ = ["AnswerStatus", "ReplicaAnswer", "HitStats"]


class AnswerStatus(enum.Enum):
    """Outcome of asking a replica to answer a query."""

    HIT = "hit"  # completely answered locally
    PARTIAL = "partial"  # some entries local, referrals generated
    MISS = "miss"  # referred entirely to the master


@dataclass
class ReplicaAnswer:
    """A replica's response to one query."""

    status: AnswerStatus
    entries: List[Entry] = field(default_factory=list)
    referrals: List[Referral] = field(default_factory=list)
    answered_by: Optional[str] = None  # which stored unit answered (diagnostics)

    @property
    def is_hit(self) -> bool:
        return self.status is AnswerStatus.HIT


@dataclass
class HitStats:
    """Hit-ratio bookkeeping for one replica."""

    queries: int = 0
    hits: int = 0
    partials: int = 0
    misses: int = 0

    def record(self, answer: ReplicaAnswer) -> None:
        self.queries += 1
        if answer.status is AnswerStatus.HIT:
            self.hits += 1
        elif answer.status is AnswerStatus.PARTIAL:
            self.partials += 1
        else:
            self.misses += 1

    @property
    def hit_ratio(self) -> float:
        """Fraction of queries completely answered (0 when idle)."""
        return self.hits / self.queries if self.queries else 0.0

    def reset(self) -> None:
        self.queries = self.hits = self.partials = self.misses = 0
