"""E19 — batched persist fan-out vs the per-entry synchronous wire.

The paper's §5.2 persist mode pushes every master update to every
affected replica over its own connection — per notification: one filter
fan-out visit, one encode, one consumer apply.  At thousands of live
persist sessions that per-PDU cost is the scaling wall.  The pipelined
transport (docs/TRANSPORT.md) amortizes it: per-session
:class:`~repro.sync.delivery.DeliveryQueue` batching coalesces bursts
per DN under backpressure, so a hot entry costs one delivered PDU per
batch window instead of one per update.

Both arms charge **encoded-length-accurate** bytes so the comparison is
apples-to-apples on accounting fidelity: the synchronous arm runs
``wire_accurate=True`` (every notification BER-encoded as its own PDU —
what a real per-entry wire transport pays), the pipelined arm encodes
coalesced batch frames (:func:`repro.ldap.ber.encode_sync_batch`).

The timed unit is the **fan-out replay**: a fixed schedule of committed
:class:`~repro.server.operations.UpdateRecord` (captured once from a
scratch master) is fed through ``provider.on_update`` and, for the
pipelined arm, drained with ``net.settle()``.  Master-side index
maintenance is deliberately outside the loop — ``bench_replica_scaling``
covers it; this bench isolates what the transport changes.

In-bench floors (machine-independent, both arms measured by the same
function in the same process): the batched arm must beat the per-entry
synchronous arm >= 5x at 5000 live sessions (>= 2.5x / 1.5x at the
lower rungs), and the virtual-clock delivery latency p99 must stay
bounded by the batch window.  A probe session's applied content must be
identical across arms (the equivalence guard; byte-level equivalence is
property-tested in ``tests/sync/test_transport_equivalence.py``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification, SimulatedNetwork
from repro.sync import BatchConfig, ResyncProvider, SyncedContent

from .common import quiesced_gc as _quiesced
from .common import report

BLOCKS = 250
PERSONS_PER_BLOCK = 2
# Update targets stay inside the first TARGET_BLOCKS blocks (one person
# per block) at every sweep point, so the sweep varies only the live
# session count, not the update schedule.
TARGET_BLOCKS = 40
ROUNDS = 48
SWEEP = (500, 2000, 5000)
# Best of 5 (the min-time estimator `timeit` recommends): on a shared
# single-vCPU runner, host CPU steal only slows passes down, so the
# fastest pass is the stable machine-capability number — a median
# still drifts 20-40% through sustained steal phases, flaking both the
# 20% baseline gate and the in-bench speedup floor's thin margin.
# Floors compare best against best, so both arms shed stolen passes
# before the ratio is taken.
TIMING_REPEATS = 5
# The batch window: flush immediately (max_batch=1), degrade to per-DN
# coalesced-retain as soon as the consumer is busy (high_water=1), with
# a small simulated per-batch consumer apply time.  A hot entry then
# costs ~2 delivered PDUs per burst however many updates hit it.
BATCH = BatchConfig(max_batch=1, max_age_ms=1.0, high_water=1)
CONSUMER_DELAY_MS = 0.05
P99_BOUND_MS = 5.0


def _serial(block: int, seq: int) -> str:
    return f"{block:04d}{seq:02d}US"


def _person(block: int, seq: int) -> Entry:
    """A realistically sized employee entry (the paper's ~6KB entries):
    every value unique per entry so posting lists stay singletons."""
    cn = f"p{block:04d}{seq}"
    return Entry(
        f"cn={cn},o=xyz",
        {
            "cn": cn,
            "sn": [f"n{block}x{seq}"],
            "serialNumber": [_serial(block, seq)],
            "telephoneNumber": [f"+1-{block:04d}{seq}"],
            "l": [f"city{block}-{seq}"],
            "title": [f"engineer-{block}-{seq}"],
            "description": [f"employee {block}/{seq} of the simulated site"],
            "ou": [f"dept-{block}-{seq}"],
            "employeeNumber": [f"{block * 100 + seq}"],
            "mail": [
                f"p{block:04d}{seq}@example.com",
                f"alt{block}.{seq}@example.com",
            ],
            "postalAddress": [
                f"{block} Main Street Suite {seq} $ Metropolis $ ZZ {10000 + block}"
            ],
            "seeAlso": [f"cn=mgr{block}a{seq},o=xyz", f"cn=dir{block}b{seq},o=xyz"],
            "userCertificate": ["MIIC" + "Aq" * 180 + f"{block:04d}{seq}"],
            "entrySizeBytes": [str(6000 + block * 2 + seq)],
        },
    )


def _block_filter(block: int) -> SearchRequest:
    return SearchRequest("o=xyz", Scope.SUB, f"(serialNumber={block:04d}*US)")


def _fresh_master() -> DirectoryServer:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for block in range(BLOCKS):
        for seq in range(PERSONS_PER_BLOCK):
            master.add(_person(block, seq))
    return master


class _Capture:
    def __init__(self):
        self.records = []

    def on_update(self, record):
        self.records.append(record)


def _make_update_records():
    """The replayed fan-out schedule: ROUNDS telephone replaces against
    one person per target block, captured once from a scratch master so
    both arms replay byte-identical before/after images."""
    scratch = _fresh_master()
    capture = _Capture()
    scratch.add_update_listener(capture)
    for round_ in range(ROUNDS):
        for block in range(TARGET_BLOCKS):
            scratch.modify(
                f"cn=p{block:04d}0,o=xyz",
                [Modification.replace("telephoneNumber", f"+1-{round_}-{block}")],
            )
    return capture.records


@pytest.fixture(scope="module")
def update_records():
    return _make_update_records()


def _fanout_point(
    records, n_sessions: int, pipelined: bool
) -> Tuple[Dict[str, float], Dict[str, Entry]]:
    """Replay the update schedule into *n_sessions* live persist
    sessions; returns (measurements, probe session's applied content)."""
    if pipelined:
        net = SimulatedNetwork(pipelined=True, batch=BATCH, seed=7)
    else:
        net = SimulatedNetwork(wire_accurate=True)
    master = _fresh_master()
    net.register(master)
    provider = ResyncProvider(master)
    contents: List[SyncedContent] = []
    for i in range(n_sessions):
        request = _block_filter(i % BLOCKS)
        content = SyncedContent(request, network=net)
        deliveries, handle = net.persist_exchange(
            provider, request, content.apply_notification
        )
        content.apply(deliveries[-1].response)
        if pipelined:
            handle.delivery_queue.consumer_delay_ms = CONSUMER_DELAY_MS
        contents.append(content)
    rates = []
    passes = 1 + TIMING_REPEATS  # warm-up + timed repeats
    timed_start_bytes = 0
    for rep in range(passes):
        if rep == 1:  # wire bytes are reported per timed pass, below
            timed_start_bytes = net.stats.bytes_sent
        with _quiesced():
            start = time.perf_counter()
            for record in records:
                provider.on_update(record)
            if pipelined:
                net.settle()
            elapsed = time.perf_counter() - start
        if rep:  # pass 0 is the warm-up
            rates.append(len(records) / elapsed if elapsed else 0.0)
    registry = net.registry
    offered = registry.counter("sync.batch.offered").value
    delivered = registry.counter("sync.batch.delivered").value
    latencies = sorted(
        latency
        for queue in net.persist_queues.values()
        for latency in queue.latencies
    )
    point = {
        "rate": max(rates),  # best pass: min-time estimator (see TIMING_REPEATS)
        # Per-pass wire bytes (the steady-state replay cost of one
        # schedule), so the committed metric does not scale with
        # TIMING_REPEATS.  The warm-up pass is excluded: it replays
        # against pristine content, so its byte count differs.
        "bytes_sent": (net.stats.bytes_sent - timed_start_bytes)
        / TIMING_REPEATS,
        "coalescing": offered / delivered if delivered else 1.0,
        "p99_ms": latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0,
    }
    # Probe: session 0 subscribes to block 0, a replay target.
    probe = dict(contents[0].entries)
    return point, probe


@pytest.fixture(scope="module")
def fanout_points(update_records):
    points = {}
    rows = []
    for n in SWEEP:
        sync_point, sync_probe = _fanout_point(update_records, n, pipelined=False)
        piped_point, piped_probe = _fanout_point(update_records, n, pipelined=True)
        # Equivalence guard: both arms applied the same final content.
        assert {str(dn) for dn in sync_probe} == {str(dn) for dn in piped_probe}
        for dn, entry in sync_probe.items():
            assert entry.semantically_equal(piped_probe[dn])
        points[n] = (sync_point, piped_point)
        rows.append(
            (
                n,
                sync_point["rate"],
                piped_point["rate"],
                piped_point["rate"] / sync_point["rate"],
                piped_point["coalescing"],
                piped_point["p99_ms"],
                sync_point["bytes_sent"] / 1e6,
                piped_point["bytes_sent"] / 1e6,
            )
        )
    return points, rows


def test_persist_fanout(benchmark, update_records, fanout_points):
    points, rows = fanout_points
    top = SWEEP[-1]
    sync_top, piped_top = points[top]
    metrics = {
        # Gated rates (validate_results: lower is a regression).
        "fanout_batched_per_s": piped_top["rate"],
        "fanout_sync_per_s": sync_top["rate"],
        # Informational context for the baseline diff.
        "batched_speedup_at_5000": piped_top["rate"] / sync_top["rate"],
        "coalescing_factor_at_5000": piped_top["coalescing"],
        "delivery_p99_virtual_ms_at_5000": piped_top["p99_ms"],
        "sync_mbytes_at_5000": sync_top["bytes_sent"] / 1e6,
        "batched_mbytes_at_5000": piped_top["bytes_sent"] / 1e6,
    }
    report(
        "persist_fanout",
        f"Batched persist fan-out vs per-entry synchronous wire, "
        f"{len(update_records)} updates per pass, best of {TIMING_REPEATS}",
        [
            "sessions",
            "sync/s",
            "batched/s",
            "speedup",
            "coalesce",
            "p99_ms",
            "sync_MB",
            "batch_MB",
        ],
        rows,
        params={
            "blocks": BLOCKS,
            "persons_per_block": PERSONS_PER_BLOCK,
            "target_blocks": TARGET_BLOCKS,
            "rounds": ROUNDS,
            "sweep": "/".join(str(n) for n in SWEEP),
            "max_batch": BATCH.max_batch,
            "high_water": BATCH.high_water,
            "consumer_delay_ms": CONSUMER_DELAY_MS,
        },
        metrics=metrics,
        paper_expected={
            "shape": "per-entry synchronous fan-out cost grows with update "
            "rate x sessions; batching bounds delivered PDUs per hot entry "
            "by the batch window, so throughput gains grow with fan-out"
        },
    )

    # Perf smoke (machine-independent): batching must clearly beat the
    # per-entry synchronous wire, most at the widest fan-out.
    for n, (sync_point, piped_point) in points.items():
        floor = {SWEEP[0]: 1.5, SWEEP[1]: 2.5, SWEEP[2]: 5.0}[n]
        assert piped_point["rate"] >= floor * sync_point["rate"], (
            f"batched fan-out speedup below {floor}x at {n} sessions: "
            f"{piped_point['rate']:.0f}/s vs {sync_point['rate']:.0f}/s"
        )
        # The delivery-latency bound holds on the virtual clock: every
        # PDU flushes within the batch window + a few consumer acks.
        assert piped_point["p99_ms"] <= P99_BOUND_MS, (
            f"delivery p99 {piped_point['p99_ms']:.2f}ms exceeds "
            f"{P99_BOUND_MS}ms at {n} sessions"
        )
        # Batching actually batches: bursts of ROUNDS updates per hot DN
        # must coalesce by an order of magnitude.
        assert piped_point["coalescing"] >= 10.0
        # Encoded-frame accounting: coalescing must shrink the wire.
        assert piped_point["bytes_sent"] < sync_point["bytes_sent"]

    # Timed unit: one replayed update through the batched fan-out at the
    # top sweep point (fresh small net so the unit is self-contained).
    net = SimulatedNetwork(pipelined=True, batch=BATCH, seed=7)
    master = _fresh_master()
    net.register(master)
    provider = ResyncProvider(master)
    content = SyncedContent(_block_filter(0), network=net)
    deliveries, handle = net.persist_exchange(
        provider, _block_filter(0), content.apply_notification
    )
    content.apply(deliveries[-1].response)
    record = update_records[0]

    def unit():
        provider.on_update(record)
        net.settle()

    benchmark(unit)
