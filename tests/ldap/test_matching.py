"""Tests for filter evaluation against entries."""

import pytest

from repro.ldap import Entry, matches, parse_filter
from repro.ldap.attributes import AttributeType, Syntax
from repro.ldap.matching import compare_values, substring_match


@pytest.fixture()
def entry() -> Entry:
    return Entry(
        "cn=John Doe,c=us,o=xyz",
        {
            "objectClass": ["inetOrgPerson", "top"],
            "cn": ["John Doe", "Johnny"],
            "sn": "Doe",
            "mail": "john@us.xyz.com",
            "serialNumber": "004217IN",
            "age": "35",
        },
    )


def match(entry: Entry, text: str) -> bool:
    return matches(parse_filter(text), entry)


class TestEquality:
    def test_simple(self, entry):
        assert match(entry, "(sn=Doe)")
        assert not match(entry, "(sn=Smith)")

    def test_case_insensitive_directory_string(self, entry):
        assert match(entry, "(sn=DOE)")
        assert match(entry, "(CN=john doe)")

    def test_multivalued_any_value(self, entry):
        assert match(entry, "(cn=Johnny)")

    def test_absent_attribute_false(self, entry):
        assert not match(entry, "(title=Boss)")

    def test_mail_case_exact(self, entry):
        assert match(entry, "(mail=john@us.xyz.com)")
        assert not match(entry, "(mail=JOHN@us.xyz.com)")


class TestOrdering:
    def test_integer_semantics(self, entry):
        assert match(entry, "(age>=30)")
        assert match(entry, "(age<=40)")
        assert not match(entry, "(age>=36)")
        # lexicographic would say "35" >= "100"; integers disagree
        assert match(entry, "(age>=100)") is False

    def test_string_ordering(self, entry):
        assert match(entry, "(sn>=D)")
        assert match(entry, "(sn<=E)")
        assert not match(entry, "(sn>=E)")

    def test_absent_attribute_false(self, entry):
        assert not match(entry, "(height>=3)")

    def test_unordered_attribute_false(self, entry):
        # objectClass has ordering disabled in the default registry
        assert not match(entry, "(objectClass>=a)")


class TestPresence:
    def test_present(self, entry):
        assert match(entry, "(mail=*)")
        assert match(entry, "(objectClass=*)")

    def test_absent(self, entry):
        assert not match(entry, "(title=*)")


class TestSubstring:
    def test_initial(self, entry):
        assert match(entry, "(serialNumber=0042*)")
        assert not match(entry, "(serialNumber=0043*)")

    def test_final(self, entry):
        assert match(entry, "(serialNumber=*IN)")
        assert not match(entry, "(serialNumber=*US)")

    def test_initial_and_final(self, entry):
        assert match(entry, "(serialNumber=0042*IN)")

    def test_any_parts_in_order(self, entry):
        assert match(entry, "(mail=*john*xyz*)")
        assert not match(entry, "(mail=*xyz*john*)")

    def test_case_insensitive_for_directory_strings(self, entry):
        assert match(entry, "(cn=JOHN*)")

    def test_no_overlap_between_components(self):
        at = AttributeType("x")
        # "aba": final "ba" must come after initial "ab" without overlap
        assert not substring_match(at, "aba", "ab", (), "ba")
        assert substring_match(at, "abba", "ab", (), "ba")

    def test_final_respects_cursor(self):
        at = AttributeType("x")
        assert not substring_match(at, "xay", "xa", (), "ay")


class TestApprox:
    def test_behaves_as_loose_equality(self, entry):
        assert match(entry, "(sn~=doe)")
        assert not match(entry, "(sn~=smith)")


class TestBoolean:
    def test_and(self, entry):
        assert match(entry, "(&(sn=Doe)(age>=30))")
        assert not match(entry, "(&(sn=Doe)(age>=99))")

    def test_or(self, entry):
        assert match(entry, "(|(sn=Smith)(sn=Doe))")
        assert not match(entry, "(|(sn=Smith)(sn=Jones))")

    def test_not(self, entry):
        assert match(entry, "(!(sn=Smith))")
        assert not match(entry, "(!(sn=Doe))")

    def test_not_of_absent_is_true(self, entry):
        assert match(entry, "(!(title=Boss))")

    def test_nested(self, entry):
        assert match(entry, "(&(|(sn=Smith)(sn=Doe))(!(age>=99)))")


class TestCompareValues:
    def test_integer_comparison(self):
        at = AttributeType("n", syntax=Syntax.INTEGER)
        assert compare_values(at, "9", "10") == -1
        assert compare_values(at, "10", "10") == 0
        assert compare_values(at, "11", "10") == 1

    def test_mixed_normalization_falls_back_to_string(self):
        at = AttributeType("n", syntax=Syntax.INTEGER)
        assert compare_values(at, "abc", "10") in (-1, 1)

    def test_string_comparison_case_insensitive(self):
        at = AttributeType("s")
        assert compare_values(at, "ABC", "abc") == 0
