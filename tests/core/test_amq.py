"""AdaptiveQuotientFilter: the no-false-negative contract.

The AMQ is only usable as a prescreen because a negative answer is a
*proof* of absence — every wiring site (docs/ROUTING.md §10) skips real
work on it.  The properties here drive the filter through adaptive
extensions (small sizing hints force doublings) and require that every
inserted key is still reported present afterwards; a single false
negative would silently drop answers at all three prescreen sites.
"""

from hypothesis import given, settings, strategies as st

from repro.core import AdaptiveQuotientFilter
from repro.core.amq import LOAD_FACTOR, SLOTS_PER_BUCKET

_keys = st.one_of(
    st.text(max_size=12),
    st.integers(),
    st.tuples(st.sampled_from(["eq", "pfx", "attr", "rk"]), st.text(max_size=8)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_keys, max_size=100), st.integers(min_value=0, max_value=2**32))
def test_never_a_false_negative(keys, seed):
    amq = AdaptiveQuotientFilter(expected_items=1, seed=seed)
    for i, key in enumerate(keys):
        amq.add(key)
        # Every key inserted so far stays visible at every step —
        # including immediately after any extension the insert caused.
        for earlier in keys[: i + 1]:
            assert earlier in amq


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**32))
def test_no_false_negative_through_forced_extensions(seed):
    """≥2 doublings (the acceptance floor) with all keys retained."""
    amq = AdaptiveQuotientFilter(expected_items=1, seed=seed)
    keys = [("eq", "serialnumber", f"{i:06d}US") for i in range(1_000)]
    for key in keys:
        amq.add(key)
    assert amq.extensions >= 2
    assert all(key in amq for key in keys)


def test_extension_preserves_false_positive_bound():
    """FPR stays near the 2^-rbits design point across many doublings.

    Fingerprints inserted after an extension carry one more bit, so the
    union-bound estimate — and the observed rate — must not scale with
    the number of doublings (the Aleph/Telescoping property)."""
    amq = AdaptiveQuotientFilter(expected_items=4, seed=3)
    for i in range(20_000):
        amq.add(("k", i))
    assert amq.extensions >= 5
    assert all(("k", i) in amq for i in range(0, 20_000, 97))
    absent = sum(1 for i in range(50_000) if ("absent", i) in amq)
    observed = absent / 50_000
    # rbits=16 and ~20k occupied slots put the union bound around
    # 20k * 2^-16 ≈ 0.0004; a flat 1% ceiling still catches any
    # per-extension FPR growth by an order of magnitude.
    assert observed <= 0.01
    assert amq.fpr() <= 0.01


def test_duplicates_absorbed_and_len_tracks_items():
    amq = AdaptiveQuotientFilter(expected_items=16)
    for _ in range(5):
        amq.add("same-key")
    assert len(amq) == 1
    assert "same-key" in amq


def test_clear_empties_without_shrinking():
    amq = AdaptiveQuotientFilter(expected_items=4)
    for i in range(200):
        amq.add(i)
    slots = amq.slot_count
    amq.clear()
    assert len(amq) == 0
    assert amq.slot_count == slots
    # A cleared table holds nothing, so every probe is a definite no.
    assert not any(i in amq for i in range(200))
    amq.add("fresh")
    assert "fresh" in amq


def test_seeds_give_independent_summaries():
    a = AdaptiveQuotientFilter(expected_items=64, seed=1)
    b = AdaptiveQuotientFilter(expected_items=64, seed=2)
    for i in range(64):
        a.add(("k", i))
        b.add(("k", i))
    # Same keys, both complete…
    assert all(("k", i) in a and ("k", i) in b for i in range(64))


def test_stats_shape_and_accounting():
    amq = AdaptiveQuotientFilter(expected_items=32)
    for i in range(10):
        amq.add(i)
    amq.contains(5_000)  # one lookup, hit or miss
    stats = amq.stats()
    for field in (
        "items",
        "slots",
        "occupancy",
        "spilled",
        "extensions",
        "lookups",
        "negatives",
        "fpr",
    ):
        assert field in stats
    assert stats["items"] == 10
    assert stats["lookups"] == 1
    assert 0.0 <= stats["occupancy"] <= 1.0


def test_sizing_hint_respects_load_factor():
    amq = AdaptiveQuotientFilter(expected_items=1_000)
    assert amq.slot_count * LOAD_FACTOR >= 1_000
    assert amq.slot_count % SLOTS_PER_BUCKET == 0


def test_table_accounting_is_hash_seed_deterministic():
    """items/fpr/extensions must not depend on ``PYTHONHASHSEED``.

    Committed bench exports carry ``amq_items``/``amq_fpr``; the
    quotient table hashes canonical key encodings (not the salted
    native hash), so two interpreters with different salts must agree
    on the table accounting bit-for-bit.  (Regression: amq_items at
    the 50k prescreen rung flapped 50000 vs 49998 across runs.)
    """
    import json
    import os
    import subprocess
    import sys

    script = (
        "import hashlib, json, sys\n"
        "from repro.core import AdaptiveQuotientFilter\n"
        "amq = AdaptiveQuotientFilter(expected_items=64, seed=3)\n"
        "for block in range(5000):\n"
        "    amq.add(('eq', 'serialNumber', f'{block:06d}77us'))\n"
        "    amq.add(('rk', f'{block:06d}'[: block % 6 + 1]))\n"
        "s = amq.stats()\n"
        "print(json.dumps({'items': s['items'], 'fpr': s['fpr'],\n"
        "                  'extensions': s['extensions'],\n"
        "                  'spilled': s['spilled'],\n"
        "                  'table': hashlib.sha256(amq._table.tobytes())"
        ".hexdigest()}))\n"
    )
    outs = []
    for hashseed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outs.append(json.loads(proc.stdout))
    assert outs[0] == outs[1]
