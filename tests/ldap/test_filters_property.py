"""Semantic-preservation properties of the filter transformations.

`simplify`, `to_nnf` and `to_dnf` must never change which entries a
filter matches — replicas rely on this when canonicalizing stored and
incoming filters.
"""

from hypothesis import given, settings, strategies as st

from repro.ldap import (
    And,
    Entry,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
    matches,
    simplify,
    to_dnf,
    to_nnf,
)

_ATTRS = ["sn", "uid"]
_VALUES = ["a", "ab", "b", "c"]

_attr = st.sampled_from(_ATTRS)
_value = st.sampled_from(_VALUES)

_leaves = st.one_of(
    st.builds(Equality, _attr, _value),
    st.builds(GreaterOrEqual, _attr, _value),
    st.builds(LessOrEqual, _attr, _value),
    st.builds(Present, _attr),
    st.builds(lambda a, v: Substring(a, initial=v), _attr, _value),
)

_filters = st.recursive(
    _leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        kids.map(Not),
    ),
    max_leaves=6,
)

_entries = st.builds(
    lambda svals, uvals: Entry(
        "cn=probe,o=xyz",
        {
            "cn": "probe",
            **({"sn": svals} if svals else {}),
            **({"uid": uvals} if uvals else {}),
        },
    ),
    st.lists(_value, max_size=2),
    st.lists(_value, max_size=2),
)


@settings(max_examples=300, deadline=None)
@given(_filters, _entries)
def test_simplify_preserves_semantics(flt, entry):
    assert matches(simplify(flt), entry) == matches(flt, entry)


@settings(max_examples=300, deadline=None)
@given(_filters, _entries)
def test_nnf_preserves_semantics(flt, entry):
    assert matches(to_nnf(flt), entry) == matches(flt, entry)


@settings(max_examples=200, deadline=None)
@given(_filters, _entries)
def test_dnf_preserves_semantics(flt, entry):
    try:
        conjunctions = to_dnf(flt, max_terms=256)
    except OverflowError:
        return
    rebuilt = any(
        all(matches(literal, entry) for literal in conjunction)
        for conjunction in conjunctions
    )
    assert rebuilt == matches(flt, entry)


@settings(max_examples=200, deadline=None)
@given(_filters)
def test_simplify_idempotent(flt):
    once = simplify(flt)
    assert simplify(once) == once
