"""Tests for shared operation/result types."""

import pytest

from repro.core import AnswerStatus, HitStats, ReplicaAnswer
from repro.ldap import DN
from repro.server import (
    LdapError,
    Modification,
    ModType,
    Referral,
    ResultCode,
    SearchResult,
    UpdateOp,
    UpdateRecord,
)


class TestModification:
    def test_factories(self):
        assert Modification.add("cn", "a").mod_type is ModType.ADD
        assert Modification.replace("cn", "a", "b").values == ("a", "b")
        assert Modification.delete("cn").values == ()

    def test_frozen(self):
        mod = Modification.add("cn", "a")
        with pytest.raises(Exception):
            mod.attr = "sn"


class TestUpdateRecord:
    def test_effective_dn_plain(self):
        record = UpdateRecord(csn=1, op=UpdateOp.ADD, dn=DN.parse("cn=a,o=x"))
        assert record.effective_dn == DN.parse("cn=a,o=x")

    def test_effective_dn_rename(self):
        record = UpdateRecord(
            csn=1,
            op=UpdateOp.MODIFY_DN,
            dn=DN.parse("cn=a,o=x"),
            new_dn=DN.parse("cn=b,o=x"),
        )
        assert record.effective_dn == DN.parse("cn=b,o=x")


class TestSearchResult:
    def test_complete(self):
        assert SearchResult().complete
        assert not SearchResult(code=ResultCode.REFERRAL).complete
        assert not SearchResult(
            referrals=[Referral("ldap://x", DN.parse("o=x"))]
        ).complete

    def test_referral_str(self):
        assert str(Referral("ldap://hostB", DN.parse("c=in,o=xyz"))) == (
            "ldap://hostB/c=in,o=xyz"
        )
        assert str(Referral("ldap://hostB", DN(()))) == "ldap://hostB"


class TestLdapError:
    def test_message_includes_code(self):
        err = LdapError(ResultCode.NO_SUCH_OBJECT, "cn=ghost")
        assert "NO_SUCH_OBJECT" in str(err)
        assert err.code is ResultCode.NO_SUCH_OBJECT

    def test_message_optional(self):
        assert str(LdapError(ResultCode.REFERRAL)) == "REFERRAL"


class TestHitStats:
    def test_record_and_ratio(self):
        stats = HitStats()
        stats.record(ReplicaAnswer(AnswerStatus.HIT))
        stats.record(ReplicaAnswer(AnswerStatus.PARTIAL))
        stats.record(ReplicaAnswer(AnswerStatus.MISS))
        assert stats.queries == 3
        assert stats.hits == 1 and stats.partials == 1 and stats.misses == 1
        assert stats.hit_ratio == pytest.approx(1 / 3)

    def test_reset(self):
        stats = HitStats()
        stats.record(ReplicaAnswer(AnswerStatus.HIT))
        stats.reset()
        assert stats.queries == 0
        assert stats.hit_ratio == 0.0

    def test_is_hit_shortcut(self):
        assert ReplicaAnswer(AnswerStatus.HIT).is_hit
        assert not ReplicaAnswer(AnswerStatus.PARTIAL).is_hit
