"""Directory entries.

An LDAP entry is a set of attribute/value pairs named by a DN.  The
mandatory ``objectClass`` attribute ties the entry to its schema classes
(Figure 1 of the paper shows an ``inetOrgPerson`` example).

:class:`Entry` stores attributes case-insensitively, supports multiple
values per attribute (LDAP attributes are multi-valued by default) and
keeps both the original value spelling (for serialization and for
returning search results) and the normalized form (for matching).

Entries are mutable — the directory server applies modify operations in
place — but expose :meth:`Entry.copy` for replicas, which must hold
independent copies of master entries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .attributes import AttributeRegistry, DEFAULT_REGISTRY
from .dn import DN

__all__ = ["Entry"]

AttrValues = Union[str, int, Sequence[Union[str, int]]]


def _as_value_list(values: AttrValues) -> List[str]:
    if isinstance(values, (str, int)):
        return [str(values)]
    return [str(v) for v in values]


class Entry:
    """A directory entry: a DN plus a multi-valued attribute map.

    Args:
        dn: the entry's distinguished name (a :class:`~repro.ldap.dn.DN`
            or a string, which is parsed).
        attributes: mapping of attribute name to a value or list of values.
        registry: attribute registry supplying syntaxes; defaults to the
            standard registry.

    Example::

        Entry("cn=John Doe,ou=research,c=us,o=xyz", {
            "cn": ["John Doe", "John M Doe"],
            "objectClass": "inetOrgPerson",
            "telephoneNumber": "2618-2618",
            "mail": "john@us.xyz.com",
            "serialNumber": "0456",
            "departmentNumber": "80",
        })
    """

    __slots__ = ("_dn", "_attrs", "_registry")

    def __init__(
        self,
        dn: Union[DN, str],
        attributes: Optional[Mapping[str, AttrValues]] = None,
        registry: Optional[AttributeRegistry] = None,
    ):
        self._dn = dn if isinstance(dn, DN) else DN.parse(dn)
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        # attribute key (lowercase) -> (canonical name, [values])
        self._attrs: Dict[str, Tuple[str, List[str]]] = {}
        if attributes:
            for name, values in attributes.items():
                self.put(name, values)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def dn(self) -> DN:
        """The entry's distinguished name."""
        return self._dn

    @property
    def registry(self) -> AttributeRegistry:
        """The attribute registry supplying value syntaxes."""
        return self._registry

    def with_dn(self, dn: Union[DN, str]) -> "Entry":
        """A copy of this entry renamed to *dn* (used by modifyDN)."""
        clone = self.copy()
        clone._dn = dn if isinstance(dn, DN) else DN.parse(dn)
        return clone

    # ------------------------------------------------------------------
    # attribute access
    # ------------------------------------------------------------------
    def put(self, name: str, values: AttrValues) -> None:
        """Replace all values of attribute *name*."""
        vals = _as_value_list(values)
        canonical = self._registry.canonical(name)
        if vals:
            self._attrs[name.lower()] = (canonical, vals)
        else:
            self._attrs.pop(name.lower(), None)

    def add_values(self, name: str, values: AttrValues) -> None:
        """Append values to attribute *name*, skipping duplicates."""
        new_vals = _as_value_list(values)
        key = name.lower()
        atype = self._registry.get(name)
        if key in self._attrs:
            canonical, existing = self._attrs[key]
            have = {atype.normalize(v) for v in existing}
            merged = list(existing)
            for v in new_vals:
                if atype.normalize(v) not in have:
                    merged.append(v)
                    have.add(atype.normalize(v))
            self._attrs[key] = (canonical, merged)
        else:
            self.put(name, new_vals)

    def remove_values(self, name: str, values: Optional[AttrValues] = None) -> None:
        """Delete listed values of *name*, or the whole attribute if None."""
        key = name.lower()
        if key not in self._attrs:
            return
        if values is None:
            del self._attrs[key]
            return
        atype = self._registry.get(name)
        drop = {atype.normalize(v) for v in _as_value_list(values)}
        canonical, existing = self._attrs[key]
        remaining = [v for v in existing if atype.normalize(v) not in drop]
        if remaining:
            self._attrs[key] = (canonical, remaining)
        else:
            del self._attrs[key]

    def get(self, name: str) -> List[str]:
        """Values of attribute *name* (empty list when absent)."""
        found = self._attrs.get(name.lower())
        return list(found[1]) if found is not None else []

    def first(self, name: str) -> Optional[str]:
        """First value of *name*, or None when absent."""
        found = self._attrs.get(name.lower())
        return found[1][0] if found is not None and found[1] else None

    def has_attribute(self, name: str) -> bool:
        """True when the entry carries at least one value for *name*."""
        return name.lower() in self._attrs

    def normalized_values(self, name: str) -> Set:
        """Normalized value set of *name* under its syntax."""
        atype = self._registry.get(name)
        return {atype.normalize(v) for v in self.get(name)}

    def attribute_names(self) -> List[str]:
        """Canonical names of all attributes present."""
        return [canonical for canonical, _values in self._attrs.values()]

    @property
    def object_classes(self) -> Set[str]:
        """Lower-cased object classes of the entry."""
        return {v.lower() for v in self.get("objectClass")}

    def __contains__(self, name: str) -> bool:
        return self.has_attribute(name)

    def __iter__(self) -> Iterator[Tuple[str, List[str]]]:
        for canonical, values in self._attrs.values():
            yield canonical, list(values)

    # ------------------------------------------------------------------
    # projection and copying
    # ------------------------------------------------------------------
    def copy(self) -> "Entry":
        """Deep-enough copy (values are immutable strings)."""
        clone = Entry(self._dn, registry=self._registry)
        clone._attrs = {k: (c, list(v)) for k, (c, v) in self._attrs.items()}
        return clone

    def project(self, attributes: Optional[Iterable[str]] = None) -> "Entry":
        """Copy restricted to *attributes* (``None`` / ``*`` keeps all).

        This implements the *attributes* parameter of the LDAP search
        operation: the server only returns requested attributes.
        """
        if attributes is None:
            return self.copy()
        wanted = {a.lower() for a in attributes}
        if "*" in wanted:
            return self.copy()
        clone = Entry(self._dn, registry=self._registry)
        clone._attrs = {
            k: (c, list(v)) for k, (c, v) in self._attrs.items() if k in wanted
        }
        return clone

    def estimated_size(self) -> int:
        """Approximate wire size of the entry in bytes.

        Used by the update-traffic experiments.  When the generator stamped
        an explicit ``entrySizeBytes`` (to model the paper's ~6KB employee
        entries without storing 6KB of filler), that wins; otherwise the
        size of the textual representation is used.
        """
        stamped = self.first("entrySizeBytes")
        if stamped is not None:
            try:
                return int(stamped)
            except ValueError:
                pass
        total = len(str(self._dn))
        for _canonical, values in self._attrs.values():
            for v in values:
                total += len(_canonical) + len(v) + 2
        return total

    # ------------------------------------------------------------------
    # equality / repr
    # ------------------------------------------------------------------
    def semantically_equal(self, other: "Entry") -> bool:
        """True when DNs match and every attribute's value set matches."""
        if self._dn != other._dn:
            return False
        if set(self._attrs) != set(other._attrs):
            return False
        return all(
            self.normalized_values(name) == other.normalized_values(name)
            for name in self._attrs
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return self.semantically_equal(other)

    def __hash__(self) -> int:  # pragma: no cover - entries are mutable
        raise TypeError("Entry is mutable and unhashable; key by entry.dn")

    def __repr__(self) -> str:
        return f"Entry({str(self._dn)!r}, {len(self._attrs)} attrs)"
