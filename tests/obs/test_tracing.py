"""Tracing spans: no-op default, nesting paths, attached counts."""

from __future__ import annotations

from repro.obs import (
    TraceCollector,
    collecting,
    get_collector,
    install_collector,
    span,
    uninstall_collector,
)
from repro.obs.tracing import _NULL_SPAN


class TestNoOpDefault:
    def test_span_without_collector_is_shared_null(self):
        assert get_collector() is None
        handle = span("anything")
        assert handle is _NULL_SPAN
        assert span("something.else") is handle

    def test_null_span_supports_protocol(self):
        with span("x") as sp:
            sp.add("count", 3)  # silently dropped


class TestCollecting:
    def test_collecting_installs_and_restores(self):
        assert get_collector() is None
        with collecting() as trace:
            assert get_collector() is trace
        assert get_collector() is None

    def test_collecting_restores_prior_collector(self):
        outer = install_collector(TraceCollector())
        try:
            with collecting() as inner:
                assert get_collector() is inner
            assert get_collector() is outer
        finally:
            uninstall_collector()

    def test_explicit_collector_argument(self):
        mine = TraceCollector()
        with collecting(mine) as active:
            assert active is mine

    def test_install_uninstall(self):
        c = install_collector(TraceCollector())
        assert get_collector() is c
        uninstall_collector()
        assert get_collector() is None


class TestSpanRecording:
    def test_single_span_aggregates(self):
        with collecting() as trace:
            with span("sync.resync.history_scan") as sp:
                sp.add("actions_emitted", 7)
        agg = trace.aggregate()["sync.resync.history_scan"]
        assert agg["count"] == 1
        assert agg["total_s"] >= 0.0
        assert agg["actions_emitted"] == 7

    def test_nested_spans_record_composite_paths(self):
        with collecting() as trace:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        assert trace.count("outer") == 1
        assert trace.count("outer>inner") == 2
        assert "inner" not in trace.paths()

    def test_sibling_spans_do_not_nest(self):
        with collecting() as trace:
            with span("a"):
                pass
            with span("b"):
                pass
        assert trace.paths() == ["a", "b"]

    def test_add_sums_within_and_across_spans(self):
        with collecting() as trace:
            for n in (2, 3):
                with span("phase") as sp:
                    sp.add("entries_sent", n)
                    sp.add("entries_sent")
        assert trace.aggregate()["phase"]["entries_sent"] == 7

    def test_records_kept_with_duration_and_path(self):
        with collecting() as trace:
            with span("outer"):
                with span("inner"):
                    pass
        paths = [r.path for r in trace.records]
        assert paths == ["outer>inner", "outer"]  # inner finishes first
        assert all(r.duration_s >= 0.0 for r in trace.records)

    def test_max_records_drops_overflow_but_keeps_aggregate(self):
        collector = TraceCollector(max_records=2)
        with collecting(collector) as trace:
            for _ in range(5):
                with span("x"):
                    pass
        assert len(trace.records) == 2
        assert trace.dropped == 3
        assert trace.count("x") == 5

    def test_total_seconds_and_clear(self):
        with collecting() as trace:
            with span("x"):
                pass
        assert trace.total_seconds("x") >= 0.0
        trace.clear()
        assert trace.paths() == []
        assert trace.records == []

    def test_attrs_are_stored_on_records(self):
        with collecting() as trace:
            with span("sync.resync.poll", mode="poll"):
                pass
        assert trace.records[0].attrs == {"mode": "poll"}

    def test_exception_still_closes_span(self):
        with collecting() as trace:
            try:
                with span("boom"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
        assert trace.count("boom") == 1
        # The stack unwound: a following span is top-level again.
        with collecting(trace):
            with span("after"):
                pass
        assert trace.count("after") == 1


class TestInstrumentedPathsEmitSpans:
    """The spans wired into the stack actually fire (names of
    docs/OBSERVABILITY.md §2)."""

    def test_resync_and_answer_spans(self):
        from repro.core import FilterReplica
        from repro.ldap import Entry, Scope, SearchRequest
        from repro.server import DirectoryServer, SimulatedNetwork
        from repro.sync import ResyncProvider

        master = DirectoryServer("master")
        master.add_naming_context("o=xyz")
        master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        master.add(
            Entry(
                "cn=a,o=xyz",
                {"objectClass": ["person"], "cn": "a", "sn": "a",
                 "serialNumber": "004201IN"},
            )
        )
        provider = ResyncProvider(master)
        replica = FilterReplica("r", network=SimulatedNetwork())

        with collecting() as trace:
            replica.add_filter(
                SearchRequest("", Scope.SUB, "(serialNumber=0042*IN)"), provider
            )
            replica.answer(SearchRequest("", Scope.SUB, "(serialNumber=004201IN)"))
            replica.sync(provider)

        paths = trace.paths()
        assert any(p.endswith("sync.resync.cookie_round_trip") for p in paths)
        assert "core.replica.answer" in paths
        assert trace.aggregate()["core.replica.answer"]["hit"] == 1
