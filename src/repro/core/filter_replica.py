"""Filter based replication — the paper's proposed model (§3, §6).

A :class:`FilterReplica` stores entries satisfying one or more LDAP
queries.  For each replicated query it keeps meta information (the
search specification) and the synchronized content; an incoming query
is answered locally iff it is semantically contained in some stored
query (the ``QC`` algorithm of §4), otherwise a referral to the master
is generated.

The replica combines the three content sources of §7:

* **stored filters** — generalized queries (and whole-subtree queries
  like the location tree), kept consistent through a ReSync provider;
* **recent user queries** — an optional :class:`RecentQueryCache`
  window exploiting temporal locality (cached, never updated);
* **dynamic selection** — stored filters can be installed/discarded at
  runtime by :class:`repro.core.selection.FilterSelector` revolutions.

With ``routing=True`` (the default) the ``QC`` scan is replaced by
candidate routing through a :class:`~repro.core.routing.
ContainmentIndex` — guard-atom posting lists plus a base-DN region
prefix structure, with a positive memo for repeat queries — so
``answer()`` consults O(candidates) stored filters instead of all of
them, and hit evaluation runs compiled filters over
:meth:`SyncedContent.evaluate`'s incremental indexes instead of an
interpreted full-content rescan.  ``routing=False`` keeps the seed
linear scan callable as the equivalence oracle (docs/ROUTING.md).

Template-based containment (§3.4.2) prunes the stored filters checked
per query; ``containment_checks`` counts the comparisons actually made
(the query-processing-overhead metric of §7.4), including the cache
path's, split out as ``core.replica.containment_checks{source}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.query import SearchRequest
from ..obs.registry import MetricsRegistry
from ..obs.tracing import span
from ..server.network import SimulatedNetwork
from ..server.operations import Referral
from ..sync.consumer import SyncedContent
from .containment import query_contained_in
from .query_cache import NegativeResultCache, RecentQueryCache
from .replica import AnswerStatus, HitStats, ReplicaAnswer
from .routing import ContainmentIndex
from .templates import TemplateRegistry, template_key

__all__ = ["StoredFilter", "FilterReplica"]


@dataclass
class StoredFilter:
    """One replicated query: meta information plus synchronized content.

    ``sync_interval`` implements §3.2's per-object-type consistency
    levels: a filter with interval *n* is only polled every *n*-th sync
    round (1 = every round).  A subtree replica must apply the most
    stringent requirement to a whole subtree; a filter replica tunes it
    per replicated query.
    """

    request: SearchRequest
    content: SyncedContent
    key: str
    hits: int = 0
    sync_interval: int = 1

    def entry_count(self) -> int:
        return len(self.content)


class FilterReplica:
    """A partial replica whose unit of replication is an LDAP query.

    Args:
        name: replica name for diagnostics.
        master_url: referral target for misses.
        network: optional traffic accounting shared with sync.
        templates: when given, only queries belonging to the registered
            templates are considered answerable (template-based
            containment); other queries miss immediately.
        cache_capacity: size of the recent-user-query window (0 = off).
        compose_unions: extension beyond the paper's single-containment
            rule — a disjunctive query is answered when *every* disjunct
            is contained in some stored query, by uniting the per-
            disjunct evaluations.  Sound (each disjunct's answer set is
            complete) and strictly increases hit ratio.
        routing: route stored-filter and cache lookups through
            :class:`~repro.core.routing.ContainmentIndex` and evaluate
            hits through content indexes; ``False`` replays the seed
            linear scans (the property-test oracle).
        amq: enable the miss-side prescreens of docs/ROUTING.md §10 —
            the routing index's guard-atom AMQ, content-index AMQs, and
            the negative result caches over the stored-filter scan and
            the QC window.  ``False`` bypasses every prescreen while
            keeping answers byte-identical (the oracle for
            ``tests/core/test_prescreen_equivalence.py``).
        metrics: registry for ``core.replica.*`` / ``core.route.*`` /
            ``core.amq.*`` counters (private registry by default).
    """

    def __init__(
        self,
        name: str,
        master_url: str = "ldap://master",
        network: Optional[SimulatedNetwork] = None,
        templates: Optional[TemplateRegistry] = None,
        cache_capacity: int = 0,
        compose_unions: bool = False,
        cache_policy: str = "fifo",
        routing: bool = True,
        amq: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.master_url = master_url
        self.network = network
        self.templates = templates
        self.compose_unions = compose_unions
        self.routing = routing
        self.amq = amq
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = RecentQueryCache(
            cache_capacity, policy=cache_policy, indexed=routing, amq=amq
        )
        self._stored: Dict[SearchRequest, StoredFilter] = {}
        self._index: Optional[ContainmentIndex] = (
            ContainmentIndex(amq=amq) if routing else None
        )
        # Stored-path negative cache: only when no template registry is
        # attached — registries are mutable, and a template registered
        # after a recorded miss could change the prune decision.
        self._negative: Optional[NegativeResultCache] = (
            NegativeResultCache() if amq and templates is None else None
        )
        self._persist_handles: Dict[SearchRequest, object] = {}
        self.stats = HitStats()
        self.containment_checks = 0
        self._sync_round = 0
        self._size_memo: Optional[Tuple[Tuple, int, int]] = None
        self._checks_stored = self.metrics.counter(
            "core.replica.containment_checks", source="stored"
        )
        self._checks_cache = self.metrics.counter(
            "core.replica.containment_checks", source="cache"
        )
        self._route_candidates = self.metrics.counter("core.route.candidates")
        self._route_memo_hits = self.metrics.counter("core.route.memo_hits")

    # ------------------------------------------------------------------
    # stored-filter management
    # ------------------------------------------------------------------
    def add_filter(
        self,
        request: SearchRequest,
        provider=None,
        sync_interval: int = 1,
    ) -> StoredFilter:
        """Replicate *request*; polls *provider* for the initial content.

        Without a provider the filter starts empty (tests/benches may
        install content via :meth:`load_directly`).  *sync_interval*
        sets this filter's consistency level (§3.2): poll every n-th
        sync round.
        """
        if sync_interval < 1:
            raise ValueError("sync_interval must be >= 1")
        if request in self._stored:
            return self._stored[request]
        stored = StoredFilter(
            request=request,
            content=SyncedContent(request, network=self.network, amq=self.amq),
            key=template_key(request.filter),
            sync_interval=sync_interval,
        )
        if provider is not None:
            stored.content.poll(provider)
        self._stored[request] = stored
        if self._index is not None:
            self._index.add(request, stored)
        if self._negative is not None:
            # The new filter may contain a previously-missed request.
            self._negative.invalidate()
        self._size_memo = None
        return stored

    def remove_filter(self, request: SearchRequest, provider=None) -> None:
        """Discard a replicated query (ending its sync session)."""
        stored = self._stored.pop(request, None)
        if self._index is not None:
            self._index.remove(request)
        self._size_memo = None
        handle = self._persist_handles.pop(request, None)
        if handle is not None:
            handle.abandon()
            if self.network is not None:
                self.network.connection_closed()
        if stored is not None and provider is not None and stored.content.cookie:
            stored.content.end(provider)

    def load_directly(self, request: SearchRequest, entries: Sequence[Entry]) -> StoredFilter:
        """Install a stored filter's content without a provider."""
        stored = self.add_filter(request)
        stored.content.entries = {e.dn: e.copy() for e in entries}
        return stored

    def stored_filters(self) -> List[StoredFilter]:
        return list(self._stored.values())

    def holds(self, request: SearchRequest) -> bool:
        return request in self._stored

    @property
    def filter_count(self) -> int:
        """Stored filters + cached queries (Figures 8/9's x-axis)."""
        return len(self._stored) + len(self.cache)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def subscribe_persist(self, provider) -> int:
        """Switch every stored filter to persist-mode ReSync (§5.2).

        Persistent search gives strong consistency — every master change
        is applied to the replica the moment it commits — but costs one
        open connection *per replicated filter*, the scaling concern the
        paper raises.  Connections are accounted on the replica's
        network; returns the number opened.

        Filters already holding a poll cookie resume their session, so
        no content is retransmitted.
        """
        opened = 0
        for stored in self._stored.values():
            if stored.request in self._persist_handles:
                continue
            response, handle = provider.persist(
                stored.request,
                stored.content.apply_notification,
                cookie=stored.content.cookie,
            )
            for update in response.updates:
                stored.content.apply_notification(update)
            stored.content.cookie = None  # session is now connection-bound
            self._persist_handles[stored.request] = handle
            if self.network is not None:
                self.network.connection_opened()
            opened += 1
        return opened

    def unsubscribe_persist(self) -> None:
        """Abandon all persist sessions (back to polling mode)."""
        for handle in self._persist_handles.values():
            handle.abandon()
            if self.network is not None:
                self.network.connection_closed()
        self._persist_handles.clear()

    @property
    def persist_connections(self) -> int:
        """Open persist-mode connections (one per subscribed filter)."""
        return len(self._persist_handles)

    def sync(self, provider) -> None:
        """One sync round: poll every stored filter that is due.

        A filter with ``sync_interval`` n is polled on every n-th round
        (per-object-type consistency levels, §3.2).
        """
        self._sync_round += 1
        for stored in self._stored.values():
            if self._sync_round % stored.sync_interval == 0:
                stored.content.poll(provider)

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def answer(self, request: SearchRequest) -> ReplicaAnswer:
        """Answer *request* locally or refer to the master.

        Order: template admission check, stored filters (template-pruned
        containment), then the recent-query cache.  Traced as
        ``core.replica.answer`` (no-op without a collector).
        """
        with span("core.replica.answer") as sp:
            result = self._answer(request)
            sp.add("hit", 1 if result.status is AnswerStatus.HIT else 0)
        return result

    def _find_stored(self, request: SearchRequest, qkey: str) -> Optional[StoredFilter]:
        """First stored query containing *request*, in insertion order.

        The routed path consults the :class:`ContainmentIndex` (positive
        memo, then guard-atom/region candidates); the linear path
        replays the seed scan.  Both apply the ``templates.may_answer``
        prune and count each :func:`query_contained_in` actually run, so
        answers — and the prune's effect on ``containment_checks`` — are
        identical.

        With prescreens on, a request that already proved to miss every
        stored filter short-circuits through the negative result cache
        (exact keys; invalidated whenever a filter is added), skipping
        both the candidate walk and its containment checks.  The
        *answer* is identical either way — only the re-derivation cost
        differs.
        """
        if self._negative is not None and self._negative.known_miss(request):
            return None
        if self._index is not None:
            memo = self._index.memo_get(request)
            if memo is not None:
                self._route_memo_hits.inc()
                return memo.handle
            candidates = self._index.candidates(request)
            self._route_candidates.inc(len(candidates))
            for cand in candidates:
                stored = cand.handle
                if self.templates is not None and not self.templates.may_answer(
                    stored.key, qkey
                ):
                    continue
                self.containment_checks += 1
                self._checks_stored.inc()
                if query_contained_in(request, stored.request):
                    self._index.memo_put(request, cand)
                    return stored
            if self._negative is not None:
                self._negative.note_miss(request)
            return None
        for stored in self._stored.values():
            if self.templates is not None and not self.templates.may_answer(
                stored.key, qkey
            ):
                continue
            self.containment_checks += 1
            self._checks_stored.inc()
            if query_contained_in(request, stored.request):
                return stored
        if self._negative is not None:
            self._negative.note_miss(request)
        return None

    def _cache_lookup(self, request: SearchRequest):
        """Cache lookup with its containment checks folded into the
        replica's §7.4 overhead metric (labeled ``source=cache``)."""
        before = self.cache.containment_checks
        cached = self.cache.lookup(request)
        checked = self.cache.containment_checks - before
        if checked:
            self.containment_checks += checked
            self._checks_cache.inc(checked)
        return cached

    def _answer(self, request: SearchRequest) -> ReplicaAnswer:
        qkey = template_key(request.filter)
        admitted = self._admitted(request, qkey)

        if admitted:
            stored = self._find_stored(request, qkey)
            if stored is not None:
                stored.hits += 1
                answer = ReplicaAnswer(
                    AnswerStatus.HIT,
                    entries=self._evaluate(request, stored),
                    answered_by=str(stored.request),
                )
                self.stats.record(answer)
                return answer

            cached = self._cache_lookup(request)
            if cached is not None:
                entries, source = cached
                answer = ReplicaAnswer(
                    AnswerStatus.HIT, entries=entries, answered_by=f"cache:{source}"
                )
                self.stats.record(answer)
                return answer

            if self.compose_unions:
                composed = self._answer_union(request)
                if composed is not None:
                    self.stats.record(composed)
                    return composed

        answer = ReplicaAnswer(
            AnswerStatus.MISS,
            referrals=[Referral(self.master_url, request.base)],
        )
        self.stats.record(answer)
        return answer

    def _answer_union(self, request: SearchRequest) -> Optional[ReplicaAnswer]:
        """Union composition: each disjunct answered by some stored query.

        Only applies to top-level OR filters.  Every disjunct's sub-query
        (same base/scope/attributes, the disjunct as filter) must be
        contained in a stored query; the answer is the DN-deduplicated
        union of the per-disjunct evaluations.

        Disjunct lookup goes through :meth:`_find_stored`, so the
        ``templates.may_answer`` prune applies here exactly as on the
        direct path — a union can no longer be served via a template
        pairing the registry rejects.
        """
        from ..ldap.filters import Or, simplify

        flt = simplify(request.filter)
        if not isinstance(flt, Or):
            return None
        merged: Dict[DN, Entry] = {}
        sources: List[str] = []
        for disjunct in flt.children:
            sub_request = request.with_filter(disjunct)
            holder = self._find_stored(sub_request, template_key(disjunct))
            if holder is None:
                return None  # one uncovered disjunct forfeits the union
            holder.hits += 1
            for entry in self._evaluate(sub_request, holder):
                merged.setdefault(entry.dn, entry)
            sources.append(str(holder.request))
        return ReplicaAnswer(
            AnswerStatus.HIT,
            entries=list(merged.values()),
            answered_by="union:" + " + ".join(sources),
        )

    def _admitted(self, request: SearchRequest, qkey: str) -> bool:
        """Template admission: with a registry, only member queries are
        candidates for local answering."""
        if self.templates is None:
            return True
        return self.templates.classify(request.filter) is not None

    def _evaluate(self, request: SearchRequest, stored: StoredFilter) -> List[Entry]:
        """Evaluate *request* over the containing stored query's content."""
        if self.routing:
            return stored.content.evaluate(request)
        return [
            request.project(entry)
            for entry in stored.content.entries.values()
            if request.selects(entry)
        ]

    def observe_miss(self, request: SearchRequest, entries: Sequence[Entry]) -> None:
        """Feed a master-answered query back into the recent-query cache."""
        self.cache.insert(request, entries)

    # ------------------------------------------------------------------
    # prescreen observability
    # ------------------------------------------------------------------
    def sync_amq_metrics(self) -> None:
        """Mirror the prescreens' plain-int accounting into the metric
        registry (docs/OBSERVABILITY.md §2).

        The prescreens keep plain ints on the hot path; this publishes
        them on demand — benches and dashboards call it once per
        snapshot instead of paying instrument updates per answer.
        ``Counter.set`` is the documented idiom for syncing externally
        maintained counts.
        """
        sites = []
        if self._index is not None and self._index.amq is not None:
            sites.append(("routing", self._index.amq))
        cache_index = self.cache._index
        if cache_index is not None and cache_index.amq is not None:
            sites.append(("query_cache", cache_index.amq))
        for stored in self._stored.values():
            summary = stored.content.amq_summary()
            if summary is not None:
                sites.append(("content", summary))
                break  # one representative content index per snapshot
        for site, summary in sites:
            self.metrics.counter("core.amq.lookups", site=site).set(summary.lookups)
            self.metrics.counter("core.amq.negatives", site=site).set(
                summary.negatives
            )
            self.metrics.counter("core.amq.extensions", site=site).set(
                summary.extensions
            )
            self.metrics.gauge("core.amq.items", site=site).set(summary.items)
            self.metrics.gauge("core.amq.occupancy", site=site).set(
                summary.occupancy()
            )
            self.metrics.gauge("core.amq.fpr", site=site).set(summary.fpr())
        for site, negcache in (
            ("stored", self._negative),
            ("query_cache", self.cache.negatives),
        ):
            if negcache is None:
                continue
            self.metrics.counter("core.qc.negcache.hits", site=site).set(
                negcache.hits
            )
            self.metrics.counter("core.qc.negcache.lookups", site=site).set(
                negcache.lookups
            )
            self.metrics.counter("core.qc.negcache.invalidations", site=site).set(
                negcache.invalidations
            )

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def _content_fingerprint(self) -> Tuple:
        """Cheap identity of all stored content: each ``SyncedContent``
        bumps ``version`` on every mutation, so an unchanged fingerprint
        means the memoized sizes are still exact."""
        return tuple(
            (stored.content.serial, stored.content.version)
            for stored in self._stored.values()
        )

    def _sizes(self) -> Tuple[int, int]:
        fingerprint = self._content_fingerprint()
        memo = self._size_memo
        if memo is None or memo[0] != fingerprint:
            seen: Set[DN] = set()
            total = 0
            for stored in self._stored.values():
                for dn, entry in stored.content.entries.items():
                    if dn not in seen:
                        seen.add(dn)
                        total += entry.estimated_size()
            memo = (fingerprint, len(seen), total)
            self._size_memo = memo
        return memo[1], memo[2]

    def entry_count(self, include_cache: bool = True) -> int:
        """Unique entries held (the paper's replica-size metric)."""
        count = self._sizes()[0]
        if include_cache:
            count += self.cache.entry_count()
        return count

    def size_bytes(self) -> int:
        """Approximate stored bytes across stored filters."""
        return self._sizes()[1]

    def __repr__(self) -> str:
        return (
            f"FilterReplica({self.name!r}, {len(self._stored)} filters, "
            f"{self.entry_count()} entries)"
        )
