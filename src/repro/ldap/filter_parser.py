"""RFC 2254 filter string parser.

Parses the string representation of LDAP search filters into the AST of
:mod:`repro.ldap.filters`.  Supports the full grammar the paper uses:

* boolean operators ``&``, ``|``, ``!``,
* equality ``=``, ordering ``>=`` / ``<=``, approximate ``~=``,
* presence ``(attr=*)`` and substring ``(attr=a*b*c)`` assertions,
* hex escapes ``\\2a`` ``\\28`` ``\\29`` ``\\5c`` inside assertion values.

Round-trips with the AST's ``str()``: ``parse_filter(str(f)) == f`` for
every filter ``f`` built from parsed input (property-tested).
"""

from __future__ import annotations

from typing import List

from .filters import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)

__all__ = ["parse_filter", "FilterParseError"]


class FilterParseError(ValueError):
    """Raised when a filter string cannot be parsed."""

    def __init__(self, message: str, text: str, position: int):
        super().__init__(f"{message} at position {position} in {text!r}")
        self.text = text
        self.position = position


class _Parser:
    """Recursive-descent parser over the RFC 2254 grammar."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low-level cursor helpers -------------------------------------
    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise FilterParseError("unexpected end of filter", self.text, self.pos)
        return self.text[self.pos]

    def expect(self, ch: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise FilterParseError(f"expected {ch!r}", self.text, self.pos)
        self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    # -- grammar -------------------------------------------------------
    def parse(self) -> Filter:
        node = self.parse_filter()
        if not self.at_end():
            raise FilterParseError("trailing characters", self.text, self.pos)
        return node

    def parse_filter(self) -> Filter:
        self.expect("(")
        ch = self.peek()
        if ch == "&":
            self.pos += 1
            node: Filter = And(tuple(self.parse_filter_list()))
        elif ch == "|":
            self.pos += 1
            node = Or(tuple(self.parse_filter_list()))
        elif ch == "!":
            self.pos += 1
            node = Not(self.parse_filter())
        else:
            node = self.parse_item()
        self.expect(")")
        return node

    def parse_filter_list(self) -> List[Filter]:
        children = []
        while not self.at_end() and self.peek() == "(":
            children.append(self.parse_filter())
        if not children:
            raise FilterParseError("empty filter list", self.text, self.pos)
        return children

    def parse_item(self) -> Filter:
        attr = self.parse_attribute()
        op = self.parse_operator()
        raw = self.parse_raw_value()
        if op == ">=":
            return GreaterOrEqual(attr, _unescape(raw, self.text, self.pos))
        if op == "<=":
            return LessOrEqual(attr, _unescape(raw, self.text, self.pos))
        if op == "~=":
            return Approx(attr, _unescape(raw, self.text, self.pos))
        # Equality operator: the raw value decides between presence,
        # substring and plain equality.  Unescaped '*' characters are
        # substring separators; escaped \2a stars are literal.
        if raw == "*":
            return Present(attr)
        if "*" in raw:
            parts = [
                _unescape(piece, self.text, self.pos) for piece in raw.split("*")
            ]
            initial, *middle, final = parts
            any_parts = tuple(p for p in middle if p != "")
            if not initial and not final and not any_parts:
                return Present(attr)
            return Substring(attr, initial=initial, any_parts=any_parts, final=final)
        return Equality(attr, _unescape(raw, self.text, self.pos))

    def parse_attribute(self) -> str:
        start = self.pos
        while not self.at_end() and self.text[self.pos] not in "=<>~()":
            self.pos += 1
        attr = self.text[start : self.pos].strip()
        if not attr:
            raise FilterParseError("missing attribute name", self.text, start)
        return attr

    def parse_operator(self) -> str:
        ch = self.peek()
        if ch == "=":
            self.pos += 1
            return "="
        if ch in "<>~":
            self.pos += 1
            self.expect("=")
            return ch + "="
        raise FilterParseError("expected an operator", self.text, self.pos)

    def parse_raw_value(self) -> str:
        """Consume up to the closing paren, keeping escapes unresolved."""
        start = self.pos
        while not self.at_end():
            ch = self.text[self.pos]
            if ch == ")":
                return self.text[start : self.pos]
            if ch == "(":
                raise FilterParseError(
                    "unescaped '(' in assertion value", self.text, self.pos
                )
            if ch == "\\":
                self.pos += 1  # skip the escape introducer; hex digits follow
            self.pos += 1
        raise FilterParseError("unterminated assertion value", self.text, start)


_HEX_ESCAPES = {"2a": "*", "28": "(", "29": ")", "5c": "\\", "00": "\0"}


def _unescape(raw: str, text: str, position: int) -> str:
    """Resolve RFC 2254 ``\\xx`` hex escapes in an assertion value."""
    out = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            hexpair = raw[i + 1 : i + 3].lower()
            if len(hexpair) < 2:
                raise FilterParseError("truncated escape", text, position)
            try:
                out.append(chr(int(hexpair, 16)))
            except ValueError:
                raise FilterParseError(
                    f"invalid hex escape \\{hexpair}", text, position
                ) from None
            i += 3
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_filter(text: str) -> Filter:
    """Parse an RFC 2254 filter string into a :class:`Filter` AST.

    >>> parse_filter("(&(sn=Doe)(givenName=John))")
    And(children=(Equality(attr='sn', value='Doe'), Equality(attr='givenName', value='John')))
    """
    return _Parser(text.strip()).parse()
