"""Tests for filter containment: Propositions 1–3 machinery."""

import pytest

from repro.core import (
    filter_contained_in,
    general_contained_in,
    predicate_contained_in,
    prefix_upper_bound,
)
from repro.ldap import (
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Present,
    Substring,
    parse_filter,
)


def contained(f1: str, f2: str) -> bool:
    return filter_contained_in(parse_filter(f1), parse_filter(f2))


class TestPredicateTable:
    """The assertion-value comparison table of Proposition 2."""

    def test_different_attrs_never(self):
        assert not predicate_contained_in(Equality("a", "1"), Equality("b", "1"))

    def test_anything_in_presence(self):
        p = Present("sn")
        for pred in (
            Equality("sn", "x"),
            GreaterOrEqual("sn", "x"),
            LessOrEqual("sn", "x"),
            Substring("sn", initial="x"),
            Present("sn"),
        ):
            assert predicate_contained_in(pred, p)

    def test_presence_in_nothing_else(self):
        p = Present("sn")
        assert not predicate_contained_in(p, Equality("sn", "x"))
        assert not predicate_contained_in(p, GreaterOrEqual("sn", "x"))
        assert not predicate_contained_in(p, Substring("sn", initial="x"))

    def test_equality_in_equality(self):
        assert predicate_contained_in(Equality("sn", "Doe"), Equality("sn", "DOE"))
        assert not predicate_contained_in(Equality("sn", "Doe"), Equality("sn", "Smith"))

    def test_equality_in_ranges(self):
        assert predicate_contained_in(Equality("age", "35"), GreaterOrEqual("age", "30"))
        assert not predicate_contained_in(Equality("age", "25"), GreaterOrEqual("age", "30"))
        assert predicate_contained_in(Equality("age", "25"), LessOrEqual("age", "30"))
        assert not predicate_contained_in(Equality("age", "35"), LessOrEqual("age", "30"))

    def test_integer_semantics_in_ranges(self):
        # "9" >= "30" lexicographically, but integers disagree
        assert not predicate_contained_in(Equality("age", "9"), GreaterOrEqual("age", "30"))

    def test_range_in_range(self):
        assert predicate_contained_in(GreaterOrEqual("age", "40"), GreaterOrEqual("age", "30"))
        assert not predicate_contained_in(GreaterOrEqual("age", "20"), GreaterOrEqual("age", "30"))
        assert predicate_contained_in(LessOrEqual("age", "20"), LessOrEqual("age", "30"))
        assert not predicate_contained_in(LessOrEqual("age", "40"), LessOrEqual("age", "30"))

    def test_ge_not_in_le(self):
        assert not predicate_contained_in(GreaterOrEqual("age", "10"), LessOrEqual("age", "90"))

    def test_equality_in_substring(self):
        assert predicate_contained_in(
            Equality("serialNumber", "004217IN"), Substring("serialNumber", initial="0042")
        )
        assert predicate_contained_in(
            Equality("serialNumber", "004217IN"),
            Substring("serialNumber", initial="0042", final="IN"),
        )
        assert not predicate_contained_in(
            Equality("serialNumber", "994217US"), Substring("serialNumber", initial="0042")
        )

    def test_substring_prefix_as_range(self):
        """§4.1: substrings interpreted as range assertions."""
        s = Substring("sn", initial="smi")
        assert predicate_contained_in(s, GreaterOrEqual("sn", "smi"))
        assert predicate_contained_in(s, GreaterOrEqual("sn", "sma"))
        assert not predicate_contained_in(s, GreaterOrEqual("sn", "smz"))
        assert predicate_contained_in(s, LessOrEqual("sn", "smj"))
        assert not predicate_contained_in(s, LessOrEqual("sn", "smi"))

    def test_range_not_in_substring(self):
        assert not predicate_contained_in(
            GreaterOrEqual("sn", "smi"), Substring("sn", initial="smi")
        )

    def test_approx_only_identical(self):
        from repro.ldap import Approx

        assert predicate_contained_in(Approx("sn", "doe"), Approx("sn", "DOE"))
        assert not predicate_contained_in(Approx("sn", "doe"), Equality("sn", "doe"))
        assert not predicate_contained_in(Equality("sn", "doe"), Approx("sn", "doe"))


class TestSubstringEmbedding:
    def test_longer_prefix_in_shorter(self):
        assert contained("(sn=smit*)", "(sn=smi*)")
        assert not contained("(sn=smi*)", "(sn=smit*)")

    def test_suffix_containment(self):
        assert contained("(sn=*ith)", "(sn=*th)")
        assert not contained("(sn=*th)", "(sn=*ith)")

    def test_prefix_suffix_to_prefix(self):
        assert contained("(serialNumber=0042*IN)", "(serialNumber=0042*)")
        assert contained("(serialNumber=0042*IN)", "(serialNumber=00*N)")

    def test_any_part_from_initial(self):
        assert contained("(sn=abcdef*)", "(sn=*cde*)")

    def test_any_part_order_respected(self):
        assert contained("(sn=*abc*def*)", "(sn=*abc*)")
        assert contained("(sn=*abc*def*)", "(sn=*def*)")
        assert not contained("(sn=*abc*)", "(sn=*abc*def*)")

    def test_any_part_cannot_span_blocks(self):
        # values matching (sn=ab*cd) need not contain "bc"
        assert not contained("(sn=ab*cd)", "(sn=*bc*)")

    def test_identical_substring(self):
        assert contained("(sn=a*b*c)", "(sn=a*b*c)")

    def test_case_insensitive(self):
        assert contained("(sn=SMIT*)", "(sn=smi*)")


class TestStructuralRecursion:
    def test_conjunct_weakening(self):
        assert contained("(&(sn=Doe)(givenName=John))", "(sn=Doe)")
        assert not contained("(sn=Doe)", "(&(sn=Doe)(givenName=John))")

    def test_conjunction_both_sides(self):
        assert contained("(&(sn=Doe)(age>=40))", "(&(sn=Doe)(age>=30))")
        assert not contained("(&(sn=Doe)(age>=20))", "(&(sn=Doe)(age>=30))")

    def test_disjunct_strengthening(self):
        assert contained("(sn=Doe)", "(|(sn=Doe)(sn=Smith))")
        assert not contained("(|(sn=Doe)(sn=Smith))", "(sn=Doe)")

    def test_or_in_or(self):
        assert contained("(|(sn=A)(sn=B))", "(|(sn=A)(sn=B)(sn=C))")
        assert not contained("(|(sn=A)(sn=D))", "(|(sn=A)(sn=B)(sn=C))")

    def test_paper_prop2_example(self):
        """F1=(a<=p)∧(b>=q) ⊆ F2=(a=x)∨(b>=y) iff q>=y (paper §4.1)."""
        assert contained("(&(sn<=p)(uid>=q))", "(|(sn=x)(uid>=a))")  # q >= a
        assert not contained("(&(sn<=p)(uid>=b))", "(|(sn=x)(uid>=q))")  # b < q

    def test_not_containment_antimonotone(self):
        assert contained("(!(age>=30))", "(!(age>=40))")
        assert not contained("(!(age>=40))", "(!(age>=30))")

    def test_mixed_not_and_positive_false(self):
        assert not contained("(!(sn=Doe))", "(sn=Doe)")

    def test_reflexive(self):
        for text in ("(sn=Doe)", "(&(a=1)(b=2))", "(!(a=1))", "(sn=s*)"):
            assert contained(text, text)

    def test_identical_modulo_order_and_case(self):
        assert contained("(&(sn=Doe)(givenName=J))", "(&(givenname=j)(SN=doe))")

    def test_same_template_prop3(self):
        """Proposition 3: predicate-wise comparison within a template."""
        assert contained(
            "(&(serialNumber=0042*IN)(departmentNumber=2406))",
            "(&(serialNumber=00*IN)(departmentNumber=2406))",
        )
        assert not contained(
            "(&(serialNumber=0042*IN)(departmentNumber=2406))",
            "(&(serialNumber=00*IN)(departmentNumber=2407))",
        )


class TestGeneralContainment:
    """Proposition 1: DNF-based inconsistency checking."""

    def test_agrees_on_simple_cases(self):
        cases = [
            ("(sn=Doe)", "(sn=*)", True),
            ("(&(sn=Doe)(age>=40))", "(age>=30)", True),
            ("(sn=Doe)", "(sn=Smith)", False),
            ("(|(a=1)(b=2))", "(|(a=1)(b=2)(c=3))", True),
        ]
        for f1, f2, expected in cases:
            assert general_contained_in(parse_filter(f1), parse_filter(f2)) is expected

    def test_paper_example(self):
        f1 = parse_filter("(&(age<=30)(serialNumber>=500))")
        f2 = parse_filter("(|(age=25)(serialNumber>=400))")
        assert general_contained_in(f1, f2)
        f2_bad = parse_filter("(|(age=25)(serialNumber>=600))")
        assert not general_contained_in(f1, f2_bad)

    def test_negated_presence(self):
        # (sn=Doe) ⊆ ¬¬(sn=*): F1 ∧ ¬F2 = (sn=Doe) ∧ ¬(sn=*) inconsistent
        assert general_contained_in(parse_filter("(sn=Doe)"), parse_filter("(sn=*)"))

    def test_multivalued_soundness(self):
        """(a=1)∧(a=2) is satisfiable for multi-valued attributes, so
        it must NOT be treated as contained in an unrelated filter."""
        f1 = parse_filter("(&(cn=x)(cn=y))")
        f2 = parse_filter("(sn=zzz)")
        assert not general_contained_in(f1, f2)

    def test_overflow_guard(self):
        big = parse_filter(
            "(&" + "".join(f"(|(x{i}=1)(y{i}=2))" for i in range(12)) + ")"
        )
        with pytest.raises(OverflowError):
            general_contained_in(big, parse_filter("(zz=1)"), max_terms=64)

    def test_handles_not_on_either_side(self):
        assert general_contained_in(
            parse_filter("(&(sn=Doe)(!(age>=40)))"), parse_filter("(sn=Doe)")
        )


class TestPrefixUpperBound:
    def test_increments_last_char(self):
        assert prefix_upper_bound("abc") == "abd"
        assert prefix_upper_bound("a") == "b"

    def test_bounds_all_prefixed_strings(self):
        bound = prefix_upper_bound("smi")
        for value in ("smi", "smith", "smizzzz"):
            assert value < bound

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            prefix_upper_bound("")
