"""Filter generalization (§6.1).

User queries typically return too few entries to be efficient units of
replication — the meta-data of ``(telephoneNumber=X)`` is comparable to
its data.  *Generalized* forms of user queries describe frequently
accessed regions instead, following the paper's two guidelines
(developed from [12]):

(i)  **attribute components** — structured values are truncated to a
     component prefix/suffix: ``(telephoneNumber=261-758-4132)`` →
     ``(telephoneNumber=261-758*)``; a serial number with an embedded
     site block and geography code generalizes to the paper's
     ``(serialnumber=_*_)`` shape, e.g. ``(serialNumber=0042*IN)``;

(ii) **natural hierarchy** — a filter naming both levels of a hierarchy
     keeps the upper level and wildcards the lower:
     ``(&(divisionNumber=X)(departmentNumber=Y))`` →
     ``(&(divisionNumber=X)(departmentNumber=*))`` (the paper's
     ``(&(div=X)(dept=_))``).

Rules are small strategy objects; a :class:`Generalizer` dispatches a
query to every applicable rule and returns the candidate generalized
queries, which feed :mod:`repro.core.selection`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Tuple

from ..ldap.filters import (
    And,
    Equality,
    Filter,
    Present,
    Substring,
)
from ..ldap.query import SearchRequest

__all__ = [
    "GeneralizationRule",
    "IdentityGeneralization",
    "PrefixGeneralization",
    "PrefixSuffixGeneralization",
    "SuffixGeneralization",
    "HierarchyGeneralization",
    "Generalizer",
]


class GeneralizationRule(Protocol):
    """Maps a user query to a generalized candidate query (or None)."""

    def generalize(self, request: SearchRequest) -> Optional[SearchRequest]:
        """The generalized query, or None when the rule does not apply."""
        ...  # pragma: no cover - protocol


def _single_equality(flt: Filter, attr: str) -> Optional[Equality]:
    """The filter itself, when it is an equality on *attr*."""
    if isinstance(flt, Equality) and flt.attr_key == attr.lower():
        return flt
    return None


@dataclass(frozen=True)
class IdentityGeneralization:
    """The query itself as its own replication candidate.

    For query types whose results are already compact — the paper's
    department queries ``(&(dept=X)(div=Y))`` return a handful of
    entries — the finest useful replication unit is the query, and the
    benefit/size selection of §6.2 chooses among them directly.  When
    *template_text* is given, only queries matching that template (see
    :mod:`repro.core.templates`) are candidates.
    """

    template_text: Optional[str] = None

    def __post_init__(self):
        if self.template_text is not None:
            from .templates import Template

            object.__setattr__(
                self, "_template", Template.parse(self.template_text)
            )
        else:
            object.__setattr__(self, "_template", None)

    def generalize(self, request: SearchRequest) -> Optional[SearchRequest]:
        template = getattr(self, "_template")
        if template is not None and not template.matches(request.filter):
            return None
        return request


@dataclass(frozen=True)
class PrefixGeneralization:
    """(attr=VALUE) → (attr=PREFIX*) keeping *prefix_len* characters.

    Guideline (i) for values whose leading component encodes locality
    (telephone exchanges, block-allocated identifiers).
    """

    attr: str
    prefix_len: int

    def generalize(self, request: SearchRequest) -> Optional[SearchRequest]:
        pred = _single_equality(request.filter, self.attr)
        if pred is None or len(pred.value) <= self.prefix_len:
            return None
        return request.with_filter(
            Substring(pred.attr, initial=pred.value[: self.prefix_len])
        )


@dataclass(frozen=True)
class PrefixSuffixGeneralization:
    """(attr=VALUE) → (attr=PREFIX*SUFFIX) — the ``(attr=_*_)`` shape.

    For values structured as ``<block><sequence><code>`` (the paper's
    serialNumber): the block prefix captures spatial allocation and the
    trailing code the geography, so one generalized filter covers a
    semantically local set of entries.
    """

    attr: str
    prefix_len: int
    suffix_len: int

    def generalize(self, request: SearchRequest) -> Optional[SearchRequest]:
        pred = _single_equality(request.filter, self.attr)
        if pred is None:
            return None
        value = pred.value
        if len(value) <= self.prefix_len + self.suffix_len:
            return None
        return request.with_filter(
            Substring(
                pred.attr,
                initial=value[: self.prefix_len],
                final=value[len(value) - self.suffix_len :],
            )
        )


@dataclass(frozen=True)
class SuffixGeneralization:
    """(attr=VALUE) → (attr=*SUFFIX), splitting at *separator*.

    E.g. mail addresses: ``(mail=john@us.xyz.com)`` → ``(mail=*@us.xyz.com)``.
    §7.2(c): because the local part of a mail address is not organized,
    this generalization describes access patterns poorly — the resulting
    filters are large and their per-entry benefit low; the benches
    demonstrate exactly that.
    """

    attr: str
    separator: str = "@"

    def generalize(self, request: SearchRequest) -> Optional[SearchRequest]:
        pred = _single_equality(request.filter, self.attr)
        if pred is None or self.separator not in pred.value:
            return None
        _local, sep, domain = pred.value.partition(self.separator)
        if not domain:
            return None
        return request.with_filter(Substring(pred.attr, final=sep + domain))


@dataclass(frozen=True)
class HierarchyGeneralization:
    """Keep the upper hierarchy level, wildcard the lower (guideline ii).

    Applies to conjunctions containing equalities on both *keep_attr*
    and *wildcard_attr*: the latter becomes a presence assertion.
    ``(&(divisionNumber=X)(departmentNumber=Y))`` →
    ``(&(divisionNumber=X)(departmentNumber=*))``.
    """

    keep_attr: str
    wildcard_attr: str

    def generalize(self, request: SearchRequest) -> Optional[SearchRequest]:
        flt = request.filter
        if not isinstance(flt, And):
            return None
        keep = self.keep_attr.lower()
        wild = self.wildcard_attr.lower()
        has_keep = False
        children: List[Filter] = []
        changed = False
        for child in flt.children:
            if isinstance(child, Equality) and child.attr_key == wild:
                children.append(Present(child.attr))
                changed = True
            else:
                if isinstance(child, Equality) and child.attr_key == keep:
                    has_keep = True
                children.append(child)
        if not (has_keep and changed):
            return None
        return request.with_filter(And(tuple(children)))


class Generalizer:
    """Applies every registered rule to a query.

    Rules are tried in registration order; each applicable rule yields
    one candidate.  Duplicate candidates (different rules converging on
    the same query) are collapsed.
    """

    def __init__(self, rules: Iterable[GeneralizationRule] = ()):
        self._rules: List[GeneralizationRule] = list(rules)

    def add_rule(self, rule: GeneralizationRule) -> None:
        self._rules.append(rule)

    @property
    def rules(self) -> Tuple[GeneralizationRule, ...]:
        return tuple(self._rules)

    def generalize(self, request: SearchRequest) -> List[SearchRequest]:
        """All distinct generalized candidates for *request*."""
        seen = set()
        out: List[SearchRequest] = []
        for rule in self._rules:
            candidate = rule.generalize(request)
            if candidate is not None and candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
        return out
