"""Consumer-side snapshots: point-in-time warm starts (ROADMAP item 5).

The provider side has been durable since PR 5 (journal + recovery) —
but a restarted *replica* still booted empty and paid a full
O(content) rebuild.  This module closes that gap with the recovery
ladder's new first rung (docs/RECOVERY.md):

* :class:`SnapshotStore` — atomic storage of one point-in-time dump:
  the replicated content as LDIF (:mod:`repro.ldap.ldif`, whose
  round-trip is exact by property test), the ReSync resumption cookie,
  and a SHA-256 checksum over the content body.  Writes go to a temp
  file and are renamed into place (`os.replace`), so a crash mid-save
  leaves the previous snapshot readable — never a torn one.
* :class:`SnapshotRecoverer` — the staged warm-start driver, modelled
  on the snapshot-plus-event-stream recovery of
  SecureAccessTokenAuthorizer's ``StatefulRecoverer`` (PAPERS.md):
  explicit stages ``loading → verifying → resuming → live``, exported
  through ``obs`` as the ``sync.snapshot.*`` instruments
  (docs/OBSERVABILITY.md §2).

Integrity is split deliberately between two mechanisms.  The checksum
covers the *content body*: a truncated or bit-flipped dump fails
verification and is **discarded, never applied** — the replica falls
through to the existing ladder (cookie-less rebuild, or sketch
reconciliation when wired through :class:`ResilientConsumer
<repro.sync.resilient.ResilientConsumer>`).  The *cookie* is excluded
from the checksum on purpose: its validity is enforced end-to-end by
the provider, which refuses unknown or expired cookies with
:class:`~repro.sync.protocol.SyncProtocolError` — exactly the signal
the ladder already climbs on.  A stale-but-intact snapshot therefore
restores content (bounded divergence) and lets the protocol decide how
much of it is still good.

Damage hooks (``damage_truncate`` / ``damage_corrupt`` /
``damage_stale_cookie``) mirror the journal's
(:mod:`repro.sync.durability`) so :class:`FaultyNetwork
<repro.server.faults.FaultyNetwork>` can tear snapshots the same way
it tears journals.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.ldif import entries_to_ldif, parse_ldif
from ..obs.registry import MetricsRegistry
from ..obs.tracing import span

__all__ = [
    "SnapshotError",
    "SnapshotDocument",
    "SnapshotStore",
    "MemorySnapshotStore",
    "FileSnapshotStore",
    "SnapshotRecoverer",
    "RECOVERY_STAGES",
    "encode_snapshot",
    "decode_snapshot",
]

#: Format marker of the first header line; bumped on layout changes so
#: an old reader never misinterprets a new dump.
_MAGIC = "# repro-snapshot v1"
#: Placeholder for an absent cookie in the header (a cookie never
#: starts with ``-``, and LDIF values never reach the header parser).
_NO_COOKIE = "-"


class SnapshotError(ValueError):
    """A snapshot failed structural or checksum verification.

    Always carries a human-readable reason; callers treat any instance
    as "discard, fall through" — a damaged snapshot is never applied.
    """


@dataclass(frozen=True)
class SnapshotDocument:
    """One verified point-in-time dump, decoded."""

    entries: Dict[DN, Entry]
    cookie: Optional[str]
    #: Size of the encoded form — what a warm start *avoided* moving
    #: over the wire (bench reporting).
    size_bytes: int


def encode_snapshot(entries: Iterable[Entry], cookie: Optional[str]) -> str:
    """Render a snapshot document: checksummed header + LDIF body."""
    body = entries_to_ldif(list(entries))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    header = [
        _MAGIC,
        f"# cookie: {cookie if cookie is not None else _NO_COOKIE}",
        f"# sha256: {digest}",
    ]
    return "\n".join(header) + "\n" + body


def decode_snapshot(text: str) -> SnapshotDocument:
    """Parse and verify a snapshot document.

    Raises :class:`SnapshotError` on any structural damage: missing or
    foreign header, checksum mismatch (truncation, bit flips, a torn
    tail), or an LDIF body that no longer parses.
    """
    lines = text.split("\n", 3)
    if len(lines) < 4 or lines[0] != _MAGIC:
        raise SnapshotError(f"not a {_MAGIC!r} document")
    cookie_line, digest_line, body = lines[1], lines[2], lines[3]
    if not cookie_line.startswith("# cookie: "):
        raise SnapshotError(f"malformed cookie header: {cookie_line!r}")
    if not digest_line.startswith("# sha256: "):
        raise SnapshotError(f"malformed checksum header: {digest_line!r}")
    raw_cookie = cookie_line[len("# cookie: ") :]
    cookie = None if raw_cookie == _NO_COOKIE else raw_cookie
    expected = digest_line[len("# sha256: ") :]
    actual = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if actual != expected:
        raise SnapshotError(
            f"content checksum mismatch: header says {expected[:12]}…, "
            f"body hashes to {actual[:12]}… (truncated or corrupted dump)"
        )
    try:
        parsed = list(parse_ldif(body))
    except ValueError as exc:
        raise SnapshotError(f"snapshot body is not valid LDIF: {exc}") from None
    return SnapshotDocument(
        entries={entry.dn: entry for entry in parsed},
        cookie=cookie,
        size_bytes=len(text.encode("utf-8")),
    )


class SnapshotStore:
    """Storage of one snapshot document (abstract base).

    Subclasses store a single text blob; encoding, verification and the
    never-apply-damage policy live above, in
    :func:`encode_snapshot` / :func:`decode_snapshot` and
    :class:`SnapshotRecoverer`.
    """

    def save(self, entries: Iterable[Entry], cookie: Optional[str]) -> int:
        """Atomically replace the snapshot; returns the encoded size."""
        text = encode_snapshot(entries, cookie)
        self._write(text)
        return len(text.encode("utf-8"))

    def load(self) -> Optional[str]:
        """The raw stored document, or None when absent."""
        raise NotImplementedError

    def discard(self) -> None:
        """Drop the stored snapshot (a damaged one is never kept: the
        next warm start must not trip over it again)."""
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError

    def _write(self, text: str) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # damage hooks (fault injection; mirror the journal's)
    # ------------------------------------------------------------------
    def damage_truncate(self, keep_fraction: float) -> None:
        """Tear the snapshot tail: keep roughly *keep_fraction* of it
        (a crash mid-write on a filesystem without atomic rename)."""
        text = self.load()
        if text is None:
            return
        self._write(text[: int(len(text) * keep_fraction)])

    def damage_corrupt(self, position_fraction: float) -> None:
        """Flip bytes at roughly *position_fraction* through the dump."""
        text = self.load()
        if not text:
            return
        i = min(int(len(text) * position_fraction), len(text) - 1)
        self._write(text[:i] + "\x00" + text[i + 1 :])

    def damage_stale_cookie(self) -> None:
        """Rewrite the stored cookie to one no provider knows.

        The document stays checksum-valid — this models a snapshot that
        simply *aged out* (the provider expired or forgot the session),
        the case the ladder must catch via the provider's refusal, not
        via local verification.
        """
        text = self.load()
        if text is None:
            return
        lines = text.split("\n")
        for i, line in enumerate(lines):
            if line.startswith("# cookie: "):
                lines[i] = "# cookie: stale-snapshot-cookie:0"
                break
        self._write("\n".join(lines))


class MemorySnapshotStore(SnapshotStore):
    """In-memory store for tests and benches."""

    def __init__(self):
        self._text: Optional[str] = None

    def _write(self, text: str) -> None:
        self._text = text

    def load(self) -> Optional[str]:
        return self._text

    def discard(self) -> None:
        self._text = None

    @property
    def size_bytes(self) -> int:
        return len(self._text.encode("utf-8")) if self._text is not None else 0


class FileSnapshotStore(SnapshotStore):
    """File-backed store: ``content.snapshot`` in *directory*.

    Saves write a temp file and :func:`os.replace` it into place — the
    same write-then-rename discipline as
    :meth:`FileJournal.write_snapshot
    <repro.sync.durability.FileJournal.write_snapshot>`, so a crash
    mid-save leaves the previous dump intact.
    """

    SNAPSHOT_NAME = "content.snapshot"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, self.SNAPSHOT_NAME)

    def _write(self, text: str) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, self.path)

    def load(self) -> Optional[str]:
        if not os.path.exists(self.path):
            return None
        with open(self.path, "r", encoding="utf-8") as fh:
            return fh.read()

    def discard(self) -> None:
        if os.path.exists(self.path):
            os.remove(self.path)

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self.path) if os.path.exists(self.path) else 0


#: Stage names in order; the ``sync.snapshot.stage`` gauge holds the
#: current stage's index.  ``discarded`` is terminal for one warm-start
#: attempt (the ladder continues without snapshot state); ``live``
#: means the resumed session completed a successful cycle.
RECOVERY_STAGES = ("idle", "loading", "verifying", "resuming", "live", "discarded")


class SnapshotRecoverer:
    """Staged consumer warm start from a :class:`SnapshotStore`.

    One instance serves one :class:`SyncedContent
    <repro.sync.consumer.SyncedContent>` for the life of the consumer:
    :meth:`warm_start` walks ``loading → verifying → resuming`` on
    restart, :meth:`mark_live` is called by the driver after the first
    successful post-restore cycle, and :meth:`save` dumps the current
    content after successful cycles.  Every transition is visible
    through the ``sync.snapshot.*`` instruments, so fault benches can
    report warm-start outcomes next to the ladder's reload/reconcile
    counters.
    """

    def __init__(
        self,
        store: SnapshotStore,
        content,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.content = content
        registry = registry if registry is not None else MetricsRegistry()
        self._stage = "idle"
        self._stage_gauge = registry.gauge("sync.snapshot.stage")
        self._saves = registry.counter("sync.snapshot.saves")
        self._save_bytes = registry.counter("sync.snapshot.save_bytes")
        self._loads = registry.counter("sync.snapshot.loads")
        self._misses = registry.counter("sync.snapshot.misses")
        self._warm_starts = registry.counter("sync.snapshot.warm_starts")
        self._restored = registry.counter("sync.snapshot.restored_entries")
        self._restored_bytes = registry.counter("sync.snapshot.restored_bytes")
        self._discarded = registry.counter("sync.snapshot.discarded")

    # ------------------------------------------------------------------
    # stage bookkeeping
    # ------------------------------------------------------------------
    @property
    def stage(self) -> str:
        return self._stage

    def _enter(self, stage: str) -> None:
        self._stage = stage
        self._stage_gauge.set(RECOVERY_STAGES.index(stage))

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def save(self) -> int:
        """Dump the content's entries + cookie; returns bytes written."""
        with span("sync.snapshot.save") as sp:
            size = self.store.save(
                self.content.entries.values(), self.content.cookie
            )
            sp.add("bytes", size)
        self._saves.inc()
        self._save_bytes.inc(size)
        return size

    # ------------------------------------------------------------------
    # warm start
    # ------------------------------------------------------------------
    def warm_start(self) -> bool:
        """One staged warm-start attempt against the store.

        ``loading``: read the raw document (absent → stay cold, no
        harm).  ``verifying``: structural + checksum verification —
        any :class:`SnapshotError` discards the snapshot *and* deletes
        it from the store, so a damaged dump is consulted exactly once.
        ``resuming``: install the verified entries and cookie into the
        content; the next poll resumes at the snapshot's generation and
        costs O(delta).  Returns True when content was installed.
        """
        self._enter("loading")
        with span("sync.snapshot.load") as sp:
            text = self.store.load()
            sp.add("bytes", len(text.encode("utf-8")) if text else 0)
        if text is None:
            self._misses.inc()
            self._enter("idle")
            return False
        self._loads.inc()

        self._enter("verifying")
        try:
            with span("sync.snapshot.verify"):
                document = decode_snapshot(text)
        except SnapshotError:
            self._discard()
            return False

        self._enter("resuming")
        with span("sync.snapshot.resume") as sp:
            # Assignment through the property resets the content index
            # and bumps the version — the sanctioned external-writer
            # path (see SyncedContent.entries).
            self.content.entries = document.entries
            self.content.cookie = document.cookie
            sp.add("entries", len(document.entries))
        self._warm_starts.inc()
        self._restored.inc(len(document.entries))
        self._restored_bytes.inc(document.size_bytes)
        return True

    def mark_live(self) -> None:
        """The resumed session completed a successful cycle."""
        if self._stage == "resuming":
            self._enter("live")

    def _discard(self) -> None:
        """Damage detected: count it, drop the stored snapshot, and
        leave the content untouched — the ladder continues cold."""
        self._discarded.inc()
        self.store.discard()
        self._enter("discarded")
