"""Tests for persist-mode filter replicas (§5.2's strong consistency)."""

import pytest

from repro.core import FilterReplica
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification, SimulatedNetwork
from repro.sync import ResyncProvider


@pytest.fixture()
def master() -> DirectoryServer:
    m = DirectoryServer("master")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(6):
        m.add(
            Entry(
                f"cn=P{i},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"P{i}",
                    "sn": "T",
                    "departmentNumber": str(i % 2),
                },
            )
        )
    return m


DEPT0 = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=0)")
DEPT1 = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=1)")


class TestSubscribePersist:
    def test_one_connection_per_filter(self, master):
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("r", network=net)
        replica.add_filter(DEPT0, provider)
        replica.add_filter(DEPT1, provider)
        opened = replica.subscribe_persist(provider)
        assert opened == 2
        assert replica.persist_connections == 2
        assert net.open_connections == 2

    def test_changes_apply_immediately_without_polling(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r", network=SimulatedNetwork())
        replica.add_filter(DEPT0, provider)
        replica.subscribe_persist(provider)
        master.modify("cn=P0,o=xyz", [Modification.replace("title", "live")])
        # no replica.sync() call — strong consistency via notifications
        stored = replica.stored_filters()[0]
        assert stored.content.matches_master(master)
        answer = replica.answer(DEPT0)
        titles = {e.first("title") for e in answer.entries}
        assert "live" in titles

    def test_resumes_poll_session_without_retransfer(self, master):
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("r", network=net)
        replica.add_filter(DEPT0, provider)  # initial content via poll
        before = net.stats.sync_entry_pdus
        replica.subscribe_persist(provider)
        assert net.stats.sync_entry_pdus == before  # nothing resent

    def test_subscribe_idempotent(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r", network=SimulatedNetwork())
        replica.add_filter(DEPT0, provider)
        assert replica.subscribe_persist(provider) == 1
        assert replica.subscribe_persist(provider) == 0
        assert replica.persist_connections == 1

    def test_unsubscribe_closes_connections(self, master):
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("r", network=net)
        replica.add_filter(DEPT0, provider)
        replica.subscribe_persist(provider)
        replica.unsubscribe_persist()
        assert replica.persist_connections == 0
        assert net.open_connections == 0
        assert provider.active_session_count == 0

    def test_remove_filter_closes_its_connection(self, master):
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("r", network=net)
        replica.add_filter(DEPT0, provider)
        replica.add_filter(DEPT1, provider)
        replica.subscribe_persist(provider)
        replica.remove_filter(DEPT0)
        assert replica.persist_connections == 1
        assert net.open_connections == 1

    def test_scaling_cost_grows_with_filters(self, master):
        """§5.2: one connection per replicated filter 'might not scale
        for large replicas' — the cost the poll mode avoids."""
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("r", network=net)
        filters = [
            SearchRequest("o=xyz", Scope.SUB, f"(cn=P{i})") for i in range(6)
        ]
        for request in filters:
            replica.add_filter(request, provider)
        replica.subscribe_persist(provider)
        assert net.open_connections == len(filters)
        # Poll mode needs zero standing connections for the same filters.
        replica.unsubscribe_persist()
        assert net.open_connections == 0
        replica.sync(provider)  # still converges by polling
        for stored in replica.stored_filters():
            assert stored.content.matches_master(master)
