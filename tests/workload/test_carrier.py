"""Tests for the §3.3 flat-namespace carrier directory generator."""

import pytest

from repro.ldap import DN
from repro.server import DirectoryServer
from repro.workload import CarrierConfig, generate_carrier_directory


@pytest.fixture(scope="module")
def carrier():
    return generate_carrier_directory(CarrierConfig(subscribers=500, seed=2))


class TestStructure:
    def test_counts(self, carrier):
        assert len(carrier.subscribers) == 500
        assert len(carrier.entries) == 502  # org + container + subscribers

    def test_flat_namespace(self, carrier):
        """Every subscriber is a direct child of the single container."""
        container = DN.parse(carrier.container_dn)
        for sub in carrier.subscribers:
            assert sub.dn.parent == container

    def test_msisdn_prefix_structure(self, carrier):
        cfg = carrier.config
        for sub in carrier.subscribers:
            msisdn = sub.first("telephoneNumber")
            assert len(msisdn) == 10
            assert msisdn[: cfg.prefix_digits] in carrier.prefixes

    def test_prefix_capacity_respected(self, carrier):
        cfg = carrier.config
        counts = {}
        for sub in carrier.subscribers:
            prefix = sub.first("telephoneNumber")[: cfg.prefix_digits]
            counts[prefix] = counts.get(prefix, 0) + 1
        assert max(counts.values()) <= cfg.subscribers_per_prefix

    def test_unique_msisdns(self, carrier):
        numbers = [s.first("telephoneNumber") for s in carrier.subscribers]
        assert len(numbers) == len(set(numbers))

    def test_deterministic(self):
        a = generate_carrier_directory(CarrierConfig(subscribers=50, seed=7))
        b = generate_carrier_directory(CarrierConfig(subscribers=50, seed=7))
        assert [str(e.dn) for e in a.entries] == [str(e.dn) for e in b.entries]

    def test_loads_into_server(self, carrier):
        server = DirectoryServer("telco")
        server.add_naming_context(carrier.suffix)
        assert server.load(carrier.entries) == len(carrier.entries)
