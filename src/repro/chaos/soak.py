"""The soak engine: long-horizon chaos runs with continuous invariants.

A :class:`SoakRunner` stitches the repository's deterministic pieces
into one closed-loop experiment:

* a master loaded from the synthetic enterprise directory, fronted by a
  durable (journaled) :class:`~repro.sync.resync.ResyncProvider`;
* N tenant replicas — one :class:`~repro.sync.ResilientConsumer` per
  country subtree, each with the health state machine enabled
  (docs/FAULTS.md §4);
* the :class:`~repro.workload.SoakScenario` load plan (diurnal update
  waves, flash-crowd query bursts, region renames);
* a :class:`~repro.chaos.FaultSchedule` armed on the network's
  deterministic scheduler.

Between ticks the runner checks the soak **invariants**, failing fast
with an :class:`InvariantViolation` that names the seed and the
virtual-clock timestamp — everything needed to replay the failure:

I1 — **staleness honesty**: a replica that has fallen behind past its
    degraded threshold, or that the machine quarantined or retired,
    must be serving degraded-stamped reads; fresh-looking stale data is
    the one thing the paper's availability argument (§5) forbids.
I2 — **journal-replay determinism**: recovering the provider's journal
    twice (from identical copies) must reconstruct byte-identical
    session state; a divergent replay would mean crash recovery
    depends on something outside the journal.
I3 — **post-heal convergence**: after the last fault window heals,
    every replica must converge to content byte-identical to the
    master within the configured cycle budget (consumers that spent
    their entire retry budget and retired to ``gave_up`` fail this
    too, unless the config opts out).

The whole run is a pure function of ``(SoakConfig, FaultSchedule)``:
:meth:`SoakReport.fingerprint` hashes every observable outcome, and two
runs from the same inputs produce equal fingerprints (asserted by
``benchmarks/bench_soak.py`` on every run).
"""

from __future__ import annotations

import copy
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ldap.query import Scope, SearchRequest
from ..server.directory import DirectoryServer
from ..server.faults import FaultyNetwork
from ..sync import (
    DurabilityConfig,
    HealthPolicy,
    MemoryJournal,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
)
from ..sync.durability import session_to_wire
from ..workload import DirectoryConfig, generate_directory
from ..workload.scenario import RegionRenamer, ScenarioConfig, SoakScenario
from ..workload.updates import UpdateConfig, UpdateGenerator
from .schedule import FaultSchedule

__all__ = ["SoakConfig", "SoakReport", "SoakRunner", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A soak invariant broke; carries everything needed to replay."""

    def __init__(self, invariant: str, message: str, seed: int, t_ms: float):
        super().__init__(
            f"[seed={seed} t={t_ms:.0f}ms] invariant {invariant}: {message}"
        )
        self.invariant = invariant
        self.seed = seed
        self.t_ms = t_ms


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's shape (the scenario derives from the same seed).

    The default health policy is deliberately roomier than
    :class:`HealthPolicy`'s: a multi-hour soak crosses long partitions
    whose quarantine re-probes each cost an attempt, and the canonical
    run is supposed to *survive* them — budget exhaustion is a scenario
    for the terminal-state tests, not the baseline soak.
    """

    seed: int = 0
    tenants: int = 3
    employees: int = 240
    duration_hours: float = 3.0
    tick_ms: float = 60_000.0
    mode: str = "poll"
    durable: bool = True
    policy: RetryPolicy = RetryPolicy(
        max_attempts=4,
        base_backoff_ms=20.0,
        max_backoff_ms=2_000.0,
        degraded_after=2,
    )
    health: Optional[HealthPolicy] = HealthPolicy(
        max_total_attempts=512,
        max_total_backoff_ms=3_600_000.0,
        breaker_threshold=5,
        breaker_cooldown_ms=10_000.0,
        quarantine_after=2,
        quarantine_probe_ms=120_000.0,
    )
    scenario: Optional[ScenarioConfig] = None
    convergence_cycles: int = 96
    check_interval_ticks: int = 10
    require_all_converge: bool = True

    def __post_init__(self):
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.mode not in ("poll", "persist"):
            raise ValueError(f"mode must be 'poll' or 'persist', got {self.mode!r}")

    def scenario_config(self) -> ScenarioConfig:
        if self.scenario is not None:
            return self.scenario
        return ScenarioConfig(
            seed=self.seed,
            duration_hours=self.duration_hours,
            tick_ms=self.tick_ms,
        )


@dataclass
class SoakReport:
    """Everything one clean soak run observed (violations raise)."""

    seed: int
    ticks: int
    horizon_ms: float
    tenants: int
    updates_committed: int
    renamed_entries: int
    queries_served: int
    degraded_queries: int
    invariant_checks: int
    fault_counts: Dict[str, int]
    windows: List[dict]
    overlapping_windows: int
    fleet: List[dict]
    convergence_cycles: Dict[str, Optional[int]]
    gave_up: int
    round_trips: int
    bytes_sent: int
    elapsed_virtual_ms: float

    @property
    def converged(self) -> bool:
        return all(c is not None for c in self.convergence_cycles.values())

    def fingerprint(self) -> str:
        """SHA-256 over every observable outcome — equal for two runs
        of the same ``(SoakConfig, FaultSchedule)``; the bench asserts
        this on every run (the replayability gate)."""
        payload = {
            "seed": self.seed,
            "ticks": self.ticks,
            "updates": self.updates_committed,
            "renamed": self.renamed_entries,
            "queries": self.queries_served,
            "degraded_queries": self.degraded_queries,
            "faults": dict(sorted(self.fault_counts.items())),
            "fleet": self.fleet,
            "convergence": self.convergence_cycles,
            "round_trips": self.round_trips,
            "bytes_sent": self.bytes_sent,
            "elapsed_virtual_ms": round(self.elapsed_virtual_ms, 3),
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def fleet_table(self) -> str:
        """The fleet-status table ``repro-ldap soak`` prints."""
        headers = (
            "consumer",
            "mode",
            "state",
            "breaker",
            "degraded",
            "trips",
            "attempts",
            "backoff_ms",
            "entries",
            "converged@",
        )
        rows = []
        for snap in self.fleet:
            cycles = self.convergence_cycles.get(snap["name"])
            rows.append(
                (
                    snap["name"],
                    snap["mode"],
                    snap["state"],
                    snap["breaker"],
                    "yes" if snap["degraded"] else "no",
                    str(snap["breaker_trips"]),
                    str(snap["attempts_spent"]),
                    f"{snap['backoff_budget_ms']:.0f}",
                    str(snap["entries"]),
                    "never" if cycles is None else f"cycle {cycles}",
                )
            )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
        return "\n".join(lines)


class SoakRunner:
    """Drives one soak run; see the module docstring for the design."""

    def __init__(self, config: Optional[SoakConfig], schedule: FaultSchedule):
        self.config = config if config is not None else SoakConfig()
        self.schedule = schedule
        cfg = self.config
        self.directory = generate_directory(
            DirectoryConfig(employees=cfg.employees, seed=cfg.seed)
        )
        self.master = DirectoryServer("master")
        self.master.add_naming_context(self.directory.suffix)
        self.master.load(self.directory.entries)
        self.network = FaultyNetwork(seed=cfg.seed)
        self.scheduler = self.network.scheduler
        if cfg.durable:
            self.provider = ResyncProvider(
                self.master,
                durability=DurabilityConfig(),
                journal=MemoryJournal(),
            )
        else:
            self.provider = ResyncProvider(self.master)
        countries = self.directory.countries()
        self.consumers: List[ResilientConsumer] = []
        for i in range(cfg.tenants):
            cc = countries[i % len(countries)]
            request = SearchRequest(
                f"c={cc},{self.directory.suffix}",
                Scope.SUB,
                "(objectClass=person)",
            )
            self.consumers.append(
                ResilientConsumer(
                    request,
                    self.provider,
                    network=self.network,
                    policy=cfg.policy,
                    seed=cfg.seed * 1000 + i,
                    mode=cfg.mode,
                    health=cfg.health,
                    name=f"tenant-{cc.lower()}-{i}",
                )
            )
        self.scenario = SoakScenario(cfg.scenario_config())
        self.updates = UpdateGenerator(
            self.directory, self.master, UpdateConfig(seed=cfg.seed)
        )
        self.renamer = RegionRenamer(self.directory, self.master, seed=cfg.seed)
        self._rng = random.Random(f"soak:{cfg.seed}")
        registry = self.network.registry
        self._ticks = registry.counter("chaos.ticks")
        self._updates_c = registry.counter("chaos.updates")
        self._renames_c = registry.counter("chaos.renames")
        self._queries_c = registry.counter("chaos.queries")
        self._degraded_q = registry.counter("chaos.queries.degraded")
        self._checks = registry.counter("chaos.invariant_checks")
        self._violations = registry.counter("chaos.violations")
        self.schedule.arm(self.network, self.provider, self.scheduler)

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(self) -> SoakReport:
        """Execute the whole soak; returns the report or raises
        :class:`InvariantViolation` at the first broken invariant."""
        cfg = self.config
        queries_served = 0
        degraded_queries = 0
        for tick in self.scenario.ticks:
            # Advance the virtual clock to this tick, firing every
            # schedule boundary due on the way.
            self.scheduler.run_for(max(0.0, tick.at_ms - self.scheduler.now))
            self._ticks.inc()
            if tick.region_rename:
                moved = self.renamer.wave()
                self._renames_c.inc(moved)
            if tick.updates:
                self._updates_c.inc(self.updates.apply(tick.updates))
            for consumer in self.consumers:
                consumer.sync_once()
            served, degraded = self._serve_queries(tick.queries)
            queries_served += served
            degraded_queries += degraded
            self._check_staleness_honesty()
            if cfg.durable and tick.tick % cfg.check_interval_ticks == 0:
                self._check_journal_replay()
        # Drain any window boundary beyond the last tick, then heal:
        # "after the last fault window" is where convergence is owed.
        self.scheduler.run_for(
            max(0.0, self.schedule.horizon_ms - self.scheduler.now)
        )
        self.network.heal()
        convergence = self._check_convergence()
        if cfg.durable:
            self._check_journal_replay()
        return SoakReport(
            seed=cfg.seed,
            ticks=len(self.scenario.ticks),
            horizon_ms=self.scenario.horizon_ms,
            tenants=cfg.tenants,
            updates_committed=int(self._updates_c.value),
            renamed_entries=self.renamer.renamed_entries,
            queries_served=queries_served,
            degraded_queries=degraded_queries,
            invariant_checks=int(self._checks.value),
            fault_counts=self.network.fault_counts(),
            windows=self.schedule.describe(),
            overlapping_windows=self.schedule.overlap_count(),
            fleet=[c.health_snapshot() for c in self.consumers],
            convergence_cycles=convergence,
            gave_up=sum(1 for c in self.consumers if c.health_state == "gave_up"),
            round_trips=int(self.network.stats.round_trips),
            bytes_sent=int(self.network.stats.bytes_sent),
            elapsed_virtual_ms=self.network.elapsed_ms + self.scheduler.now,
        )

    def _serve_queries(self, count: int) -> tuple:
        """Serve this tick's read burst from the replica fleet.

        Reads are answered from local content (that is the point of
        replication); a degraded consumer still answers — availability
        over freshness — but every such read is counted separately, the
        quantity the staleness-honesty invariant keeps truthful.
        """
        served = 0
        degraded = 0
        for consumer in self.consumers:
            entries = list(consumer.content.entries.values())
            for _ in range(count):
                if entries:
                    self._rng.choice(entries)
                served += 1
                self._queries_c.inc()
                if consumer.degraded:
                    degraded += 1
                    self._degraded_q.inc()
        return served, degraded

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return self.network.elapsed_ms + self.scheduler.now

    def _fail(self, invariant: str, message: str) -> None:
        self._violations.inc()
        raise InvariantViolation(
            invariant, message, seed=self.config.seed, t_ms=self._now_ms()
        )

    def _check_staleness_honesty(self) -> None:
        """I1: nobody serves fresh-looking stale data."""
        self._checks.inc()
        for consumer in self.consumers:
            snap = consumer.health_snapshot()
            if snap["state"] in ("quarantined", "gave_up") and not snap["degraded"]:
                self._fail(
                    "I1",
                    f"{snap['name']} is {snap['state']} but serving "
                    "non-degraded reads",
                )
            if (
                snap["failed_cycles"] >= consumer.policy.degraded_after
                and not snap["degraded"]
            ):
                self._fail(
                    "I1",
                    f"{snap['name']} failed {snap['failed_cycles']} consecutive "
                    "cycles but is serving non-degraded reads",
                )

    def _journal_fingerprint(self) -> str:
        """Recover a throwaway provider from a copy of the live journal
        and hash the reconstructed session state."""
        clone = ResyncProvider(
            self.master,
            durability=self.provider.durability,
            journal=copy.deepcopy(self.provider.journal),
        )
        clone.recover()
        payload = {
            "watermark": clone._watermark,
            "sessions": sorted(
                (session_to_wire(s) for s in clone.sessions.active_sessions()),
                key=lambda wire: wire["sid"],
            ),
            "last_change": sorted(
                (str(dn), csn) for dn, csn in clone._last_change.items()
            ),
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _check_journal_replay(self) -> None:
        """I2: journal replay is deterministic — two recoveries from
        identical journal copies reconstruct byte-identical state."""
        self._checks.inc()
        first = self._journal_fingerprint()
        second = self._journal_fingerprint()
        if first != second:
            self._fail(
                "I2",
                f"two replays of the same journal diverged "
                f"({first[:12]} != {second[:12]})",
            )

    def _check_convergence(self) -> Dict[str, Optional[int]]:
        """I3: every replica converges to master content post-heal."""
        self._checks.inc()
        cfg = self.config
        convergence: Dict[str, Optional[int]] = {}
        for consumer in self.consumers:
            if consumer.health_state == "gave_up":
                convergence[consumer.name] = None
                if cfg.require_all_converge:
                    self._fail(
                        "I3",
                        f"{consumer.name} exhausted its retry budget "
                        "(gave_up) before the faults healed",
                    )
                continue
            cycles = consumer.converge(self.master, max_cycles=cfg.convergence_cycles)
            convergence[consumer.name] = cycles
            if cycles is None and cfg.require_all_converge:
                self._fail(
                    "I3",
                    f"{consumer.name} did not match the master within "
                    f"{cfg.convergence_cycles} post-heal cycles",
                )
        return convergence
