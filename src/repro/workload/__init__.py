"""Workload substrate: synthetic enterprise directory + query traces.

Substitutes the paper's proprietary IBM directory and two-day access
trace with structure-preserving synthetic equivalents (see DESIGN.md §4
for the substitution argument).
"""

from .datagen import (
    CarrierConfig,
    CarrierDirectory,
    DirectoryConfig,
    EnterpriseDirectory,
    GeographyConfig,
    ORG_SUFFIX,
    generate_carrier_directory,
    generate_directory,
)
from .distributions import TemporalMixer, WeightedChoice, ZipfSampler
from .querygen import WorkloadConfig, WorkloadGenerator
from .scenario import RegionRenamer, ScenarioConfig, SoakScenario, TickLoad
from .trace import QueryRecord, QueryType, Trace

__all__ = [
    "CarrierConfig",
    "CarrierDirectory",
    "generate_carrier_directory",
    "DirectoryConfig",
    "GeographyConfig",
    "EnterpriseDirectory",
    "generate_directory",
    "ORG_SUFFIX",
    "WorkloadConfig",
    "WorkloadGenerator",
    "QueryRecord",
    "QueryType",
    "Trace",
    "ScenarioConfig",
    "SoakScenario",
    "TickLoad",
    "RegionRenamer",
    "ZipfSampler",
    "WeightedChoice",
    "TemporalMixer",
]
