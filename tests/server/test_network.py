"""Tests for the simulated network's accounting."""

import pytest

from repro.server import DirectoryServer, SimulatedNetwork, TrafficStats


@pytest.fixture()
def network() -> SimulatedNetwork:
    net = SimulatedNetwork()
    server = DirectoryServer("hostA")
    server.add_naming_context("o=xyz")
    net.register(server)
    return net


class TestResolution:
    def test_exact_url(self, network):
        assert network.resolve("ldap://hostA").name == "hostA"

    def test_url_with_dn_suffix(self, network):
        assert network.resolve("ldap://hostA/c=us,o=xyz").name == "hostA"

    def test_unknown_rejected(self, network):
        with pytest.raises(KeyError):
            network.resolve("ldap://ghost")

    def test_servers_view(self, network):
        assert set(network.servers) == {"ldap://hostA"}


class TestCharging:
    def test_round_trip(self, network):
        network.charge_round_trip()
        assert network.stats.round_trips == 1
        assert network.stats.requests == 1

    def test_entries_and_bytes(self, network):
        network.charge_entries(3, total_bytes=600)
        assert network.stats.entry_pdus == 3
        assert network.stats.bytes_sent == 600

    def test_referrals(self, network):
        network.charge_referrals(2)
        assert network.stats.referral_pdus == 2

    def test_sync_pdus(self, network):
        network.charge_sync_entry(6000)
        network.charge_sync_dn(40)
        assert network.stats.sync_entry_pdus == 1
        assert network.stats.sync_dn_pdus == 1
        assert network.stats.bytes_sent == 6040

    def test_reset(self, network):
        network.charge_round_trip()
        network.stats.reset()
        assert network.stats.round_trips == 0

    def test_snapshot_is_independent(self, network):
        network.charge_round_trip()
        snap = network.stats.snapshot()
        network.charge_round_trip()
        assert snap.round_trips == 1
        assert network.stats.round_trips == 2

    def test_subtraction(self):
        a = TrafficStats(round_trips=5, entry_pdus=10, bytes_sent=100)
        b = TrafficStats(round_trips=2, entry_pdus=4, bytes_sent=40)
        delta = a - b
        assert delta.round_trips == 3
        assert delta.entry_pdus == 6
        assert delta.bytes_sent == 60

    def test_latency_accounting(self):
        net = SimulatedNetwork(round_trip_latency_ms=25.0)
        net.charge_round_trip()
        net.charge_round_trip()
        assert net.elapsed_ms == 50.0

    def test_connection_counters(self, network):
        network.connection_opened()
        network.connection_opened()
        network.connection_closed()
        assert network.open_connections == 1
        assert network.total_connections == 2
        network.connection_closed()
        network.connection_closed()  # floor at zero
        assert network.open_connections == 0
