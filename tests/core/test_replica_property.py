"""Property: replica hits return exactly the master's answer.

For any stored generalized filter and any user query the replica deems
a hit, the returned entry set must equal what the master would return —
the end-to-end consequence of containment soundness plus ReSync
consistency (after a sync).
"""

from hypothesis import given, settings, strategies as st

from repro.core import FilterReplica
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer
from repro.sync import ResyncProvider

BLOCKS = ["0001", "0002", "0003"]
CCS = ["IN", "US"]


def build_master(serials) -> DirectoryServer:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i, serial in enumerate(serials):
        master.add(
            Entry(
                f"cn=p{i},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"p{i}",
                    "sn": "T",
                    "serialNumber": serial,
                },
            )
        )
    return master


_serials = st.lists(
    st.builds(
        lambda b, s, c: f"{b}{s:02d}{c}",
        st.sampled_from(BLOCKS),
        st.integers(min_value=0, max_value=99),
        st.sampled_from(CCS),
    ),
    min_size=1,
    max_size=20,
    unique=True,
)

_stored_choice = st.tuples(st.sampled_from(BLOCKS), st.sampled_from(CCS))


@settings(max_examples=120, deadline=None)
@given(_serials, _stored_choice, st.integers(min_value=0, max_value=19))
def test_hits_equal_master_answers(serials, stored_choice, probe_index):
    master = build_master(serials)
    provider = ResyncProvider(master)
    replica = FilterReplica("r")
    block, cc = stored_choice
    stored = SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})")
    replica.add_filter(stored, provider)

    probe_serial = serials[probe_index % len(serials)]
    query = SearchRequest("", Scope.SUB, f"(serialNumber={probe_serial})")
    answer = replica.answer(query)

    truth = master.search(query).entries
    if answer.is_hit:
        assert {str(e.dn) for e in answer.entries} == {str(e.dn) for e in truth}
    else:
        # A miss is only legitimate when the query is NOT contained in
        # the stored filter (containment may be incomplete, but for
        # these simple shapes it is exact: equality within a prefix/
        # suffix substring).
        contained = probe_serial.startswith(block) and probe_serial.endswith(cc)
        assert not contained, "query contained in stored filter must hit"
