"""E10 — §7.2(c): location queries.

Paper: "The access rate of location entries was seen to be high
compared to the relatively small number of location entries. Thus the
entire location tree can be replicated ensuring a hit ratio of 1 for
this type of query while using a very small fraction of the total
replica size."
"""

from __future__ import annotations


from repro.ldap import Scope, SearchRequest
from repro.workload import QueryType

from .common import BenchEnv, report, run_filter_point

LOCATION_TREE = SearchRequest("", Scope.SUB, "(objectClass=location)")


def test_location_tree_replication(benchmark, env: BenchEnv):
    eval_trace = env.day(2).of_type(QueryType.LOCATION)
    result, replica = run_filter_point(env, [LOCATION_TREE], eval_trace)

    directory_entries = len(env.directory.entries)
    size_fraction = result.replica_entries / directory_entries

    report(
        "location",
        "Whole location tree as one replicated filter",
        ["metric", "value"],
        [
            ("location queries", result.queries),
            ("hit ratio", result.hit_ratio),
            ("replica entries", result.replica_entries),
            ("directory entries", directory_entries),
            ("size fraction", size_fraction),
        ],
        params={"query_type": "location", "filter": str(LOCATION_TREE.filter)},
        metrics={
            "hit_ratio": result.hit_ratio,
            "replica_entries": result.replica_entries,
            "size_fraction": size_fraction,
        },
        paper_expected={"hit_ratio": 1.0, "size_fraction_max": 0.03},
    )

    assert result.hit_ratio == 1.0, "location tree replica must answer everything"
    assert size_fraction < 0.03, "location tree must be a tiny fraction of the DIT"

    # Timed unit: answering a location query from the replicated tree.
    sample = eval_trace[0].request
    benchmark(lambda: replica.answer(sample))
