"""E11 — §5.2 ablation: ReSync vs changelog / tombstone / retain / reload.

Paper: "The ReSync protocol is lightweight and designed to reduce
synchronization traffic while providing convergence guarantees"; the
alternatives "either do not provide convergence or require unreasonably
large history information and/or synchronization traffic".

All mechanisms here are implemented convergently (the replica always
ends equal to the master — property-tested in tests/sync), so the
comparison isolates exactly the costs the paper names: update PDUs,
bytes and retained history.
"""

from __future__ import annotations

import pytest

from repro.ldap import Scope, SearchRequest
from repro.sync import (
    ChangelogProvider,
    FullReloadProvider,
    ResyncProvider,
    RetainResyncProvider,
    SyncedContent,
    TombstoneProvider,
)
from repro.workload.updates import UpdateGenerator

from .common import BenchEnv, report

REQUEST = SearchRequest("", Scope.SUB, "(departmentNumber=2000)")
POLLS = 8
UPDATES_PER_POLL = 150


def history_size_of(provider) -> int:
    if isinstance(provider, ChangelogProvider):
        return provider.changelog.history_size()
    if isinstance(provider, TombstoneProvider):
        return provider.tombstones.history_size()
    if isinstance(provider, ResyncProvider):
        # ReSync retains at most the pending actions plus ONE
        # unacknowledged batch per session — never the update stream.
        return sum(
            s.pending_count + s.retained_count
            for s in provider.sessions.active_sessions()
        )
    return 0


@pytest.fixture(scope="module")
def sync_rows(env: BenchEnv):
    rows = []
    for name, factory in (
        ("resync", ResyncProvider),
        ("retain", RetainResyncProvider),
        ("changelog", ChangelogProvider),
        ("tombstone", TombstoneProvider),
        ("full reload", FullReloadProvider),
    ):
        master = env.fresh_master()
        provider = factory(master)
        updates = UpdateGenerator(env.directory, master)
        content = SyncedContent(REQUEST)
        content.poll(provider)  # initial load (not counted)
        entry_pdus = dn_pdus = total_bytes = 0
        for _ in range(POLLS):
            updates.apply(UPDATES_PER_POLL)
            response = content.poll(provider)
            entry_pdus += response.entry_pdus
            dn_pdus += response.dn_pdus
            total_bytes += response.total_bytes
        converged = content.matches_master(master)
        rows.append(
            (
                name,
                entry_pdus,
                dn_pdus,
                total_bytes,
                history_size_of(provider),
                converged,
            )
        )
    return rows


def test_sync_mechanism_comparison(benchmark, env: BenchEnv, sync_rows):
    by_name = {row[0]: row for row in sync_rows}
    report(
        "sync_mechanisms",
        f"Synchronization mechanisms over {POLLS} polls × {UPDATES_PER_POLL} updates",
        ["mechanism", "entry PDUs", "DN PDUs", "bytes", "history", "converged"],
        sync_rows,
        params={"polls": POLLS, "updates_per_poll": UPDATES_PER_POLL},
        metrics={
            "resync_entry_pdus": by_name["resync"][1],
            "resync_bytes": by_name["resync"][3],
            "changelog_history": by_name["changelog"][4],
            "resync_history": by_name["resync"][4],
            "full_reload_entry_pdus": by_name["full reload"][1],
        },
        paper_expected={
            "shape": "resync minimizes traffic and retains no update stream"
        },
    )
    assert all(row[5] for row in sync_rows), "every mechanism must converge"

    resync = by_name["resync"]

    # ReSync sends no more entry PDUs than any alternative...
    for name in ("retain", "changelog", "tombstone", "full reload"):
        assert resync[1] <= by_name[name][1], f"resync vs {name} entry PDUs"
    # ...and no more total PDUs / bytes either.
    for name in ("retain", "changelog", "tombstone", "full reload"):
        assert resync[1] + resync[2] <= by_name[name][1] + by_name[name][2]
        assert resync[3] <= by_name[name][3]

    # The baselines' history grows with the whole update stream, while
    # ReSync retains only per-session pending actions (drained each
    # poll, so ~0 after the final poll).
    assert by_name["changelog"][4] >= POLLS * UPDATES_PER_POLL * 0.9
    assert resync[4] <= 30  # at most one retained batch

    # Full reload is the traffic upper bound.
    assert by_name["full reload"][1] >= max(r[1] for r in sync_rows)

    # Timed unit: one resync poll cycle under churn.
    master = env.fresh_master()
    provider = ResyncProvider(master)
    updates = UpdateGenerator(env.directory, master)
    content = SyncedContent(REQUEST)
    content.poll(provider)

    def cycle():
        updates.apply(10)
        content.poll(provider)

    benchmark(cycle)
