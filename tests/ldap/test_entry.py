"""Tests for the Entry model."""

import pytest

from repro.ldap import DN, Entry


def make_entry() -> Entry:
    return Entry(
        "cn=John Doe,ou=research,c=us,o=xyz",
        {
            "cn": ["John Doe", "John M Doe"],
            "objectClass": ["inetOrgPerson", "top"],
            "telephoneNumber": "2618-2618",
            "mail": "john@us.xyz.com",
            "serialNumber": "0456",
            "departmentNumber": 80,
        },
    )


class TestConstruction:
    def test_dn_parsing(self):
        entry = make_entry()
        assert entry.dn == DN.parse("cn=John Doe,ou=research,c=us,o=xyz")

    def test_scalar_and_int_values(self):
        entry = make_entry()
        assert entry.get("departmentNumber") == ["80"]
        assert entry.first("telephoneNumber") == "2618-2618"

    def test_multi_values_preserved(self):
        assert make_entry().get("cn") == ["John Doe", "John M Doe"]

    def test_object_classes(self):
        assert make_entry().object_classes == {"inetorgperson", "top"}


class TestMutation:
    def test_put_replaces(self):
        entry = make_entry()
        entry.put("mail", "new@x.com")
        assert entry.get("mail") == ["new@x.com"]

    def test_put_empty_removes(self):
        entry = make_entry()
        entry.put("mail", [])
        assert not entry.has_attribute("mail")

    def test_add_values_dedupes_normalized(self):
        entry = make_entry()
        entry.add_values("cn", ["JOHN DOE", "Johnny"])
        assert entry.get("cn") == ["John Doe", "John M Doe", "Johnny"]

    def test_add_values_new_attribute(self):
        entry = make_entry()
        entry.add_values("title", "Engineer")
        assert entry.get("title") == ["Engineer"]

    def test_remove_specific_values(self):
        entry = make_entry()
        entry.remove_values("cn", ["john m doe"])
        assert entry.get("cn") == ["John Doe"]

    def test_remove_last_value_drops_attribute(self):
        entry = make_entry()
        entry.remove_values("mail", ["john@us.xyz.com"])
        assert not entry.has_attribute("mail")

    def test_remove_whole_attribute(self):
        entry = make_entry()
        entry.remove_values("cn")
        assert not entry.has_attribute("cn")

    def test_remove_absent_is_noop(self):
        entry = make_entry()
        entry.remove_values("nonexistent")


class TestAccess:
    def test_case_insensitive_names(self):
        entry = make_entry()
        assert entry.get("MAIL") == ["john@us.xyz.com"]
        assert "Mail" in entry

    def test_first_absent_is_none(self):
        assert make_entry().first("nope") is None

    def test_normalized_values(self):
        assert make_entry().normalized_values("cn") == {"john doe", "john m doe"}

    def test_attribute_names_canonical(self):
        names = make_entry().attribute_names()
        assert "objectClass" in names

    def test_iteration(self):
        pairs = dict(iter(make_entry()))
        assert pairs["serialNumber"] == ["0456"]


class TestCopyProject:
    def test_copy_is_independent(self):
        entry = make_entry()
        clone = entry.copy()
        clone.put("mail", "other@x.com")
        assert entry.first("mail") == "john@us.xyz.com"

    def test_with_dn(self):
        entry = make_entry()
        moved = entry.with_dn("cn=John Doe,c=in,o=xyz")
        assert moved.dn != entry.dn
        assert moved.get("cn") == entry.get("cn")

    def test_project_subset(self):
        projected = make_entry().project(["mail", "cn"])
        assert projected.has_attribute("mail")
        assert not projected.has_attribute("serialNumber")

    def test_project_star_keeps_all(self):
        projected = make_entry().project(["*"])
        assert projected.has_attribute("serialNumber")

    def test_project_none_keeps_all(self):
        assert make_entry().project(None).has_attribute("serialNumber")


class TestEqualityAndSize:
    def test_semantic_equality_ignores_case(self):
        a = make_entry()
        b = make_entry()
        b.put("cn", ["JOHN DOE", "john m doe"])
        assert a == b

    def test_different_dn_not_equal(self):
        assert make_entry() != make_entry().with_dn("cn=x,o=xyz")

    def test_different_attrs_not_equal(self):
        other = make_entry()
        other.put("title", "Boss")
        assert make_entry() != other

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make_entry())

    def test_estimated_size_from_stamp(self):
        entry = make_entry()
        entry.put("entrySizeBytes", "6000")
        assert entry.estimated_size() == 6000

    def test_estimated_size_without_stamp(self):
        size = make_entry().estimated_size()
        assert size > len("cn=John Doe,ou=research,c=us,o=xyz")

    def test_bad_stamp_falls_back(self):
        entry = make_entry()
        entry.put("entrySizeBytes", "not-a-number")
        assert entry.estimated_size() > 0
