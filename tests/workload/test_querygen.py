"""Tests for the workload generator (Table 1 shape and locality)."""

import pytest

from repro.ldap import Scope
from repro.workload import (
    QueryType,
    Trace,
    WorkloadConfig,
    WorkloadGenerator,
)


@pytest.fixture(scope="module")
def trace(small_directory):
    generator = WorkloadGenerator(small_directory, WorkloadConfig(seed=11))
    return generator.generate(4000, days=2)


@pytest.fixture(scope="module")
def generator(small_directory):
    return WorkloadGenerator(small_directory, WorkloadConfig(seed=11))


class TestMix:
    def test_table1_distribution(self, trace):
        dist = trace.distribution()
        assert abs(dist[QueryType.SERIAL] - 0.58) < 0.04
        assert abs(dist[QueryType.MAIL] - 0.24) < 0.04
        assert abs(dist[QueryType.DEPARTMENT] - 0.16) < 0.04
        assert abs(dist[QueryType.LOCATION] - 0.02) < 0.02

    def test_days_split_evenly(self, trace):
        assert len(trace.day(1)) == len(trace.day(2)) == 2000

    def test_of_type_subtrace(self, trace):
        serial = trace.of_type(QueryType.SERIAL)
        assert all(r.qtype is QueryType.SERIAL for r in serial)

    def test_indexing_and_slicing(self, trace):
        assert isinstance(trace[0].request.base.is_root, bool)
        assert len(trace[:10]) == 10


class TestQueryShapes:
    def test_serial_queries_root_based_equality(self, trace):
        for record in trace.of_type(QueryType.SERIAL)[:20]:
            assert record.request.base.is_root  # §3.1.1
            assert record.request.scope is Scope.SUB
            assert str(record.request.filter).startswith("(serialNumber=")

    def test_scoped_variant_targets_country(self, trace):
        for record in trace.of_type(QueryType.SERIAL)[:20]:
            assert str(record.scoped_request.base).startswith("c=")

    def test_mail_queries_shape(self, trace):
        for record in trace.of_type(QueryType.MAIL)[:20]:
            assert "(mail=" in str(record.request.filter)

    def test_department_queries_conjunctive(self, trace):
        for record in trace.of_type(QueryType.DEPARTMENT)[:20]:
            text = str(record.request.filter)
            assert "departmentNumber=" in text and "divisionNumber=" in text
            assert str(record.scoped_request.base).startswith("ou=div")

    def test_location_queries_shape(self, trace):
        for record in trace.of_type(QueryType.LOCATION)[:10]:
            assert "(l=site" in str(record.request.filter)

    def test_queries_answerable_by_master(self, small_directory, trace):
        from repro.server import DirectoryServer

        master = DirectoryServer("m")
        master.add_naming_context(small_directory.suffix)
        master.load(small_directory.entries)
        for record in trace[:40]:
            result = master.search(record.request)
            assert len(result.entries) >= 1  # every query targets real data


class TestLocality:
    def test_geography_bias(self, small_directory, trace):
        """≈local_bias of person queries target the AP geography."""
        local = set()
        for cc in small_directory.geography_countries("AP"):
            local.add(cc.upper())
        serial = trace.of_type(QueryType.SERIAL)
        in_geo = sum(
            1
            for r in serial
            if str(r.request.filter)[-3:-1] in local
        )
        assert in_geo / len(serial) > 0.7

    def test_block_skew(self, trace):
        """Some serial blocks are much hotter than others."""
        counts = {}
        for r in trace.of_type(QueryType.SERIAL):
            block = str(r.request.filter).split("=")[1][:4]
            counts[block] = counts.get(block, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        top = sum(ranked[:3])
        assert top / sum(ranked) > 0.3

    def test_temporal_locality_present(self, trace):
        """Repeated queries exist within a day (re-reference model)."""
        day1 = [r.request for r in trace.day(1)]
        assert len(set(day1)) < len(day1)

    def test_department_skew(self, trace):
        counts = {}
        for r in trace.of_type(QueryType.DEPARTMENT):
            counts[str(r.request.filter)] = counts.get(str(r.request.filter), 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > 3 * (sum(ranked) / len(ranked))


class TestDeterminism:
    def test_same_seed_same_trace(self, small_directory):
        a = WorkloadGenerator(small_directory, WorkloadConfig(seed=3)).generate(200)
        b = WorkloadGenerator(small_directory, WorkloadConfig(seed=3)).generate(200)
        assert [str(x.request) for x in a] == [str(y.request) for y in b]

    def test_different_seed_differs(self, small_directory):
        a = WorkloadGenerator(small_directory, WorkloadConfig(seed=3)).generate(200)
        b = WorkloadGenerator(small_directory, WorkloadConfig(seed=4)).generate(200)
        assert [str(x.request) for x in a] != [str(y.request) for y in b]

    def test_invalid_days_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate(10, days=0)

    def test_unknown_geography_rejected(self, small_directory):
        with pytest.raises((ValueError, KeyError)):
            WorkloadGenerator(
                small_directory, WorkloadConfig(geography="nowhere")
            )


class TestTraceHelpers:
    def test_distribution_empty(self):
        assert Trace().distribution() == {}

    def test_unique_queries(self, trace):
        assert 0 < trace.unique_queries() <= len(trace)


class TestTracePersistence:
    def test_save_load_roundtrip(self, trace, tmp_path):
        import io

        buf = io.StringIO()
        trace.save(buf)
        buf.seek(0)
        loaded = __import__("repro.workload", fromlist=["Trace"]).Trace.load(buf)
        assert len(loaded) == len(trace)
        for original, restored in zip(list(trace)[:50], list(loaded)[:50]):
            assert restored.request == original.request
            assert restored.scoped_request == original.scoped_request
            assert restored.qtype == original.qtype
            assert restored.day == original.day

    def test_load_rejects_malformed(self):
        import io

        from repro.workload import Trace

        with pytest.raises(ValueError):
            Trace.load(io.StringIO("1\tserialNumber\n"))
        with pytest.raises(ValueError):
            Trace.load(io.StringIO("1\tnope\tSUB\t(a=1)\to=xyz\n"))

    def test_load_skips_comments_and_blanks(self):
        import io

        from repro.workload import Trace

        text = "# header\n\n1\tserialNumber\tSUB\t(serialNumber=1)\tc=in,o=xyz\n"
        loaded = Trace.load(io.StringIO(text))
        assert len(loaded) == 1
