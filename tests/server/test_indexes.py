"""Tests for the attribute indexes."""

from repro.ldap import DN
from repro.ldap.attributes import AttributeType, Syntax
from repro.server.indexes import (
    AttributeIndexSet,
    EqualityIndex,
    OrderingIndex,
    SubstringIndex,
)


def dn(i: int) -> DN:
    return DN.parse(f"cn=e{i},o=xyz")


class TestEqualityIndex:
    def test_insert_lookup(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.insert(dn(1), ["Doe"])
        idx.insert(dn(2), ["doe"])
        assert idx.lookup("DOE") == {dn(1), dn(2)}

    def test_remove(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.insert(dn(1), ["Doe"])
        idx.remove(dn(1), ["Doe"])
        assert idx.lookup("Doe") == set()

    def test_remove_missing_is_noop(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.remove(dn(1), ["ghost"])

    def test_len(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.insert(dn(1), ["a", "b"])
        assert len(idx) == 2


class TestSubstringIndex:
    def test_candidates_superset(self):
        idx = SubstringIndex(AttributeType("serialNumber"))
        idx.insert(dn(1), ["004217IN"])
        idx.insert(dn(2), ["994299US"])
        cands = idx.candidates(["0042"])
        assert dn(1) in cands
        assert dn(2) not in cands

    def test_short_component_falls_back_to_gram_scan(self):
        idx = SubstringIndex(AttributeType("sn"))
        idx.insert(dn(1), ["abc"])
        idx.insert(dn(2), ["xyz"])
        # "ab" is below the trigram size; the gram-vocabulary fallback
        # still prunes to the values whose grams contain it.
        assert idx.candidates(["ab"]) == {dn(1)}
        assert idx.candidates(["yz"]) == {dn(2)}
        assert idx.candidates(["q"]) == set()

    def test_short_value_matches_short_component(self):
        idx = SubstringIndex(AttributeType("sn"))
        idx.insert(dn(1), ["ab"])  # shorter than the gram size itself
        assert dn(1) in idx.candidates(["a"])
        assert dn(1) in idx.candidates(["ab"])

    def test_multiple_components_intersect(self):
        idx = SubstringIndex(AttributeType("x"))
        idx.insert(dn(1), ["abcdef"])
        idx.insert(dn(2), ["abcxyz"])
        assert idx.candidates(["abc", "def"]) == {dn(1)}

    def test_remove(self):
        idx = SubstringIndex(AttributeType("x"))
        idx.insert(dn(1), ["abcdef"])
        idx.remove(dn(1), ["abcdef"])
        assert idx.candidates(["abc"]) == set()

    def test_empty_result_short_circuits(self):
        idx = SubstringIndex(AttributeType("x"))
        idx.insert(dn(1), ["abc"])
        assert idx.candidates(["zzz"]) == set()


class TestOrderingIndex:
    def test_ge_le(self):
        idx = OrderingIndex(AttributeType("sn"))
        for i, name in enumerate(["alpha", "beta", "gamma"]):
            idx.insert(dn(i), [name])
        assert idx.greater_or_equal("beta") == {dn(1), dn(2)}
        assert idx.less_or_equal("beta") == {dn(0), dn(1)}

    def test_integer_syntax_orders_numerically(self):
        # Regression: the old index sorted stringified keys, so "9" > "10"
        # lexicographically and numeric ranges got wrong-shaped candidates.
        idx = OrderingIndex(AttributeType("age", syntax=Syntax.INTEGER))
        idx.insert(dn(1), ["9"])
        idx.insert(dn(2), ["10"])
        idx.insert(dn(3), ["100"])
        assert idx.greater_or_equal("10") == {dn(2), dn(3)}
        assert idx.less_or_equal("10") == {dn(1), dn(2)}
        assert idx.greater_or_equal("9") == {dn(1), dn(2), dn(3)}
        assert idx.less_or_equal("9") == {dn(1)}

    def test_integer_syntax_mixed_values_stay_sound(self):
        # A schema-violating non-numeric value under an integer syntax
        # lands in the string segment; range lookups must keep it as a
        # candidate because matching degrades to string comparison.
        idx = OrderingIndex(AttributeType("age", syntax=Syntax.INTEGER))
        idx.insert(dn(1), ["9"])
        idx.insert(dn(2), ["unknown"])
        assert dn(2) in idx.greater_or_equal("10")
        assert dn(2) in idx.less_or_equal("10")
        assert idx.estimate_greater_or_equal("10") >= 1

    def test_remove_specific_value(self):
        idx = OrderingIndex(AttributeType("sn"))
        idx.insert(dn(1), ["a"])
        idx.insert(dn(2), ["a"])
        idx.remove(dn(1), ["a"])
        assert idx.greater_or_equal("a") == {dn(2)}


class TestAttributeIndexSet:
    def test_consistent_insert_remove(self):
        ixs = AttributeIndexSet(AttributeType("sn"))
        ixs.insert(dn(1), ["Doe"])
        assert ixs.equality.lookup("doe") == {dn(1)}
        ixs.remove(dn(1), ["Doe"])
        assert ixs.equality.lookup("doe") == set()

    def test_unordered_attribute_has_no_ordering_index(self):
        ixs = AttributeIndexSet(AttributeType("objectClass", ordered=False))
        assert ixs.ordering is None
        ixs.insert(dn(1), ["person"])  # must not crash
