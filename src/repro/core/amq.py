"""Adaptive quotient-style AMQ for negative-lookup prescreens.

Posting-list structures (guard-atom maps, equality indexes, the QC
window) answer *misses* by a failed dict probe per atom — cheap at 500
stored filters, but the maps themselves grow with the population, and
every miss-dominated path repeats the probes.  An approximate-
membership (AMQ) summary in front turns a definite miss into one hash
and a few word compares against a flat table whose size tracks the
*population*, not the key universe.

:class:`AdaptiveQuotientFilter` follows the quotient-filter family
(Aleph Filter, Telescoping Filter — see PAPERS.md): a key's 64-bit
mixed hash is split into a **quotient** (the top ``qbits`` bits, the
bucket address) and a **fingerprint** (the top ``qbits + rbits`` bits,
stored verbatim).  Each bucket holds a handful of slots; a slot records
``(width, fingerprint)`` where *width* is how many leading hash bits
the fingerprint carries.

**Adaptive extension.**  When the load factor crosses the threshold the
bucket array doubles (``qbits + 1``).  Because every stored fingerprint
*is* a leading-bit prefix of its key's hash, the new bucket address is
just the fingerprint's own top ``qbits + 1`` bits — no keys need to be
retained or rehashed.  Fingerprints inserted *after* an extension carry
one more bit (the new ``qbits + rbits``), so the per-slot false-
positive probability stays ``2^-rbits`` regardless of how often the
filter grows: the bound is preserved under doubling, which is the
Aleph/Telescoping property this reproduces.

**No false negatives — ever.**  ``contains`` compares the stored
fingerprint against the same leading bits of the probe hash; an
inserted key always reproduces its own prefix.  Bucket overflow and
fingerprints too narrow for a future bucket address fall back to a
small exact spill table (width → fingerprint set), which also cannot
produce a false negative.  Deletions are not supported; owners that
remove keys keep the stale entry (a stale entry can only widen the
"maybe" set, never hide a present key) and rebuild when staleness
accumulates.

**Two-level probe.**  A definite negative must cost less than the dict
probe it replaces, and a Python-level slot scan cannot beat CPython's
C dict.  ``contains`` therefore first consults a plain ``set`` of
32-bit digests — the low bits of the key's *native* (seeded) hash, one
xor and one mask away from what CPython computes anyway — a C-level
membership test that resolves almost every absent key (collision
probability ``items * 2^-32``).  Only the rare survivor pays the full
avalanche mix and the quotient-table walk, whose verdict is final.
The digest set trades memory for speed (a boxed int per key); the
quotient table remains the compact, bounded-FPR summary the
Aleph/Telescoping analysis applies to, and the decision for any key
the digest set cannot rule out is the table's.  :meth:`screen` batches
the level-1 probe over a whole atom set, one Python call per query
instead of one per atom.

**Deterministic table hash.**  The quotient table's 64-bit hash is a
keyed BLAKE2b over a canonical byte encoding of the key (strings,
bytes, and tuples thereof — every key the repository stores; other
hashables fall back to mixing their native hash, which CPython does
not salt for numbers).  ``items``, ``extensions``, ``occupancy`` and
:meth:`fpr` are therefore identical across processes regardless of
``PYTHONHASHSEED`` — committed bench exports are reproducible.  Only
the level-1 digest set keeps the *salted* native hash: it exists
purely to be one xor and one mask away from CPython's cached string
hash, and a salt change can flip a verdict only when a 32-bit digest
collision meets a table false positive (~``items * 2^-32 * 2^-rbits``
per probe — negligible against the exported counters).

The structure is dependency-free and deliberately simple: correctness
is carried by the property tests in ``tests/core/test_amq.py``
(no-false-negative through forced extensions), not by tuning.
"""

from __future__ import annotations

from array import array
from hashlib import blake2b
from typing import Dict, Hashable, Iterable, List, Set

__all__ = ["AdaptiveQuotientFilter"]

_M64 = (1 << 64) - 1
_M32 = (1 << 32) - 1

#: Width of the fast-path digest set (level 1 of the two-level probe).
PREFIX_BITS = 32

#: Slots per bucket; 4 keeps overflow-to-spill rare below the load cap.
SLOTS_PER_BUCKET = 4

#: Fraction of slots occupied that triggers a doubling.
LOAD_FACTOR = 0.75

#: Default fingerprint bits beyond the bucket address (per-slot false-
#: positive probability ``2^-rbits``); also the doubling headroom — a
#: fingerprint stays bucket-addressable through ``rbits`` extensions.
DEFAULT_RBITS = 16

# Slot encoding: ``(width << _WIDTH_SHIFT) | fingerprint``; 0 = empty.
# width <= 63 and fingerprint < 2^58 hold for every reachable
# configuration (qbits + rbits stays far below 58).
_WIDTH_SHIFT = 58
_FP_MASK = (1 << _WIDTH_SHIFT) - 1


def _mix(x: int) -> int:
    """64-bit avalanche mix (splitmix64 finalizer)."""
    x &= _M64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _M64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _M64
    x ^= x >> 33
    return x


class AdaptiveQuotientFilter:
    """Approximate membership with adaptive growth and no false negatives.

    Args:
        expected_items: sizing hint; the initial table holds this many
            keys below the load threshold.  Growth is automatic, so a
            low hint only costs extensions, never correctness.
        rbits: fingerprint bits beyond the bucket address (false-
            positive probability ``2^-rbits`` per occupied slot probed).
        seed: hash seed, so independent filters over the same keys fail
            independently.
    """

    def __init__(
        self,
        expected_items: int = 64,
        rbits: int = DEFAULT_RBITS,
        seed: int = 0,
    ):
        if expected_items < 1:
            raise ValueError("expected_items must be >= 1")
        if not 4 <= rbits <= 32:
            raise ValueError("rbits must be in [4, 32]")
        qbits = 2
        while (1 << qbits) * SLOTS_PER_BUCKET * LOAD_FACTOR < expected_items:
            qbits += 1
        self._qbits = qbits
        self._rbits = rbits
        self._seed = _mix(seed ^ 0x9E3779B97F4A7C15)
        self._hash_key = self._seed.to_bytes(8, "big")  # BLAKE2b key
        self._table = array("Q", bytes(8 * (1 << qbits) * SLOTS_PER_BUCKET))
        self._spill: Dict[int, Set[int]] = {}
        self._digests: Set[int] = set()  # L1: seeded 32-bit native-hash digests
        # plain-int accounting; owners mirror into metric instruments
        self.items = 0
        self.lookups = 0
        self.negatives = 0
        self.extensions = 0
        self._fp_mass = 0.0  # sum of 2^-width over occupied slots

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _hash(self, key: Hashable) -> int:
        # Canonical, PYTHONHASHSEED-independent 64-bit hash: keyed
        # BLAKE2b over a domain-separated byte encoding of the key, so
        # the quotient table (and the items/fpr accounting derived from
        # it) is identical across processes.  Tuples hash the 8-byte
        # element hashes in order; anything without a canonical byte
        # form mixes its native hash (unsalted in CPython for the
        # non-str/bytes types that reach this branch), which is still
        # consistent under equality.  Only inserts and the rare
        # level-1 survivor pay this; probes resolve on the digest set,
        # one xor + one mask from the native hash.
        if isinstance(key, str):
            data = b"s" + key.encode("utf-8", "surrogatepass")
        elif isinstance(key, (bytes, bytearray)):
            data = b"y" + bytes(key)
        elif isinstance(key, tuple):
            data = b"t" + b"".join(
                self._hash(el).to_bytes(8, "big") for el in key
            )
        else:
            return _mix(hash(key) ^ self._seed)
        return int.from_bytes(
            blake2b(data, digest_size=8, key=self._hash_key).digest(), "big"
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, key: Hashable) -> None:
        """Insert *key*; duplicates are absorbed."""
        self._digests.add((hash(key) ^ self._seed) & _M32)
        self._insert_hash(self._hash(key))

    def _insert_hash(self, h: int) -> None:
        if self.items + 1 > (len(self._table) * LOAD_FACTOR):
            self._extend()
        width = self._qbits + self._rbits
        fp = h >> (64 - width)
        encoded = (width << _WIDTH_SHIFT) | fp
        base = (h >> (64 - self._qbits)) * SLOTS_PER_BUCKET
        table = self._table
        free = -1
        for pos in range(base, base + SLOTS_PER_BUCKET):
            slot = table[pos]
            if slot == encoded:
                return  # duplicate
            if slot == 0 and free < 0:
                free = pos
        if free >= 0:
            table[free] = encoded
        else:
            self._spill.setdefault(width, set()).add(fp)
        self.items += 1
        self._fp_mass += 2.0**-width

    def contains(self, key: Hashable) -> bool:
        """False = definitely absent; True = possibly present.

        Level 1 — one C-level set probe of the key's seeded 32-bit
        digest — resolves nearly every absent key; only a digest
        collision walks the quotient table, whose verdict is final.
        """
        self.lookups += 1
        if ((hash(key) ^ self._seed) & _M32) not in self._digests:
            self.negatives += 1
            return False
        if self._confirm(self._hash(key)):
            return True
        self.negatives += 1
        return False

    __contains__ = contains

    def _confirm(self, h: int) -> bool:
        """Level 2: the quotient table's verdict for mixed hash *h*."""
        base = (h >> (64 - self._qbits)) * SLOTS_PER_BUCKET
        table = self._table
        for pos in range(base, base + SLOTS_PER_BUCKET):
            slot = table[pos]
            if slot and (h >> (64 - (slot >> _WIDTH_SHIFT))) == (slot & _FP_MASK):
                return True
        for width, fps in self._spill.items():
            if (h >> (64 - width)) in fps:
                return True
        return False

    def screen(self, keys: Iterable[Hashable]) -> List[Hashable]:
        """The sub-list of *keys* possibly present, in iteration order.

        One Python call per batch: each key pays a single xor + mask +
        C-level set probe, and only digest collisions reach the table.
        Dropped keys are definite negatives — callers skip real work
        on them, exactly as for a ``False`` from :meth:`contains`.
        """
        seed = self._seed
        digests = self._digests
        survivors: List[Hashable] = []
        append = survivors.append
        probed = negatives = 0
        for key in keys:
            probed += 1
            if (hash(key) ^ seed) & _M32 in digests:
                if self._confirm(self._hash(key)):
                    append(key)
                else:
                    negatives += 1
            else:
                negatives += 1
        self.lookups += probed
        self.negatives += negatives
        return survivors

    def __len__(self) -> int:
        return self.items

    # ------------------------------------------------------------------
    # adaptive extension
    # ------------------------------------------------------------------
    def _extend(self) -> None:
        """Double the bucket array, re-addressing from stored prefixes.

        Every slot's fingerprint is the top ``width`` bits of its key's
        hash, so its new bucket is the fingerprint's own top
        ``qbits + 1`` bits.  A fingerprint narrower than the new bucket
        address (possible only after ``rbits`` doublings since its
        insertion) moves to the exact spill table instead — never lost.
        """
        old_table = self._table
        self._qbits += 1
        qbits = self._qbits
        self._table = array("Q", bytes(8 * (1 << qbits) * SLOTS_PER_BUCKET))
        table = self._table
        for slot in old_table:
            if not slot:
                continue
            width = slot >> _WIDTH_SHIFT
            fp = slot & _FP_MASK
            if width < qbits:
                self._spill.setdefault(width, set()).add(fp)
                continue
            base = (fp >> (width - qbits)) * SLOTS_PER_BUCKET
            for pos in range(base, base + SLOTS_PER_BUCKET):
                if table[pos] == 0:
                    table[pos] = slot
                    break
            else:
                self._spill.setdefault(width, set()).add(fp)
        self.extensions += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every key, keeping the current table size."""
        self._table = array("Q", bytes(8 * len(self._table)))
        self._spill.clear()
        self._digests.clear()
        self.items = 0
        self._fp_mass = 0.0

    @property
    def slot_count(self) -> int:
        return len(self._table)

    def occupancy(self) -> float:
        """Fraction of table slots occupied (spilled keys excluded)."""
        spilled = sum(len(fps) for fps in self._spill.values())
        return (self.items - spilled) / len(self._table)

    def spilled(self) -> int:
        return sum(len(fps) for fps in self._spill.values())

    def fpr(self) -> float:
        """Expected false-positive probability for a random absent key.

        A random key matches an occupied slot of width ``w`` with
        probability ``2^-w`` (bucket address and fingerprint bits are
        the same leading hash bits); summing over slots gives the union
        bound the per-slot ``2^-rbits`` design point rolls up to.
        """
        return min(1.0, self._fp_mass)

    def stats(self) -> Dict[str, float]:
        return {
            "items": self.items,
            "slots": len(self._table),
            "occupancy": self.occupancy(),
            "spilled": self.spilled(),
            "extensions": self.extensions,
            "lookups": self.lookups,
            "negatives": self.negatives,
            "fpr": self.fpr(),
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"AdaptiveQuotientFilter({self.items} items, "
            f"{len(self._table)} slots, {self.extensions} extensions)"
        )
