"""Client connections: bind / unbind / abandon (§2.2).

LDAP's third operation group is connect/disconnect: a client **binds**
to a server (possibly anonymously), issues operations over the open
connection, may **abandon** outstanding operations (the paper's Figure
3 ends a persistent search this way), and **unbinds**.

The simulation models connections explicitly because §5.2's scaling
argument is about them: persistent search "requires a TCP connection
per replicated filter which might not scale for large replicas".  The
:class:`~repro.server.network.SimulatedNetwork` counts open
connections so the persist-vs-poll ablation can measure exactly that.

Authentication is simple-bind against the entry's ``userPassword``
attribute; servers accept anonymous binds by default (directories are
read-mostly public infrastructure) and can require authentication for
updates.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, List, Optional, Sequence, Union

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.query import SearchRequest
from .directory import DirectoryServer
from .operations import LdapError, Modification, ResultCode, SearchResult, UpdateRecord

__all__ = [
    "BindState",
    "Connection",
    "ConnectionError_",
    "PendingOp",
    "RequestPipeline",
    "connect",
]


class BindState(enum.Enum):
    ANONYMOUS = "anonymous"
    BOUND = "bound"
    CLOSED = "closed"


class ConnectionError_(Exception):
    """Operation attempted on a closed connection."""


class PendingOp:
    """One in-flight pipelined operation (a future, resolved in FIFO
    submission order by :class:`RequestPipeline`)."""

    __slots__ = ("submitted_at", "ready_at", "done", "value", "error", "_pipeline")

    def __init__(self, pipeline: "RequestPipeline", submitted_at: float, ready_at: float):
        self._pipeline = pipeline
        self.submitted_at = submitted_at
        self.ready_at = ready_at
        self.done = False
        self.value = None
        self.error: Optional[BaseException] = None

    def result(self):
        """Block (drive the scheduler) until this op completes; returns
        the operation's result or re-raises its error."""
        scheduler = self._pipeline.scheduler
        while not self.done:
            if not scheduler.run_next():
                raise RuntimeError("pipeline op never completed (scheduler idle)")
        if self.error is not None:
            raise self.error
        return self.value


class RequestPipeline:
    """Multiple in-flight operations on one connection, ordered responses.

    Real LDAP lets a client stream requests without waiting for each
    response; responses still come back in submission order per
    connection.  This models exactly that on the network's deterministic
    scheduler (docs/TRANSPORT.md §3): submitting op *i* costs no wait,
    and its response becomes ready at

    ``max(submit_time + round_trip_latency, ready(i-1) + service_ms)``

    — one latency for the whole pipehead plus per-op service time,
    instead of the synchronous path's ``n × round_trip_latency``.

    Responses complete strictly FIFO: each completion event pumps the
    head of the in-flight queue, so seeded tie-breaking of same-due
    events can never reorder responses within a connection.

    Instruments (on the network registry): ``net.pipeline.submitted``,
    ``net.pipeline.completed``, ``net.pipeline.depth`` (current),
    ``net.pipeline.depth_max`` and the virtual-clock
    ``net.pipeline.latency_ms`` histogram.
    """

    def __init__(self, connection: "Connection", service_ms: float = 0.0):
        if connection.network is None:
            raise ValueError("pipelining needs a network-attached connection")
        self.connection = connection
        self.network = connection.network
        self.scheduler = self.network.scheduler
        self.service_ms = service_ms
        self._inflight: deque = deque()
        self._last_ready = self.scheduler.now
        registry = self.network.registry
        self._submitted = registry.counter("net.pipeline.submitted")
        self._completed = registry.counter("net.pipeline.completed")
        self._depth = registry.gauge("net.pipeline.depth")
        self._depth_max = registry.gauge("net.pipeline.depth_max")
        self._latency = registry.histogram("net.pipeline.latency_ms")

    @property
    def depth(self) -> int:
        return len(self._inflight)

    def submit(self, fn: Callable, *args, **kwargs) -> PendingOp:
        """Queue *fn(*args, **kwargs)* as the next request on the wire;
        returns a :class:`PendingOp` resolving to its result."""
        now = self.scheduler.now
        rtt = self.network.round_trip_latency_ms
        ready_at = max(now + rtt, self._last_ready + self.service_ms)
        self._last_ready = ready_at
        op = PendingOp(self, now, ready_at)
        self._inflight.append((op, fn, args, kwargs))
        self._submitted.inc()
        self._depth.set(len(self._inflight))
        if len(self._inflight) > self._depth_max.value:
            self._depth_max.set(len(self._inflight))
        self.scheduler.call_later(max(0.0, ready_at - now), self._pump)
        return op

    def _pump(self) -> None:
        # FIFO: each completion event finishes the *head* op, whichever
        # event fires — submission order survives tie-break shuffles.
        if not self._inflight:
            return
        op, fn, args, kwargs = self._inflight.popleft()
        self._depth.set(len(self._inflight))
        try:
            op.value = fn(*args, **kwargs)
        except Exception as exc:  # delivered through PendingOp.result()
            op.error = exc
        op.done = True
        self._completed.inc()
        self._latency.observe(self.scheduler.now - op.submitted_at)

    def drain(self) -> None:
        """Complete every in-flight op on this pipeline."""
        while self._inflight:
            if not self.scheduler.run_next():
                raise RuntimeError("pipeline never drained (scheduler idle)")


class Connection:
    """One client connection to one directory server.

    Created via :func:`connect` (which registers it with the network's
    connection accounting) or directly for tests.
    """

    def __init__(self, server: DirectoryServer, network=None):
        self.server = server
        self.network = network
        self.state = BindState.ANONYMOUS
        self.bound_dn: Optional[DN] = None
        self._persist_handles: List[object] = []
        if network is not None:
            network.connection_opened(self)

    # ------------------------------------------------------------------
    # connect / disconnect operations
    # ------------------------------------------------------------------
    def bind(self, dn: Union[DN, str, None] = None, password: Optional[str] = None) -> None:
        """Simple bind.  ``dn=None`` (re)binds anonymously.

        Raises :class:`~repro.server.operations.LdapError` with
        ``INVALID_CREDENTIALS``-like semantics (we reuse
        ``UNWILLING_TO_PERFORM``'s neighbour ``OPERATIONS_ERROR`` is
        wrong; RFC 2251's code 49 is modelled as a dedicated check) on
        a wrong password or unknown DN.
        """
        self._check_open()
        if dn is None:
            self.state = BindState.ANONYMOUS
            self.bound_dn = None
            return
        target = dn if isinstance(dn, DN) else DN.parse(dn)
        entry = self.server.store.get(target)
        if entry is None:
            raise LdapError(ResultCode.NO_SUCH_OBJECT, f"bind DN {target}")
        stored = entry.get("userPassword")
        if stored and password not in stored:
            raise LdapError(ResultCode.UNWILLING_TO_PERFORM, "invalid credentials")
        if not stored and password:
            raise LdapError(ResultCode.UNWILLING_TO_PERFORM, "entry has no password")
        self.state = BindState.BOUND
        self.bound_dn = target

    def unbind(self) -> None:
        """Close the connection; outstanding persistent searches end."""
        if self.state is BindState.CLOSED:
            return
        for handle in self._persist_handles:
            abandon = getattr(handle, "abandon", None)
            if abandon is not None:
                abandon()
        self._persist_handles.clear()
        self.state = BindState.CLOSED
        self.bound_dn = None
        if self.network is not None:
            self.network.connection_closed(self)

    def drop(self) -> None:
        """The server side died (crash window): the connection closes
        under the client, without an unbind exchange.

        Outstanding persistent searches are abandoned locally — their
        server-side sessions died with the server — and the network's
        open-connection accounting is decremented exactly once, so a
        crash never leaks ``net.connections.open``.  Idempotent, like
        :meth:`unbind`.
        """
        self.unbind()

    def abandon_all(self) -> None:
        """Abandon outstanding (persistent) operations, keep the
        connection open."""
        self._check_open()
        for handle in self._persist_handles:
            abandon = getattr(handle, "abandon", None)
            if abandon is not None:
                abandon()
        self._persist_handles.clear()

    def track_persist(self, handle: object) -> None:
        """Register a persistent-search handle with this connection."""
        self._check_open()
        self._persist_handles.append(handle)

    @property
    def outstanding_persists(self) -> int:
        return len(self._persist_handles)

    def pipeline(self, service_ms: float = 0.0) -> RequestPipeline:
        """A pipelined view of this connection (docs/TRANSPORT.md §3):
        submit several operations without waiting, collect ordered
        responses via :meth:`PendingOp.result`."""
        self._check_open()
        return RequestPipeline(self, service_ms=service_ms)

    # ------------------------------------------------------------------
    # operations over the connection
    # ------------------------------------------------------------------
    def search(self, request: SearchRequest, controls: Sequence[object] = ()) -> SearchResult:
        self._check_open()
        if self.network is not None:
            self.network.charge_round_trip()
        result = self.server.search(request, controls=controls)
        if self.network is not None:
            self.network.charge_entries(
                len(result.entries),
                sum(e.estimated_size() for e in result.entries),
            )
            self.network.charge_referrals(len(result.referrals))
        return result

    def add(self, entry: Entry) -> UpdateRecord:
        self._check_open()
        self._check_authorized()
        if self.network is not None:
            self.network.charge_round_trip()
        return self.server.add(entry)

    def modify(self, dn: Union[DN, str], modifications: Sequence[Modification]) -> UpdateRecord:
        self._check_open()
        self._check_authorized()
        if self.network is not None:
            self.network.charge_round_trip()
        return self.server.modify(dn, modifications)

    def delete(self, dn: Union[DN, str]) -> UpdateRecord:
        self._check_open()
        self._check_authorized()
        if self.network is not None:
            self.network.charge_round_trip()
        return self.server.delete(dn)

    def modify_dn(
        self,
        dn: Union[DN, str],
        new_rdn: Optional[str] = None,
        new_superior: Optional[Union[DN, str]] = None,
    ) -> List[UpdateRecord]:
        self._check_open()
        self._check_authorized()
        if self.network is not None:
            self.network.charge_round_trip()
        return self.server.modify_dn(dn, new_rdn=new_rdn, new_superior=new_superior)

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.state is BindState.CLOSED:
            raise ConnectionError_("operation on a closed connection")

    def _check_authorized(self) -> None:
        if self.server.updates_require_bind and self.state is not BindState.BOUND:
            raise LdapError(
                ResultCode.UNWILLING_TO_PERFORM, "updates require an authenticated bind"
            )

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unbind()


def connect(network, url: str) -> Connection:
    """Open a connection to the server at *url* over *network*."""
    server = network.resolve(url)
    return Connection(server, network=network)
