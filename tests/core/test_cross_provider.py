"""Cross-compatibility: replicas work with every sync provider.

The provider interface (``handle(request, control) → SyncResponse``) is
shared by ReSync and all baselines, so both replica models must stay
consistent regardless of which mechanism feeds them — what lets E11
compare mechanisms on identical replicas.
"""

import pytest

from repro.core import FilterReplica, SubtreeReplica
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification, SimulatedNetwork
from repro.sync import (
    ChangelogProvider,
    FullReloadProvider,
    ResyncProvider,
    RetainResyncProvider,
    TombstoneProvider,
)

PROVIDERS = [
    ResyncProvider,
    RetainResyncProvider,
    ChangelogProvider,
    TombstoneProvider,
    FullReloadProvider,
]


def build_master() -> DirectoryServer:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    master.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    for i in range(5):
        master.add(
            Entry(
                f"cn=P{i},c=us,o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"P{i}",
                    "sn": "T",
                    "serialNumber": f"00{i}A",
                },
            )
        )
    return master


def churn(master: DirectoryServer) -> None:
    master.modify("cn=P0,c=us,o=xyz", [Modification.replace("title", "x")])
    master.delete("cn=P1,c=us,o=xyz")
    master.add(
        Entry(
            "cn=P9,c=us,o=xyz",
            {"objectClass": ["person"], "cn": "P9", "sn": "T", "serialNumber": "009A"},
        )
    )
    master.modify_dn("cn=P2,c=us,o=xyz", new_rdn="cn=P2renamed")


@pytest.mark.parametrize("provider_cls", PROVIDERS, ids=lambda c: c.__name__)
class TestFilterReplicaWithEveryProvider:
    def test_sync_keeps_contents_consistent(self, provider_cls):
        master = build_master()
        provider = provider_cls(master)
        replica = FilterReplica("r", network=SimulatedNetwork())
        request = SearchRequest("o=xyz", Scope.SUB, "(sn=T)")
        replica.add_filter(request, provider)
        churn(master)
        replica.sync(provider)
        stored = replica.stored_filters()[0]
        assert stored.content.matches_master(master)

    def test_answers_reflect_synced_state(self, provider_cls):
        master = build_master()
        provider = provider_cls(master)
        replica = FilterReplica("r", network=SimulatedNetwork())
        request = SearchRequest("o=xyz", Scope.SUB, "(sn=T)")
        replica.add_filter(request, provider)
        churn(master)
        replica.sync(provider)
        answer = replica.answer(request)
        truth = master.search(request).entries
        assert {str(e.dn) for e in answer.entries} == {str(e.dn) for e in truth}


@pytest.mark.parametrize("provider_cls", PROVIDERS, ids=lambda c: c.__name__)
class TestSubtreeReplicaWithEveryProvider:
    def test_context_stays_consistent(self, provider_cls):
        master = build_master()
        provider = provider_cls(master)
        replica = SubtreeReplica("r", network=SimulatedNetwork())
        replica.add_context("c=us,o=xyz")
        replica.sync(provider)
        churn(master)
        replica.sync(provider)
        answer = replica.answer(SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=T)"))
        truth = master.search(SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=T)")).entries
        assert {str(e.dn) for e in answer.entries} == {str(e.dn) for e in truth}
