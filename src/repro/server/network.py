"""Simulated network joining clients, servers and replicas.

The paper's evaluation metrics are protocol-level — round trips between
client and servers (Figure 2), update PDUs and entries transferred
(Figures 6/7) — so the "network" here is an in-process message bus that
*counts* rather than transports:

* one ``round_trip`` per request/response exchange with a server,
* per-message PDU and byte accounting (entry PDUs, referral PDUs,
  sync-update PDUs),
* optional fixed per-round-trip latency so examples can report
  wall-clock-style comparisons between referral chasing and local
  answering.

Counters live on :class:`TrafficStats`, which both the client and the
ReSync sessions share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .directory import DirectoryServer

__all__ = ["TrafficStats", "SimulatedNetwork"]


@dataclass
class TrafficStats:
    """Protocol-level traffic counters.

    ``entry_pdus``/``referral_pdus`` count search result messages;
    ``sync_entry_pdus``/``sync_dn_pdus`` count ReSync update messages
    carrying full entries vs DN-only actions (delete/retain);
    ``bytes_sent`` approximates wire volume using entry sizes.
    """

    round_trips: int = 0
    requests: int = 0
    entry_pdus: int = 0
    referral_pdus: int = 0
    sync_entry_pdus: int = 0
    sync_dn_pdus: int = 0
    bytes_sent: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.round_trips = 0
        self.requests = 0
        self.entry_pdus = 0
        self.referral_pdus = 0
        self.sync_entry_pdus = 0
        self.sync_dn_pdus = 0
        self.bytes_sent = 0

    def snapshot(self) -> "TrafficStats":
        """An independent copy of the current counter values."""
        return TrafficStats(
            round_trips=self.round_trips,
            requests=self.requests,
            entry_pdus=self.entry_pdus,
            referral_pdus=self.referral_pdus,
            sync_entry_pdus=self.sync_entry_pdus,
            sync_dn_pdus=self.sync_dn_pdus,
            bytes_sent=self.bytes_sent,
        )

    def __sub__(self, other: "TrafficStats") -> "TrafficStats":
        return TrafficStats(
            round_trips=self.round_trips - other.round_trips,
            requests=self.requests - other.requests,
            entry_pdus=self.entry_pdus - other.entry_pdus,
            referral_pdus=self.referral_pdus - other.referral_pdus,
            sync_entry_pdus=self.sync_entry_pdus - other.sync_entry_pdus,
            sync_dn_pdus=self.sync_dn_pdus - other.sync_dn_pdus,
            bytes_sent=self.bytes_sent - other.bytes_sent,
        )


class SimulatedNetwork:
    """URL-addressed registry of servers plus shared traffic counters.

    Args:
        round_trip_latency_ms: simulated latency charged per round trip;
            purely additive bookkeeping (``elapsed_ms``), no sleeping.
    """

    def __init__(self, round_trip_latency_ms: float = 0.0):
        self._servers: Dict[str, DirectoryServer] = {}
        self.stats = TrafficStats()
        self.round_trip_latency_ms = round_trip_latency_ms
        self.elapsed_ms = 0.0
        self.open_connections = 0
        self.total_connections = 0

    def register(self, server: DirectoryServer) -> None:
        """Make *server* reachable at its URL."""
        self._servers[server.url] = server

    def resolve(self, url: str) -> DirectoryServer:
        """The server at *url*; raises :class:`KeyError` if unknown."""
        key = url.split("/", 3)[:3]
        normalized = "/".join(key)
        if normalized not in self._servers:
            raise KeyError(f"no server registered at {url!r}")
        return self._servers[normalized]

    def charge_round_trip(self) -> None:
        """Account one request/response exchange."""
        self.stats.round_trips += 1
        self.stats.requests += 1
        self.elapsed_ms += self.round_trip_latency_ms

    def charge_entries(self, count: int, total_bytes: int = 0) -> None:
        """Account *count* search entry PDUs."""
        self.stats.entry_pdus += count
        self.stats.bytes_sent += total_bytes

    def charge_referrals(self, count: int) -> None:
        """Account *count* referral/continuation PDUs."""
        self.stats.referral_pdus += count

    def charge_sync_entry(self, entry_bytes: int) -> None:
        """Account one full-entry sync PDU (add/modify action)."""
        self.stats.sync_entry_pdus += 1
        self.stats.bytes_sent += entry_bytes

    def charge_sync_dn(self, dn_bytes: int = 64) -> None:
        """Account one DN-only sync PDU (delete/retain action)."""
        self.stats.sync_dn_pdus += 1
        self.stats.bytes_sent += dn_bytes

    def connection_opened(self) -> None:
        """Account one opened client connection (§5.2's scaling metric)."""
        self.open_connections += 1
        self.total_connections += 1

    def connection_closed(self) -> None:
        self.open_connections = max(0, self.open_connections - 1)

    @property
    def servers(self) -> Dict[str, DirectoryServer]:
        """Registered servers by URL (read-only view by convention)."""
        return dict(self._servers)
