"""Session-scoped benchmark environment (built once for every bench)."""

from __future__ import annotations

import pytest

from .common import BenchEnv, build_env


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    """Directory + two-day Table 1 trace shared by all benches."""
    return build_env()
