"""Tests for dynamic filter selection (§6.2)."""

import pytest

from repro.core import (
    FilterReplica,
    FilterSelector,
    Generalizer,
    PrefixSuffixGeneralization,
)
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider


def person(i: int, block: str) -> Entry:
    return Entry(
        f"cn=P{block}{i},c=in,o=xyz",
        {
            "objectClass": ["person"],
            "cn": f"P{block}{i}",
            "sn": "T",
            "serialNumber": f"{block}{i:02d}IN",
        },
    )


@pytest.fixture()
def master() -> DirectoryServer:
    m = DirectoryServer("master")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    m.add(Entry("c=in,o=xyz", {"objectClass": ["country"], "c": "in"}))
    for block in ("0001", "0002", "0003"):
        for i in range(5):
            m.add(person(i, block))
    return m


def serial_query(block: str, i: int) -> SearchRequest:
    return SearchRequest("", Scope.SUB, f"(serialNumber={block}{i:02d}IN)")


def make_selector(master, budget=10, interval=10, provider=None, replica=None):
    replica = replica or FilterReplica("branch", network=SimulatedNetwork())
    gen = Generalizer([PrefixSuffixGeneralization("serialNumber", 4, 2)])
    estimator = lambda request: len(master.search(request).entries)
    selector = FilterSelector(
        replica,
        gen,
        estimator,
        budget_entries=budget,
        revolution_interval=interval,
        provider=provider,
    )
    return replica, selector


class TestObservation:
    def test_candidates_accumulate_hits(self, master):
        _replica, selector = make_selector(master)
        for i in range(3):
            selector.observe(serial_query("0001", i))
        assert selector.candidate_count == 1  # one generalized block filter

    def test_stored_filters_not_candidates(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, provider=provider)
        stored = SearchRequest("", Scope.SUB, "(serialNumber=0001*IN)")
        replica.add_filter(stored, provider)
        selector.observe(serial_query("0001", 0))
        assert selector.candidate_count == 0

    def test_revolution_triggers_at_interval(self, master):
        provider = ResyncProvider(master)
        _replica, selector = make_selector(master, interval=5, provider=provider)
        for i in range(5):
            selector.observe(serial_query("0001", i % 5))
        assert selector.revolutions == 1

    def test_invalid_interval_rejected(self, master):
        with pytest.raises(ValueError):
            make_selector(master, interval=0)


class TestRevolution:
    def test_installs_best_ratio_candidates(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, budget=5, provider=provider)
        for _ in range(4):
            selector.observe(serial_query("0001", 0))
        selector.observe(serial_query("0002", 0))  # less popular block
        report = selector.revolution()
        assert len(report.installed) == 1
        assert "0001" in str(report.installed[0].filter)
        assert replica.entry_count() == 5

    def test_budget_respected(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, budget=7, provider=provider)
        for block in ("0001", "0002", "0003"):
            for _ in range(3):
                selector.observe(serial_query(block, 0))
        selector.revolution()
        assert replica.entry_count() <= 7
        assert len(replica.stored_filters()) == 1  # only one block of 5 fits

    def test_unused_stored_filters_evicted(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, budget=10, provider=provider)
        cold = SearchRequest("", Scope.SUB, "(serialNumber=0003*IN)")
        replica.add_filter(cold, provider)
        for _ in range(4):
            selector.observe(serial_query("0001", 0))
        report = selector.revolution()
        assert cold in report.removed
        assert not replica.holds(cold)

    def test_hot_stored_filter_kept(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, budget=10, provider=provider)
        hot = SearchRequest("", Scope.SUB, "(serialNumber=0001*IN)")
        replica.add_filter(hot, provider)
        replica.answer(serial_query("0001", 0))  # real hit on the stored filter
        report = selector.revolution()
        assert hot in report.kept

    def test_benefit_counters_reset(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, provider=provider)
        for _ in range(3):
            selector.observe(serial_query("0001", 0))
        selector.revolution()
        assert selector.candidate_count == 0
        for stored in replica.stored_filters():
            assert stored.hits == 0

    def test_revolution_traffic_tracked(self, master):
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("branch", network=net)
        replica, selector = make_selector(
            master, budget=10, provider=provider, replica=replica
        )
        for _ in range(3):
            selector.observe(serial_query("0001", 0))
        selector.revolution()
        assert selector.revolution_entry_pdus == 5  # one block fetched

    def test_min_benefit_floor(self, master):
        provider = ResyncProvider(master)
        replica, selector = make_selector(master, provider=provider)
        selector.min_benefit = 3
        selector.observe(serial_query("0001", 0))  # only one hit
        report = selector.revolution()
        assert report.installed == []

    def test_report_budget_used(self, master):
        provider = ResyncProvider(master)
        _replica, selector = make_selector(master, budget=10, provider=provider)
        for _ in range(3):
            selector.observe(serial_query("0001", 0))
        report = selector.revolution()
        assert report.budget_used == 5


class TestEndToEndAdaptation:
    def test_hit_ratio_improves_after_revolution(self, master):
        provider = ResyncProvider(master)
        net = SimulatedNetwork()
        replica = FilterReplica("branch", network=net)
        replica, selector = make_selector(
            master, budget=15, interval=10, provider=provider, replica=replica
        )
        # Phase 1: all queries hit block 0001; replica is empty → misses.
        for i in range(10):
            q = serial_query("0001", i % 5)
            assert not replica.answer(q).is_hit
            selector.observe(q)
        # Revolution happened at query 10: block 0001 installed.
        assert selector.revolutions == 1
        hits = 0
        for i in range(10):
            q = serial_query("0001", i % 5)
            if replica.answer(q).is_hit:
                hits += 1
            selector.observe(q)
        assert hits == 10
