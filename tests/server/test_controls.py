"""Tests for search controls (server-side sorting, RFC 2891 / §2.2)."""

import pytest

from repro.ldap import Entry, Scope, SearchRequest, SortControl
from repro.server import DirectoryServer


@pytest.fixture()
def server() -> DirectoryServer:
    s = DirectoryServer("host")
    s.add_naming_context("o=xyz")
    s.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for cn, sn, age in (("Carol", "Zeta", "30"), ("Alice", "Young", "40"), ("Bob", "young", "20")):
        s.add(
            Entry(
                f"cn={cn},o=xyz",
                {"objectClass": ["person"], "cn": cn, "sn": sn, "age": age},
            )
        )
    return s


class TestSortControl:
    def test_sorts_by_key(self, server):
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"),
            controls=[SortControl(keys=("cn",))],
        )
        assert [e.first("cn") for e in result.entries] == ["Alice", "Bob", "Carol"]

    def test_reverse(self, server):
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"),
            controls=[SortControl(keys=("cn",), reverse=True)],
        )
        assert [e.first("cn") for e in result.entries] == ["Carol", "Bob", "Alice"]

    def test_normalized_comparison(self, server):
        # "Young" and "young" compare equal; secondary key breaks the tie
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"),
            controls=[SortControl(keys=("sn", "cn"))],
        )
        assert [e.first("cn") for e in result.entries] == ["Alice", "Bob", "Carol"]

    def test_integer_syntax_key(self, server):
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"),
            controls=[SortControl(keys=("age",))],
        )
        ages = [e.first("age") for e in result.entries]
        assert ages == sorted(ages, key=int)

    def test_absent_values_sort_last(self, server):
        server.add(
            Entry("cn=Dave,o=xyz", {"objectClass": ["person"], "cn": "Dave", "sn": "A"})
        )
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"),
            controls=[SortControl(keys=("age",))],
        )
        assert result.entries[-1].first("cn") == "Dave"

    def test_no_controls_no_sorting_requirement(self, server):
        result = server.search(SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"))
        assert len(result.entries) == 3

    def test_sorting_on_root_search(self, server):
        result = server.search(
            SearchRequest("", Scope.SUB, "(objectClass=person)"),
            controls=[SortControl(keys=("cn",))],
        )
        assert [e.first("cn") for e in result.entries] == ["Alice", "Bob", "Carol"]
