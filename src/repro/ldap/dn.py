"""Distinguished Name (DN) machinery.

LDAP names entries with *distinguished names* drawn from a hierarchical
namespace (RFC 2253).  A DN is a sequence of *relative distinguished names*
(RDNs), most-specific first: ``cn=John Doe,ou=research,c=us,o=xyz``.  The root
of the Directory Information Tree (DIT) has the empty ("null") DN.

This module implements the subset of RFC 2253 the paper relies on:

* parsing / serialization with escaping of special characters,
* case-insensitive attribute types and values (directory strings use
  ``caseIgnoreMatch`` in practice; the paper's directory does too),
* the ancestry predicates used throughout the replication algorithms:
  :meth:`DN.is_suffix_of` (the paper's ``isSuffix``), :meth:`DN.is_parent_of`
  (the paper's ``isparent``) and :meth:`DN.relative_to`.

DNs are immutable and hashable so they can key dictionaries in the directory
backend and in replica metadata.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Sequence, Tuple

__all__ = ["RDN", "DN", "DNParseError", "ROOT_DN"]

# Characters that must be escaped inside an RDN attribute value (RFC 2253 §2.4).
_ESCAPED_CHARS = {",", "+", '"', "\\", "<", ">", ";", "=", "#"}


class DNParseError(ValueError):
    """Raised when a DN string cannot be parsed."""


def _escape_value(value: str) -> str:
    """Escape an RDN attribute value for string serialization."""
    out = []
    for i, ch in enumerate(value):
        if ch in _ESCAPED_CHARS:
            out.append("\\" + ch)
        elif ch == " " and (i == 0 or i == len(value) - 1):
            out.append("\\ ")
        else:
            out.append(ch)
    return "".join(out)


def _normalize(text: str) -> str:
    """Normalize an attribute type or value for comparison.

    Directory strings compare case-insensitively with insignificant
    surrounding whitespace; inner whitespace runs collapse to one space.
    """
    return " ".join(text.strip().lower().split())


@total_ordering
class RDN:
    """A relative distinguished name: one or more attribute/value pairs.

    Multi-valued RDNs (``cn=John+sn=Doe``) are supported since RFC 2253
    allows them, though the paper's directory only uses single-valued RDNs.
    Comparison is on the normalized (case-folded) form.
    """

    __slots__ = ("_avas", "_normalized")

    def __init__(self, avas: Iterable[Tuple[str, str]]):
        pairs = tuple((str(a), str(v)) for a, v in avas)
        if not pairs:
            raise DNParseError("an RDN needs at least one attribute/value pair")
        for attr, value in pairs:
            if not attr:
                raise DNParseError("empty attribute type in RDN")
            if value == "":
                raise DNParseError(f"empty value for attribute {attr!r} in RDN")
        self._avas = pairs
        # Multi-valued RDNs compare as sets, so sort the normalized pairs.
        self._normalized = tuple(
            sorted((_normalize(a), _normalize(v)) for a, v in pairs)
        )

    @classmethod
    def single(cls, attr: str, value: str) -> "RDN":
        """Build a single-valued RDN such as ``cn=John Doe``."""
        return cls([(attr, value)])

    @property
    def avas(self) -> Tuple[Tuple[str, str], ...]:
        """The attribute/value pairs, in their original order and case."""
        return self._avas

    @property
    def attr(self) -> str:
        """Attribute type of the first (usually only) pair."""
        return self._avas[0][0]

    @property
    def value(self) -> str:
        """Value of the first (usually only) pair."""
        return self._avas[0][1]

    def __str__(self) -> str:
        return "+".join(f"{a}={_escape_value(v)}" for a, v in self._avas)

    def __repr__(self) -> str:
        return f"RDN({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDN):
            return NotImplemented
        return self._normalized == other._normalized

    def __lt__(self, other: "RDN") -> bool:
        if not isinstance(other, RDN):
            return NotImplemented
        return self._normalized < other._normalized

    def __hash__(self) -> int:
        return hash(self._normalized)


class DN:
    """An immutable distinguished name: a tuple of RDNs, leaf first.

    ``DN.parse("cn=a,ou=b,o=xyz")`` has three RDNs; its parent is
    ``ou=b,o=xyz``.  The empty DN (``DN(())`` / :data:`ROOT_DN`) names the
    DIT root and is an ancestor of every DN.
    """

    __slots__ = ("_rdns", "_normalized", "_hash")

    def __init__(self, rdns: Iterable[RDN] = ()):
        self._rdns: Tuple[RDN, ...] = tuple(rdns)
        self._normalized = tuple(r._normalized for r in self._rdns)
        self._hash = hash(self._normalized)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "DN":
        """Parse an RFC 2253 string into a DN.

        The empty string parses to the root DN.  Raises
        :class:`DNParseError` on malformed input.
        """
        if text.strip() == "":
            return ROOT_DN
        rdns = []
        for rdn_text in _split_unescaped(text, ","):
            avas = []
            for ava_text in _split_unescaped(rdn_text, "+"):
                attr, sep, value = _partition_unescaped(ava_text, "=")
                if not sep:
                    raise DNParseError(f"missing '=' in RDN component {ava_text!r}")
                avas.append((attr.strip(), _unescape_value(_strip_unescaped(value))))
            rdns.append(RDN(avas))
        return cls(rdns)

    def child(self, rdn: RDN | str) -> "DN":
        """Return the DN of a child entry named by *rdn* under this DN."""
        if isinstance(rdn, str):
            attr, sep, value = _partition_unescaped(rdn, "=")
            if not sep:
                raise DNParseError(f"missing '=' in RDN {rdn!r}")
            rdn = RDN.single(attr.strip(), _unescape_value(value.strip()))
        return DN((rdn,) + self._rdns)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def rdns(self) -> Tuple[RDN, ...]:
        """RDNs, most specific (leaf) first."""
        return self._rdns

    @property
    def rdn(self) -> RDN:
        """The leaf RDN.  Raises :class:`ValueError` for the root DN."""
        if not self._rdns:
            raise ValueError("the root DN has no RDN")
        return self._rdns[0]

    @property
    def parent(self) -> "DN":
        """The parent DN.  Raises :class:`ValueError` for the root DN."""
        if not self._rdns:
            raise ValueError("the root DN has no parent")
        return DN(self._rdns[1:])

    @property
    def is_root(self) -> bool:
        """True for the null DN naming the DIT root."""
        return not self._rdns

    def depth(self) -> int:
        """Number of RDNs (0 for the root)."""
        return len(self._rdns)

    def ancestors(self, include_self: bool = False) -> Iterator["DN"]:
        """Yield ancestors from parent up to (and including) the root."""
        start = 0 if include_self else 1
        for i in range(start, len(self._rdns) + 1):
            yield DN(self._rdns[i:])

    # ------------------------------------------------------------------
    # the paper's predicates
    # ------------------------------------------------------------------
    def is_suffix_of(self, other: "DN") -> bool:
        """The paper's ``isSuffix(self, other)``.

        True when *self* is an ancestor of *other* — i.e. *other* lies in the
        subtree rooted at *self*.  Matches the paper's convention where
        ``isSuffix(a, b)`` is "a is an ancestor of b".  A DN is **not** a
        suffix of itself (callers test equality separately, as the paper's
        algorithms do).
        """
        gap = len(other._normalized) - len(self._normalized)
        if gap <= 0:
            return False
        return other._normalized[gap:] == self._normalized

    def is_ancestor_or_self(self, other: "DN") -> bool:
        """True when *other* equals *self* or lies in *self*'s subtree."""
        return self == other or self.is_suffix_of(other)

    def is_parent_of(self, other: "DN") -> bool:
        """The paper's ``isparent(self, other)``: *self* is *other*'s parent."""
        return (
            len(other._normalized) == len(self._normalized) + 1
            and other._normalized[1:] == self._normalized
        )

    def relative_to(self, ancestor: "DN") -> Tuple[RDN, ...]:
        """RDNs of *self* below *ancestor* (leaf first).

        Raises :class:`ValueError` when *ancestor* is not an ancestor-or-self.
        """
        if not ancestor.is_ancestor_or_self(self):
            raise ValueError(f"{ancestor} is not an ancestor of {self}")
        gap = len(self._rdns) - len(ancestor._rdns)
        return self._rdns[:gap]

    def rename(self, old_ancestor: "DN", new_ancestor: "DN") -> "DN":
        """Rebase this DN from *old_ancestor* onto *new_ancestor*.

        Used by modifyDN processing to compute the new DNs of moved
        subtree entries.
        """
        return DN(self.relative_to(old_ancestor) + new_ancestor._rdns)

    def reversed_key(self) -> Tuple[Tuple[Tuple[str, str], ...], ...]:
        """Normalized RDN tuples root-first — the subtree range-index key.

        Under this key every subtree is a contiguous range of the sorted
        DN space: the descendants of ``d`` are exactly the DNs whose key
        extends ``d.reversed_key()``.  :class:`repro.server.backend.EntryStore`
        keeps its DNs sorted by it so SUBTREE regions come from one
        ``bisect`` range scan.
        """
        return self._normalized[::-1]

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return ",".join(str(r) for r in self._rdns)

    def __repr__(self) -> str:
        return f"DN({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DN):
            return NotImplemented
        return self._normalized == other._normalized

    def __lt__(self, other: "DN") -> bool:
        if not isinstance(other, DN):
            return NotImplemented
        return self._normalized[::-1] < other._normalized[::-1]

    def __le__(self, other: "DN") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._rdns)

    def __iter__(self) -> Iterator[RDN]:
        return iter(self._rdns)


ROOT_DN = DN(())
"""The null DN naming the root of the DIT."""


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def _split_unescaped(text: str, sep: str) -> Sequence[str]:
    """Split *text* on unescaped occurrences of the single character *sep*."""
    parts = []
    current = []
    escaped = False
    for ch in text:
        if escaped:
            current.append("\\" + ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == sep:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if escaped:
        raise DNParseError(f"dangling escape at end of {text!r}")
    parts.append("".join(current))
    return parts


def _partition_unescaped(text: str, sep: str) -> Tuple[str, str, str]:
    """Like ``str.partition`` but ignoring escaped separators."""
    escaped = False
    for i, ch in enumerate(text):
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == sep:
            return text[:i], sep, text[i + 1 :]
    return text, "", ""


def _strip_unescaped(value: str) -> str:
    """Strip insignificant surrounding spaces, preserving escaped ones.

    A trailing space is significant when preceded by an odd number of
    backslashes (``cn=x\\ `` names the value ``"x "``).
    """
    stripped = value.lstrip(" ")
    while stripped.endswith(" "):
        backslashes = 0
        i = len(stripped) - 2
        while i >= 0 and stripped[i] == "\\":
            backslashes += 1
            i -= 1
        if backslashes % 2 == 1:
            break
        stripped = stripped[:-1]
    return stripped


def _unescape_value(value: str) -> str:
    """Remove RFC 2253 escapes from an attribute value."""
    out = []
    escaped = False
    for ch in value:
        if escaped:
            out.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        else:
            out.append(ch)
    if escaped:
        raise DNParseError(f"dangling escape in value {value!r}")
    return "".join(out)
