"""Fault-tolerant ReSync consumption: retries, backoff, degraded reads.

:class:`SyncedContent` applies responses; :class:`ResilientConsumer`
decides *when and how to keep asking* on a network that drops,
duplicates, delays and truncates messages and whose servers crash
(:mod:`repro.server.faults`).  The division of labour:

* transport faults (:class:`~repro.server.network.TransportError`) are
  transient — retry with capped exponential backoff and deterministic
  jitter, never touching local content;
* a consumer built with a :class:`~repro.sync.snapshot.SnapshotStore`
  **warm-starts**: on construction it restores the last verified
  point-in-time dump (content + cookie) through a staged
  :class:`~repro.sync.snapshot.SnapshotRecoverer`, so the first poll
  after a replica restart costs O(delta) instead of the O(content)
  cold rebuild — the recovery ladder's first rung (docs/RECOVERY.md);
  a corrupt or torn snapshot is detected, discarded and never applied;
* protocol errors (:class:`~repro.sync.protocol.SyncProtocolError` —
  expired, unknown or too-old cookies) mean the session is gone — the
  consumer climbs the **recovery ladder** (docs/RECOVERY.md): a cookie
  stamped ``:h`` (the session went through a history overflow, so the
  divergence is real but typically small) — or a just-restored
  snapshot cookie the provider refused (divergence bounded by the
  snapshot's age) — first tries sketch-based anti-entropy
  reconciliation (:mod:`repro.sync.reconcile`, O(delta) traffic); a
  plain cookie — the provider simply restarted or expired the session,
  with the replica still a faithful prefix — and any failed
  reconciliation fall back to the paper's §5 recovery path: a full
  reload with a null cookie (poll mode) or a fresh subscription
  (persist mode);
* duplicated deliveries are re-applied; every ReSync action is an
  idempotent state-setter, so over-delivery is harmless;
* when every attempt of a cycle fails, the consumer (and optionally the
  :class:`~repro.server.directory.DirectoryServer` serving this
  replica's clients) enters **degraded** mode: reads keep answering
  from the last synchronized content, stamped
  ``SearchResult.degraded=True`` — availability over freshness.  The
  first successful cycle exits degraded mode.

Persist mode additionally bounds divergence from undetectable
notification loss: the subscription is refreshed — torn down and
re-opened with a null cookie, replacing the whole content — every
``persist_refresh_interval`` cycles, and immediately when the consumer
detects its connection died with a crashed server incarnation
(``network.crash_epoch``).

All pacing is simulated: backoff accumulates into the network's
``net.latency.elapsed_ms`` clock, no real sleeping.  Retry traffic is
recorded under ``sync.resilient.*`` metrics (docs/OBSERVABILITY.md §2)
next to the network's ``net.fault.*`` counters, so benches can report
convergence cost against fault rates
(``benchmarks/bench_fault_convergence.py``).

**Health state machine** (opt-in via :class:`HealthPolicy`,
docs/FAULTS.md §4): the legacy consumer retries forever — every cycle
spends up to ``max_attempts`` transport attempts no matter how long the
provider has been gone.  A consumer built with a ``health`` policy
instead walks an explicit machine::

    healthy → degraded → quarantined → recovering → gave_up

* a **capped total retry budget** (attempts and virtual wall-clock)
  replaces unbounded backoff: once either cap is spent the consumer
  lands terminally in ``gave_up`` — zero further provider attempts,
  zero busy-looping;
* a **circuit breaker** trips open after ``breaker_threshold``
  consecutive transport faults; while open the consumer sleeps out the
  cooldown on the virtual clock, then probes **half-open** with a
  single attempt (state ``recovering``) before resuming full service;
* after ``quarantine_after`` breaker trips the consumer is
  **quarantined**: its persist subscription is torn down, its poll
  session is parked at the provider's eq.-3 retain tier
  (:meth:`~repro.sync.resync.ResyncProvider.park_session`) so the
  provider stops accumulating history for it, and it re-probes only on
  ``quarantine_probe_ms`` intervals instead of hammering the provider.

Every transition lands on ``sync.health.*`` metrics (per-consumer
labels), rolled up fleet-wide by ``repro-ldap soak`` and the chaos
:class:`~repro.chaos.SoakRunner`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..ldap.controls import ReSyncControl, SyncMode
from ..ldap.query import SearchRequest
from ..obs.registry import MetricsRegistry
from ..server.directory import DirectoryServer
from ..server.network import (
    Delivery,
    ResponseTruncated,
    SimulatedNetwork,
    TransportError,
)
from .consumer import SyncedContent
from .protocol import (
    ReconcileFetch,
    ReconcileRequest,
    SyncProtocolError,
    SyncResponse,
)
from .reconcile import (
    ReconcileConfig,
    build_sketch,
    entry_fingerprint,
    entry_key,
)
from .snapshot import SnapshotRecoverer, SnapshotStore

__all__ = ["RetryPolicy", "HealthPolicy", "ResilientConsumer", "HEALTH_STATES"]

#: The consumer health states, in escalation order; the
#: ``sync.health.state`` gauge carries the index.
HEALTH_STATES = ("healthy", "degraded", "quarantined", "recovering", "gave_up")

_BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard one synchronization cycle tries before giving up.

    Attributes:
        max_attempts: transport failures tolerated per cycle.
        base_backoff_ms / backoff_factor / max_backoff_ms: capped
            exponential backoff; failure *n* waits
            ``min(base * factor**n, max)`` milliseconds.
        jitter: fraction of the backoff randomized away (deterministic,
            from the consumer's seed): the wait is uniform in
            ``[backoff * (1 - jitter), backoff]``.
        timeout_ms: per-operation timeout — deliveries arriving later
            count as lost (None: wait forever).
        degraded_after: consecutive *failed cycles* (all attempts
            exhausted) before the consumer enters degraded mode.
        persist_refresh_interval: persist-mode cycles between full
            subscription refreshes (bounds divergence from dropped
            notifications).
    """

    max_attempts: int = 8
    base_backoff_ms: float = 10.0
    backoff_factor: float = 2.0
    max_backoff_ms: float = 2000.0
    jitter: float = 0.25
    timeout_ms: Optional[float] = None
    degraded_after: int = 3
    persist_refresh_interval: int = 8

    def backoff_ms(self, failure: int, rng: random.Random) -> float:
        """Backoff before retrying after the (zero-based) *failure*-th
        transport failure, jittered deterministically by *rng*."""
        base = min(
            self.base_backoff_ms * self.backoff_factor**failure,
            self.max_backoff_ms,
        )
        if self.jitter <= 0:
            return base
        return base * (1.0 - self.jitter * rng.random())


@dataclass(frozen=True)
class HealthPolicy:
    """Caps and thresholds for the consumer health state machine.

    Attributes:
        max_total_attempts: lifetime transport-attempt budget; spent
            attempts never replenish, and exhaustion lands the consumer
            terminally in ``gave_up``.
        max_total_backoff_ms: lifetime retry-wait budget on the virtual
            clock (backoff sleeps only — breaker cooldowns and
            quarantine parking are the *graceful* part and do not burn
            it); exhaustion also lands in ``gave_up``.
        breaker_threshold: consecutive transport faults that trip the
            circuit breaker open.
        breaker_cooldown_ms: virtual-clock wait while the breaker is
            open, before the single half-open probe.
        quarantine_after: breaker trips before the consumer is
            quarantined (parked at the provider's eq.-3 retain tier).
        quarantine_probe_ms: virtual-clock interval between quarantine
            re-probes.
    """

    max_total_attempts: int = 64
    max_total_backoff_ms: float = 600_000.0
    breaker_threshold: int = 5
    breaker_cooldown_ms: float = 5_000.0
    quarantine_after: int = 2
    quarantine_probe_ms: float = 30_000.0

    def __post_init__(self):
        if self.max_total_attempts < 1:
            raise ValueError("max_total_attempts must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")


class ResilientConsumer:
    """A replica-side sync driver that survives an unreliable network.

    Args:
        request: the replicated search request (the unit of replication).
        provider: the master-side provider (any ``handle``-speaking
            provider; persist mode additionally needs ``persist``).
        network: network joining consumer and master; faults are
            injected here (:class:`repro.server.faults.FaultyNetwork`).
        policy: retry/backoff/timeout policy.
        seed: seeds the deterministic backoff jitter.
        replica_server: optional :class:`DirectoryServer` serving this
            replica's clients; flipped into degraded stale-read mode
            while the master is unreachable.
        mode: ``"poll"`` (cookie sessions) or ``"persist"`` (an open
            connection carrying change notifications).
        reconcile_config: sizing policy for the sketch-reconciliation
            recovery tier (docs/RECOVERY.md); None disables the tier
            (every dead cookie reloads, the pre-reconcile behavior).
        snapshot_store: optional :class:`SnapshotStore` — when given,
            the consumer warm-starts from it on construction (the
            ladder's first rung) and re-dumps its content every
            *snapshot_interval* successful cycles; None disables the
            tier (a restarted replica boots empty, the pre-snapshot
            behavior).
        snapshot_interval: successful cycles between snapshot saves.
        health: opt-in :class:`HealthPolicy` enabling the health state
            machine (budgeted retries, circuit breaker, quarantine);
            None keeps the legacy unbounded-retry behavior
            byte-identical.
        name: fleet identity for per-consumer ``sync.health.*`` metric
            labels and status rollups (default: ``consumer-<seed>``).
    """

    def __init__(
        self,
        request: SearchRequest,
        provider,
        network: Optional[SimulatedNetwork] = None,
        policy: Optional[RetryPolicy] = None,
        seed: int = 0,
        replica_server: Optional[DirectoryServer] = None,
        mode: str = "poll",
        reconcile_config: Optional[ReconcileConfig] = ReconcileConfig(),
        snapshot_store: Optional[SnapshotStore] = None,
        snapshot_interval: int = 1,
        health: Optional[HealthPolicy] = None,
        name: Optional[str] = None,
    ):
        if mode not in ("poll", "persist"):
            raise ValueError(f"mode must be 'poll' or 'persist', got {mode!r}")
        self.provider = provider
        self.network = network
        self.policy = policy if policy is not None else RetryPolicy()
        self.reconcile_config = reconcile_config
        self.replica_server = replica_server
        self.mode = mode
        self.name = name if name is not None else f"consumer-{seed}"
        self.content = SyncedContent(request, network=network)
        self._rng = random.Random(f"resilient:{seed}")
        # The reconcile sketch salt draws from its own stream: sharing
        # the jitter RNG would shift every backoff draw after the first
        # reconcile, making fault traces depend on whether the ladder
        # ran (the cross-stream coupling tests/server/test_faults.py
        # guards against at the network layer).
        self._salt_rng = random.Random(f"resilient-salt:{seed}")
        self._is_degraded = False
        self._consecutive_failed_cycles = 0
        # persist-mode subscription state
        self._handle = None
        self._subscribed_epoch = -1
        self._cycles_since_refresh = 0
        self._last_response: Optional[SyncResponse] = None

        registry = network.registry if network is not None else MetricsRegistry()
        self._retries = registry.counter("sync.resilient.retries")
        self._reloads = registry.counter("sync.resilient.reloads")
        self._refreshes = registry.counter("sync.resilient.refreshes")
        self._exhausted = registry.counter("sync.resilient.exhausted")
        self._cycles = registry.counter("sync.resilient.cycles")
        self._backoff_total = registry.gauge("sync.resilient.backoff_ms")
        self._degraded_gauge = registry.gauge("sync.resilient.degraded")
        self._rec_attempts = registry.counter("sync.reconcile.attempts")
        self._rec_rounds = registry.counter("sync.reconcile.rounds")
        self._rec_success = registry.counter("sync.reconcile.decode_success")
        self._rec_failures = registry.counter("sync.reconcile.decode_failure")
        self._rec_fallbacks = registry.counter("sync.reconcile.fallbacks")
        self._rec_sketch_bytes = registry.counter("sync.reconcile.sketch_bytes")
        self._rec_delta = registry.counter("sync.reconcile.delta_entries")
        self._rec_fetched = registry.counter("sync.reconcile.fetched_entries")
        self._rec_deleted = registry.counter("sync.reconcile.deleted_entries")

        # Health state machine (opt-in; None keeps the legacy unbounded
        # retry behavior byte-identical).
        self.health = health
        self._health_state = "healthy"
        self._breaker = "closed"
        self._consecutive_faults = 0
        self._breaker_trips = 0
        self._attempts_spent = 0
        self._backoff_budget_spent = 0.0
        self._breaker_open_until: Optional[float] = None
        self._quarantine_until: Optional[float] = None
        self._probe_origin: Optional[str] = None
        if health is not None:
            labels = {"consumer": self.name}
            self._h_state = registry.gauge("sync.health.state").labels(**labels)
            self._h_breaker = registry.gauge(
                "sync.health.breaker_state"
            ).labels(**labels)
            self._h_transitions = registry.counter("sync.health.transitions")
            self._h_trips = registry.counter("sync.health.breaker_trips")
            self._h_probes = registry.counter("sync.health.probes")
            self._h_quarantines = registry.counter("sync.health.quarantines")
            self._h_parked = registry.counter("sync.health.parked")
            self._h_gave_up = registry.counter("sync.health.gave_up")
            self._h_attempts = registry.counter(
                "sync.health.attempts_spent"
            ).labels(**labels)
            self._h_budget_ms = registry.gauge(
                "sync.health.backoff_budget_ms"
            ).labels(**labels)

        # Snapshot warm-start tier (docs/RECOVERY.md first rung): a
        # store means this consumer is a restart of a replica that may
        # have dumped content before — restore it now, so the first
        # cycle resumes at the snapshot's generation.
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.snapshot_interval = snapshot_interval
        self._recoverer: Optional[SnapshotRecoverer] = None
        self._snapshot_restored = False
        self._cycles_since_snapshot = 0
        if snapshot_store is not None:
            self._recoverer = SnapshotRecoverer(
                snapshot_store, self.content, registry=registry
            )
            self._snapshot_restored = self._recoverer.warm_start()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def request(self) -> SearchRequest:
        return self.content.request

    @property
    def server(self):
        """The master server behind :attr:`provider` (for the network's
        per-server crash bookkeeping), or None."""
        return getattr(self.provider, "server", None)

    @property
    def degraded(self) -> bool:
        """True while the master is considered unreachable and local
        reads are stale."""
        return self._is_degraded

    @property
    def health_state(self) -> str:
        """The consumer's current health state (one of
        :data:`HEALTH_STATES`).  Without a :class:`HealthPolicy` the
        machine collapses to the legacy two states."""
        if self.health is None:
            return "degraded" if self._is_degraded else "healthy"
        return self._health_state

    @property
    def breaker_state(self) -> str:
        """Circuit breaker state: ``closed`` / ``open`` / ``half_open``."""
        return self._breaker

    def health_snapshot(self) -> dict:
        """One fleet-status row: the machine's externally visible state
        (rolled up by ``repro-ldap soak`` and the chaos SoakRunner)."""
        return {
            "name": self.name,
            "mode": self.mode,
            "state": self.health_state,
            "breaker": self._breaker,
            "degraded": self._is_degraded,
            "breaker_trips": self._breaker_trips,
            "attempts_spent": self._attempts_spent,
            "backoff_budget_ms": round(self._backoff_budget_spent, 3),
            "consecutive_faults": self._consecutive_faults,
            "failed_cycles": self._consecutive_failed_cycles,
            "entries": len(self.content),
        }

    @property
    def snapshot_recoverer(self) -> Optional[SnapshotRecoverer]:
        """The warm-start driver (stage inspection), or None when the
        consumer was built without a snapshot store."""
        return self._recoverer

    @property
    def warm_started(self) -> bool:
        """True when construction restored a verified snapshot."""
        return self._recoverer is not None and self._recoverer.stage in (
            "resuming",
            "live",
        )

    def sync_once(self) -> Optional[SyncResponse]:
        """One resilient synchronization cycle.

        Polls (or, in persist mode, verifies/refreshes the
        subscription), retrying transport failures per the policy with
        backoff, and climbing the recovery ladder (docs/RECOVERY.md) on
        protocol errors: cookie resume → sketch reconciliation (``:h``
        cookies only) → paced full rebuild.  Returns the last applied
        response, or None when every attempt failed — the consumer is
        then counting toward (or in) degraded mode.  Local content
        survives any failure.

        With a :class:`HealthPolicy`, the health state machine gates
        the cycle first: ``gave_up`` is terminal (no provider contact,
        no clock advance), an open breaker or a quarantine window is
        slept out on the virtual clock before a single-attempt
        ``recovering`` probe, and every transport fault is charged
        against the lifetime retry budget.
        """
        if self.health is not None and not self._health_gate():
            return None
        self._cycles.inc()
        failures = 0
        attempt_cap = self._cycle_attempt_cap()
        while failures < attempt_cap:
            try:
                if self.mode == "poll":
                    response = self.content.poll(
                        self.provider, timeout_ms=self.policy.timeout_ms
                    )
                else:
                    response = self._persist_cycle()
            except SyncProtocolError:
                # The session is gone — but *why* matters.  A provider
                # restart with an intact journal never lands here (the
                # cookie resolves after recover()); a plain cookie that
                # died means the replica is still a faithful prefix of
                # the master, so a reload is the honest price.  Only a
                # ``:h`` cookie — the session overflowed its history and
                # the chain has since broken — names a replica whose
                # divergence is real but typically small: that (and only
                # that) case — plus a freshly warm-started snapshot
                # whose cookie aged out (divergence bounded by the
                # snapshot's age) — enters the sketch-reconciliation
                # tier before falling back to the paced full rebuild.
                if self.mode == "poll" and self.content.cookie is None:
                    raise  # a fresh session was refused — not recoverable
                if self.mode == "poll" and self._should_reconcile():
                    reconciled = self.reconcile()
                    if reconciled is not None:
                        self._cycle_succeeded()
                        return reconciled
                self._reloads.inc()
                self.content.cookie = None
                if self.mode == "persist":
                    self._teardown_subscription()
                continue
            except TransportError as exc:
                self._apply_safe_prefix(exc)
                # A busy server's retry-after hint (admission control)
                # is honored as a floor under the computed backoff.
                self._note_transport_fault(exc, failures)
                failures += 1
                if self.health is not None and self._retries_suspended():
                    break  # breaker tripped / quarantined / gave up
                continue
            self._cycle_succeeded()
            return response
        self._cycle_failed()
        return None

    def converge(
        self, master: DirectoryServer, max_cycles: int = 64
    ) -> Optional[int]:
        """Drive :meth:`sync_once` until the replica content matches
        *master*; returns the number of cycles taken (≥ 1), or None if
        *max_cycles* was not enough."""
        for cycle in range(1, max_cycles + 1):
            self.sync_once()
            if self.content.matches_master(master):
                return cycle
        return None

    def close(self) -> None:
        """Tear down any persist subscription (client-side abandon)."""
        self._teardown_subscription()

    # ------------------------------------------------------------------
    # sketch reconciliation (recovery tier 2, docs/RECOVERY.md)
    # ------------------------------------------------------------------
    def _should_reconcile(self) -> bool:
        """Whether this dead cookie qualifies for the reconcile tier.

        Only the history-overflow chain (``:h``-stamped cookies,
        docs/PROTOCOL.md §10.4) does: it names a replica that *has*
        diverged, by an amount the sketch can recover in O(delta).  A
        plain cookie (provider restarted and forgot us, admin expiry)
        leaves the replica a faithful prefix — reloading is correct and
        reconciling would only add a round of sketch traffic.  An empty
        replica has no delta to exploit, and a provider without a
        ``reconcile`` operation (the retain/baseline providers) cannot
        serve the tier.

        A snapshot-restored replica whose *first* cycle is refused is
        the other qualifying case: its divergence is bounded by the
        snapshot's age (typically small), so the sketch tier beats the
        full rebuild even though the refused cookie carries no ``:h``.
        The exemption lasts exactly until the first successful cycle —
        after that the replica is live and a later dead cookie means
        what it always meant.
        """
        return (
            self.reconcile_config is not None
            and (self._cookie_overflowed() or self._snapshot_restored)
            and len(self.content) > 0
            and callable(getattr(self.provider, "reconcile", None))
        )

    def _cookie_overflowed(self) -> bool:
        """True when the held cookie carries the ``:h`` flag."""
        cookie = self.content.cookie
        return cookie is not None and "h" in cookie.split(":")[2:]

    def reconcile(self) -> Optional[SyncResponse]:
        """One sketch-reconciliation ladder against the provider.

        Solicits an invertible sketch of the master's content, subtracts
        the local one, decodes the symmetric difference, and converts it
        into targeted per-entry fetches plus local deletes — O(delta)
        bytes instead of the O(content) rebuild.  On a decode failure
        (undersized or corrupted sketch — always *detected*, see
        :meth:`EntrySketch.decode <repro.sync.reconcile.EntrySketch>`)
        the cell count doubles with a fresh salt, up to the config cap.

        Returns the applied fetch response — the replica then holds the
        master's sketch-time content and a live session cookie — or
        None when the ladder failed and the caller should fall back to
        a paced full rebuild.  Transport faults are retried with the
        policy's backoff; protocol errors (the fetch session died under
        us) abort the ladder.  Local content is only touched by a
        successful, validated decode.
        """
        cfg = self.reconcile_config
        if cfg is None:
            return None
        self._rec_attempts.inc()
        cells: Optional[int] = None
        salt = self._salt_rng.getrandbits(32)
        prev_cookie: Optional[str] = None
        transport_failures = 0
        while True:
            rreq = ReconcileRequest(
                divergence_hint=cfg.initial_divergence,
                cells=cells,
                salt=salt,
                cookie=prev_cookie,
            )
            try:
                response = self._reconcile_exchange(rreq)
            except SyncProtocolError:
                self._rec_fallbacks.inc()
                return None
            except TransportError as exc:
                transport_failures += 1
                if transport_failures >= self.policy.max_attempts:
                    self._rec_fallbacks.inc()
                    return None
                self._note_transport_fault(exc, transport_failures - 1)
                continue
            self._rec_rounds.inc()
            self._rec_sketch_bytes.inc(response.pdu_bytes)
            prev_cookie = response.cookie
            sketch = response.sketch
            local = build_sketch(
                self.content.entries.values(),
                sketch.size,
                salt=sketch.salt,
                hash_count=sketch.hash_count,
            )
            decoded = sketch.subtract(local).decode()
            plan = self._plan_reconcile(decoded) if decoded is not None else None
            if plan is not None:
                applied = self._fetch_and_apply(plan, response.cookie)
                if applied is not None:
                    return applied
                self._rec_fallbacks.inc()
                return None
            # Undersized or corrupted sketch — a *detected* failure:
            # double the cells, re-salt, bounded by the config cap.
            self._rec_failures.inc()
            next_cells = sketch.size * 2
            salt += 1
            if next_cells > cfg.max_cells:
                self._rec_fallbacks.inc()
                self._end_reconcile_session(prev_cookie)
                return None
            cells = next_cells

    def _plan_reconcile(self, decoded):
        """Validate a decoded difference against local content.

        Every negative (replica-only) item must name an entry the
        replica actually holds, fingerprint and all; a positive item
        exactly matching a local digest is equally impossible (it would
        have cancelled in the subtraction).  Either contradiction means
        the peel produced garbage that slipped past the checksums —
        treated as a decode failure, never applied.  Returns
        ``(fetch_keys, delete_dns)`` or None.
        """
        master_only, replica_only = decoded
        local_by_key = {entry_key(dn): dn for dn in self.content.entries}
        master_keys = {key for key, _ in master_only}
        delete_dns = []
        for key, fp in replica_only:
            dn = local_by_key.get(key)
            if dn is None or entry_fingerprint(self.content.entries[dn]) != fp:
                return None
            if key not in master_keys:
                delete_dns.append(dn)
        for key, fp in master_only:
            dn = local_by_key.get(key)
            if dn is not None and entry_fingerprint(self.content.entries[dn]) == fp:
                return None
        return sorted(master_keys), delete_dns

    def _fetch_and_apply(self, plan, cookie: str) -> Optional[SyncResponse]:
        """Pull the master-only entries and fold the difference in.

        The fetch travels even when there is nothing to pull: its
        response carries the session cookie that makes the reconciled
        replica resumable.  Duplicated deliveries re-apply idempotently,
        like every ReSync action.
        """
        fetch_keys, delete_dns = plan
        fetch = ReconcileFetch(keys=tuple(fetch_keys), cookie=cookie)
        transport_failures = 0
        while True:
            try:
                deliveries = self._reconcile_fetch_exchange(fetch)
                break
            except SyncProtocolError:
                return None
            except TransportError as exc:
                transport_failures += 1
                if transport_failures >= self.policy.max_attempts:
                    return None
                self._note_transport_fault(exc, transport_failures - 1)
        self._rec_success.inc()
        self._rec_delta.inc(len(fetch_keys) + len(delete_dns))
        fetched = 0
        for delivery in deliveries:
            self.content.apply_reconcile(delivery.response, delete_dns)
            fetched += len(delivery.response.updates)
        self._rec_fetched.inc(fetched)
        self._rec_deleted.inc(len(delete_dns))
        return deliveries[-1].response

    def _reconcile_exchange(self, rreq: ReconcileRequest):
        if self.network is not None:
            return self.network.reconcile_exchange(self.provider, self.request, rreq)
        return self.provider.reconcile(self.request, rreq)

    def _reconcile_fetch_exchange(self, fetch: ReconcileFetch):
        if self.network is not None:
            return self.network.reconcile_fetch_exchange(
                self.provider, self.request, fetch
            )
        return [Delivery(self.provider.reconcile_fetch(self.request, fetch))]

    def _note_transport_fault(self, exc: TransportError, failure: int) -> None:
        """Count one transport fault and wait out its backoff (shared by
        the poll loop and the reconcile ladder).  With a health policy
        the fault is also charged against the lifetime budget and may
        trip the circuit breaker."""
        self._retries.inc()
        self._retries.labels(kind=exc.fault).inc()
        delay = self._backoff(failure, minimum=getattr(exc, "retry_after_ms", 0.0))
        if self.health is None:
            return
        self._attempts_spent += 1
        self._h_attempts.inc()
        self._backoff_budget_spent += delay
        self._h_budget_ms.set(self._backoff_budget_spent)
        self._consecutive_faults += 1
        if (
            self._attempts_spent >= self.health.max_total_attempts
            or self._backoff_budget_spent >= self.health.max_total_backoff_ms
        ):
            self._give_up()
            return
        if self._breaker == "half_open":
            # The half-open probe failed: reopen with a fresh cooldown.
            self._trip_breaker()
        elif (
            self._breaker == "closed"
            and self._consecutive_faults >= self.health.breaker_threshold
        ):
            self._trip_breaker()

    def _end_reconcile_session(self, cookie: Optional[str]) -> None:
        """Best-effort sync_end for an abandoned reconcile session, so
        the ladder's cap fallback does not strand provider state until
        idle expiry."""
        if cookie is None:
            return
        try:
            self.provider.handle(
                self.request, ReSyncControl(mode=SyncMode.SYNC_END, cookie=cookie)
            )
        except (SyncProtocolError, TransportError):
            return
        if self.network is not None:
            self.network.charge_round_trip()

    # ------------------------------------------------------------------
    # persist-mode subscription management
    # ------------------------------------------------------------------
    def _persist_cycle(self) -> Optional[SyncResponse]:
        """Keep the persist subscription alive and fresh.

        Re-subscribes when the connection died with a crashed server
        incarnation (epoch mismatch) or the handle was torn down; also
        refreshes on the policy's interval so divergence from dropped
        notifications is bounded by ``persist_refresh_interval`` cycles.
        """
        # On a pipelined transport, flush in-flight delivery batches
        # first: a refresh tears the subscription (and its queue) down,
        # and liveness decisions should see the delivered state.
        settle = getattr(self.network, "settle", None)
        if settle is not None:
            settle()
        dead = (
            self._handle is None
            or not self._handle.active
            or self._current_epoch() != self._subscribed_epoch
        )
        refresh_due = (
            self._cycles_since_refresh + 1 >= self.policy.persist_refresh_interval
        )
        if dead or refresh_due:
            if not dead:
                self._refreshes.inc()
            self._teardown_subscription()
            self._subscribe()
        else:
            self._cycles_since_refresh += 1
        return self._last_response

    def _subscribe(self) -> None:
        """Open a fresh persist subscription (null cookie: the initial
        response replaces the whole local content on arrival)."""
        epoch = self._current_epoch()
        if self.network is not None:
            deliveries, handle = self.network.persist_exchange(
                self.provider,
                self.request,
                self.content.apply_notification,
                cookie=None,
            )
            response = deliveries[-1].response
        else:
            response, handle = self.provider.persist(
                self.request, self.content.apply_notification, cookie=None
            )
        self.content.apply(response)
        self._handle = handle
        self._subscribed_epoch = epoch
        self._cycles_since_refresh = 0
        self._last_response = response
        if self.network is not None:
            # One open connection per persist-mode subscription — §5.2's
            # scaling metric; re-counted (not leaked) across crashes.
            self.network.connection_opened(self)

    def _teardown_subscription(self) -> None:
        """Voluntarily end the subscription (sync_end semantics)."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        self._subscribed_epoch = -1
        handle.abandon()
        if self.network is not None:
            self.network.connection_closed(self)

    def drop(self) -> None:
        """Forced disconnect: our persist connection died with a crashed
        server (called by the network's crash handling).  The server
        side is already gone; only account the close locally."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        self._subscribed_epoch = -1
        queue = getattr(handle, "delivery_queue", None)
        if queue is not None:
            # The subscription died with the server incarnation: close
            # the stale batching queue so nothing queued before the
            # crash is delivered into the re-subscribed content.
            queue.close()
        if self.network is not None:
            self.network.connection_closed(self)

    def _current_epoch(self) -> int:
        return getattr(self.network, "crash_epoch", 0) if self.network else 0

    def _apply_safe_prefix(self, exc: TransportError) -> None:
        """Apply the delivered prefix of a truncated response when that
        is safe (docs/PROTOCOL.md §9).

        Update batches order deletes before adds and every action is an
        idempotent state-setter, so a *plain update* prefix only moves
        the replica closer to the master; the cookie travels last, so
        the retry at the old generation retransmits the full batch.  An
        ``initial`` prefix is NOT safe (applying it would replace the
        whole content with a fragment), nor is a ``retain`` response
        (the retain set is only meaningful complete) — those are
        retried wholesale.
        """
        if not isinstance(exc, ResponseTruncated) or exc.partial is None:
            return
        partial = exc.partial
        if partial.initial or partial.uses_retain:
            return
        self.content.apply(partial)

    # ------------------------------------------------------------------
    # pacing and degradation
    # ------------------------------------------------------------------
    def _backoff(self, failure: int, minimum: float = 0.0) -> float:
        """Wait out the backoff for the zero-based *failure*-th failure —
        on the network's simulated clock, no real sleeping.  *minimum*
        floors the jittered delay (a ``ServerBusy`` retry-after hint).
        Returns the waited delay (budget accounting)."""
        delay = max(self.policy.backoff_ms(failure, self._rng), minimum)
        self._backoff_total.inc(delay)
        if self.network is not None:
            self.network.elapsed_ms += delay
        return delay

    def _cycle_succeeded(self) -> None:
        self._consecutive_failed_cycles = 0
        if self._is_degraded:
            self._is_degraded = False
            self._degraded_gauge.set(0)
            if self.replica_server is not None:
                self.replica_server.exit_degraded()
        if self.health is not None:
            self._consecutive_faults = 0
            if self._probe_origin == "quarantine":
                # A successful re-probe out of quarantine is a fresh
                # start: the trip history that parked us is spent.
                self._breaker_trips = 0
            self._probe_origin = None
            self._breaker_set("closed")
            self._breaker_open_until = None
            self._quarantine_until = None
            self._transition("healthy")
        if self._recoverer is not None:
            if self._snapshot_restored:
                self._snapshot_restored = False
                self._recoverer.mark_live()
            self._cycles_since_snapshot += 1
            if self._cycles_since_snapshot >= self.snapshot_interval:
                self._cycles_since_snapshot = 0
                self._recoverer.save()

    def _cycle_failed(self) -> None:
        self._exhausted.inc()
        self._consecutive_failed_cycles += 1
        if (
            not self._is_degraded
            and self._consecutive_failed_cycles >= self.policy.degraded_after
        ):
            self._enter_degraded()
        if self.health is None:
            return
        if self._health_state == "recovering":
            origin, self._probe_origin = self._probe_origin, None
            if origin == "quarantine":
                # The re-probe failed: back to the bench for another
                # interval, never a tight retry loop.
                self._quarantine_until = (
                    self._virtual_now_ms() + self.health.quarantine_probe_ms
                )
                self._transition("quarantined")
                return
            # A failed half-open probe: _note_transport_fault already
            # re-tripped the breaker (possibly into quarantine or
            # gave_up); if we are still nominally recovering, settle
            # back on the read-path truth.
            self._transition("degraded" if self._is_degraded else "healthy")
        if self._health_state == "healthy" and self._is_degraded:
            self._transition("degraded")

    def _enter_degraded(self) -> None:
        if self._is_degraded:
            return
        self._is_degraded = True
        self._degraded_gauge.set(1)
        if self.replica_server is not None:
            self.replica_server.enter_degraded()

    # ------------------------------------------------------------------
    # health state machine (opt-in, docs/FAULTS.md §4)
    # ------------------------------------------------------------------
    def _health_gate(self) -> bool:
        """Decide whether this cycle may contact the provider.

        ``gave_up`` blocks forever (and advances nothing — no busy
        loop, no clock drift).  A quarantine window or an open breaker
        is slept out on the virtual clock, then the cycle proceeds as a
        single-attempt ``recovering`` probe.
        """
        if self._health_state == "gave_up":
            return False
        now = self._virtual_now_ms()
        if self._health_state == "quarantined":
            if self._quarantine_until is not None and now < self._quarantine_until:
                self._sleep_ms(self._quarantine_until - now)
            self._quarantine_until = None
            self._probe_origin = "quarantine"
            self._h_probes.inc()
            self._h_probes.labels(origin="quarantine").inc()
            self._transition("recovering")
            return True
        if self._breaker == "open":
            if (
                self._breaker_open_until is not None
                and now < self._breaker_open_until
            ):
                self._sleep_ms(self._breaker_open_until - now)
            self._breaker_open_until = None
            self._breaker_set("half_open")
            self._probe_origin = "breaker"
            self._h_probes.inc()
            self._h_probes.labels(origin="breaker").inc()
            self._transition("recovering")
        return True

    def _cycle_attempt_cap(self) -> int:
        """Transport attempts this cycle may spend: one for a probe,
        the policy's cap otherwise, never more than the remaining
        lifetime budget."""
        if self.health is None:
            return self.policy.max_attempts
        cap = 1 if self._health_state == "recovering" else self.policy.max_attempts
        remaining = self.health.max_total_attempts - self._attempts_spent
        return max(0, min(cap, remaining))

    def _retries_suspended(self) -> bool:
        """True when the machine decided mid-cycle that further retries
        are wasted provider work (breaker no longer closed, parked, or
        out of budget)."""
        return (
            self._health_state in ("gave_up", "quarantined")
            or self._breaker != "closed"
        )

    def _trip_breaker(self) -> None:
        """One breaker trip: open with a cooldown, or — for a repeat
        offender — escalate to quarantine."""
        self._breaker_trips += 1
        self._h_trips.inc()
        if self._breaker_trips >= self.health.quarantine_after:
            self._enter_quarantine()
            return
        self._breaker_set("open")
        self._breaker_open_until = (
            self._virtual_now_ms() + self.health.breaker_cooldown_ms
        )

    def _enter_quarantine(self) -> None:
        """Park a flapping consumer: tear down any persist subscription,
        park the poll session at the provider's eq.-3 retain tier, and
        re-probe only on the configured interval.  Reads go degraded —
        quarantined content is stale by definition, and it must never
        be served as fresh."""
        self._h_quarantines.inc()
        self._breaker_set("open")
        self._breaker_open_until = None
        if self.mode == "persist":
            self._teardown_subscription()
        else:
            cookie = self.content.cookie
            park = getattr(self.provider, "park_session", None)
            if cookie is not None and callable(park) and park(cookie):
                self._h_parked.inc()
        self._enter_degraded()
        self._quarantine_until = (
            self._virtual_now_ms() + self.health.quarantine_probe_ms
        )
        self._transition("quarantined")

    def _give_up(self) -> None:
        """Terminal: the lifetime retry budget is spent.  The final
        ``sync.health.state`` sample is the gave_up index; no further
        provider attempts, ever."""
        self._h_gave_up.inc()
        if self.mode == "persist":
            self._teardown_subscription()
        self._quarantine_until = None
        self._breaker_open_until = None
        self._enter_degraded()
        self._transition("gave_up")

    def _transition(self, state: str) -> None:
        if state == self._health_state:
            return
        self._health_state = state
        self._h_state.set(HEALTH_STATES.index(state))
        self._h_transitions.inc()
        self._h_transitions.labels(to=state).inc()

    def _breaker_set(self, state: str) -> None:
        if state != self._breaker:
            self._breaker = state
            self._h_breaker.set(_BREAKER_STATES.index(state))

    def _virtual_now_ms(self) -> float:
        """The consumer's monotone virtual clock: accumulated simulated
        latency plus the scheduler's event-loop time (both only ever
        advance)."""
        if self.network is None:
            return 0.0
        scheduler = getattr(self.network, "scheduler", None)
        now = self.network.elapsed_ms
        if scheduler is not None:
            now += scheduler.now
        return now

    def _sleep_ms(self, delay: float) -> None:
        """Sleep on the virtual clock (cooldowns and quarantine waits —
        deliberately not charged to the retry budget)."""
        if self.network is not None and delay > 0:
            self.network.elapsed_ms += delay
