"""E2 — Figure 2: distributed operation processing via referrals.

Paper: a subtree search for ``o=xyz`` sent to the wrong server of a
three-server partition takes **four round trips** (default referral to
the superior, then continuation references to the two subordinate
servers).  This is the cost the replication models exist to avoid — a
replica hit answers in one round trip.
"""

from __future__ import annotations


from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DistributedDirectory, LdapClient

from .common import report


def build_figure2() -> DistributedDirectory:
    dist = DistributedDirectory()
    host_a = dist.add_server("hostA", "o=xyz")
    host_b = dist.add_server(
        "hostB", "ou=research,c=us,o=xyz", default_referral="ldap://hostA"
    )
    host_c = dist.add_server("hostC", "c=in,o=xyz", default_referral="ldap://hostA")
    host_a.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    host_a.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    host_a.add(
        Entry(
            "cn=Fred Jones,c=us,o=xyz",
            {"objectClass": ["person"], "cn": "Fred Jones", "sn": "Jones"},
        )
    )
    dist.add_referral("hostA", "ou=research,c=us,o=xyz", "hostB")
    dist.add_referral("hostA", "c=in,o=xyz", "hostC")
    host_b.add(
        Entry(
            "ou=research,c=us,o=xyz",
            {"objectClass": ["organizationalUnit"], "ou": "research"},
        )
    )
    host_b.add(
        Entry(
            "cn=John Doe,ou=research,c=us,o=xyz",
            {"objectClass": ["inetOrgPerson"], "cn": "John Doe", "sn": "Doe"},
        )
    )
    host_c.add(Entry("c=in,o=xyz", {"objectClass": ["country"], "c": "in"}))
    host_c.add(
        Entry("cn=Ravi,c=in,o=xyz", {"objectClass": ["person"], "cn": "Ravi", "sn": "K"})
    )
    return dist


def test_fig2_referral_round_trips(benchmark):
    dist = build_figure2()
    client = LdapClient(dist.network)
    request = SearchRequest("o=xyz", Scope.SUB)

    # The paper's scenario: request sent to hostB, which does not hold
    # the target.
    worst = client.search("ldap://hostB", request)
    assert worst.round_trips == 4, "Figure 2 prescribes exactly 4 round trips"
    assert worst.complete and len(worst.entries) == 7

    # Best case: the right server first — still 3 (continuations).
    direct = client.search("ldap://hostA", request)
    assert direct.round_trips == 3

    # A replica hit would be 1 round trip; that asymmetry is §3's point.
    local = client.search("ldap://hostC", SearchRequest("c=in,o=xyz", Scope.SUB))
    assert local.round_trips == 1

    report(
        "fig2",
        "Distributed operation processing (round trips per request)",
        ["entry server", "round trips", "entries", "referrals chased"],
        [
            ("hostB (wrong)", worst.round_trips, len(worst.entries), 3),
            ("hostA (right)", direct.round_trips, len(direct.entries), 2),
            ("replica-local", local.round_trips, len(local.entries), 0),
        ],
        params={"servers": 3, "scope": "subtree", "base": "o=xyz"},
        metrics={
            "worst_round_trips": worst.round_trips,
            "best_round_trips": direct.round_trips,
            "replica_round_trips": local.round_trips,
            "entries_returned": len(worst.entries),
        },
        paper_expected={"worst_round_trips": 4, "replica_round_trips": 1},
        network=dist.network,
    )

    benchmark(lambda: LdapClient(dist.network).search("ldap://hostB", request))
