"""Sketch-based anti-entropy reconciliation (recovery tier 2).

Three layers under test (docs/PROTOCOL.md §11, docs/RECOVERY.md):

* the invertible sketch itself — insert/subtract/decode, the
  partitioned-hash layout, detected (never silent) decode failure;
* the provider operations — ``reconcile`` serves a sketch plus a live
  session cookie, ``reconcile_fetch`` resolves decoded keys against
  current content, both journaled so the session survives a crash;
* the consumer ladder — ``:h`` cookies (and only those) enter the
  reconcile tier, decode failures double the sketch up to the cap,
  the cap falls back to the paced full rebuild, and a corrupted
  sketch can never install a wrong entry.
"""

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    Modification,
)
from repro.server.network import SimulatedNetwork
from repro.sync import (
    DurabilityConfig,
    EntrySketch,
    MemoryJournal,
    ReconcileConfig,
    ReconcileFetch,
    ReconcileRequest,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
    SyncProtocolError,
    build_sketch,
    cells_for_divergence,
    corrupt_cell,
    entry_fingerprint,
    entry_key,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str, sn: str = "T") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": sn, "departmentNumber": "42"},
    )


def build_master(n: int = 30) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i:03d}"))
    return master


def overflowing_provider(master, **kwargs) -> ResyncProvider:
    """A durable provider whose sessions overflow after 2 pending
    updates — the cheapest way to mint ``:h`` cookies."""
    return ResyncProvider(
        master,
        durability=DurabilityConfig(history_max_entries=2),
        journal=MemoryJournal(),
        **kwargs,
    )


def digests(entries):
    return [(entry_key(e.dn), entry_fingerprint(e)) for e in entries]


# ----------------------------------------------------------------------
# the sketch
# ----------------------------------------------------------------------
class TestEntrySketch:
    def test_subtract_of_equal_sets_decodes_empty(self):
        entries = [person(f"E{i}") for i in range(20)]
        a = build_sketch(entries, 24, salt=7)
        b = build_sketch(list(entries), 24, salt=7)
        decoded = a.subtract(b).decode()
        assert decoded == ([], [])

    def test_decodes_symmetric_difference(self):
        shared = [person(f"S{i}") for i in range(40)]
        master = shared + [person("Monly1"), person("Monly2")]
        # replica: missing the master-only pair, one extra entry, and a
        # stale version of S0 in place of the master's
        replica = shared[1:] + [person("Ronly"), person("S0", sn="stale")]
        m = build_sketch(master, 48, salt=3)
        r = build_sketch(replica, 48, salt=3)
        decoded = m.subtract(r).decode()
        assert decoded is not None
        positive, negative = decoded
        assert sorted(positive) == sorted(digests([person("Monly1"), person("Monly2"), person("S0")]))
        assert sorted(negative) == sorted(digests([person("Ronly"), person("S0", sn="stale")]))

    def test_undersized_sketch_fails_detectably(self):
        # 60 differing entries cannot peel out of 6 cells; the failure
        # must be a None, never a wrong (partial or garbage) answer.
        m = build_sketch([person(f"M{i}") for i in range(60)], 6, salt=1)
        r = build_sketch([person(f"R{i}") for i in range(60)], 6, salt=1)
        assert m.subtract(r).decode() is None

    def test_corruption_is_detected(self):
        entries = [person(f"E{i}") for i in range(10)]
        m = build_sketch(entries + [person("extra")], 24, salt=5)
        r = build_sketch(entries, 24, salt=5)
        diff = m.subtract(r)
        for position in (0.0, 0.37, 0.99):
            broken = m.subtract(r)
            corrupt_cell(broken, position)
            assert broken.decode() is None, f"corruption at {position} slipped through"
        assert diff.decode() is not None  # the pristine copy still decodes

    def test_subtract_requires_matching_geometry(self):
        with pytest.raises(ValueError):
            EntrySketch(24, salt=1).subtract(EntrySketch(24, salt=2))
        with pytest.raises(ValueError):
            EntrySketch(24).subtract(EntrySketch(48))

    def test_fingerprint_tracks_semantic_content(self):
        a = person("E1")
        assert entry_fingerprint(a) == entry_fingerprint(person("E1"))
        assert entry_fingerprint(a) != entry_fingerprint(person("E1", sn="other"))
        # value order and attribute-name case are not semantic
        x = Entry("cn=V,o=xyz", {"objectClass": ["person"], "cn": ["V"], "memberOf": ["a", "b"]})
        y = Entry("cn=V,o=xyz", {"objectClass": ["person"], "CN": ["V"], "memberof": ["b", "a"]})
        assert entry_fingerprint(x) == entry_fingerprint(y)

    def test_cells_for_divergence_floor_and_rounding(self):
        assert cells_for_divergence(0) == 24
        assert cells_for_divergence(1) == 24
        assert cells_for_divergence(100) % 3 == 0
        assert cells_for_divergence(100) >= 200

    def test_encoded_bytes_scale_with_cells(self):
        small = build_sketch([person("A")], 24).encoded_size()
        large = build_sketch([person("A")], 96).encoded_size()
        assert 0 < small < large
        # BER framing: a parseable definite-length SEQUENCE
        assert build_sketch([person("A")], 24).encoded_bytes()[0] == 0x30


# ----------------------------------------------------------------------
# provider operations
# ----------------------------------------------------------------------
class TestProviderReconcile:
    def test_sketch_and_fetch_round_trip(self):
        master = build_master(12)
        provider = ResyncProvider(master)
        response = provider.reconcile(REQUEST, ReconcileRequest(divergence_hint=4))
        assert response.content_count == 12
        local = build_sketch(
            [], response.sketch.size, salt=response.sketch.salt
        )
        decoded = response.sketch.subtract(local).decode()
        # 12 > 2*4 hint: possibly undersized — retry bigger like a consumer
        if decoded is None:
            response = provider.reconcile(
                REQUEST,
                ReconcileRequest(cells=96, cookie=response.cookie),
            )
            decoded = response.sketch.subtract(
                build_sketch([], response.sketch.size, salt=response.sketch.salt)
            ).decode()
        positive, negative = decoded
        assert negative == []
        fetched = provider.reconcile_fetch(
            REQUEST, ReconcileFetch(keys=tuple(k for k, _ in positive), cookie=response.cookie)
        )
        assert len(fetched.updates) == 12
        assert fetched.cookie == response.cookie

    def test_reconcile_session_is_live_and_journaled(self):
        master = build_master(6)
        provider = ResyncProvider(
            master, durability=DurabilityConfig(), journal=MemoryJournal()
        )
        response = provider.reconcile(REQUEST, ReconcileRequest(cells=48))
        cookie = response.cookie
        # Updates after the sketch land in the session's pending history…
        master.modify("cn=E000,o=xyz", [Modification.replace("sn", "post-sketch")])
        provider.restart()
        provider.recover()  # …and the whole session survives a crash.
        from repro.sync import SyncedContent

        content = SyncedContent(REQUEST)
        content.entries = {e.dn: e for e in master.search(REQUEST).entries}
        content.cookie = cookie
        poll = content.poll(provider)
        assert content.matches_master(master)
        assert any(str(u.dn) == "cn=E000,o=xyz" for u in poll.updates)

    def test_doubling_retry_ends_previous_session(self):
        master = build_master(4)
        provider = ResyncProvider(master)
        first = provider.reconcile(REQUEST, ReconcileRequest(cells=24))
        assert provider.active_session_count == 1
        second = provider.reconcile(
            REQUEST, ReconcileRequest(cells=48, cookie=first.cookie)
        )
        assert provider.active_session_count == 1  # replaced, not leaked
        with pytest.raises(SyncProtocolError):
            provider.reconcile_fetch(REQUEST, ReconcileFetch(keys=(), cookie=first.cookie))
        provider.reconcile_fetch(REQUEST, ReconcileFetch(keys=(), cookie=second.cookie))

    def test_fetch_rejects_foreign_request(self):
        master = build_master(4)
        provider = ResyncProvider(master)
        response = provider.reconcile(REQUEST, ReconcileRequest(cells=24))
        other = SearchRequest("o=xyz", Scope.SUB, "(sn=T)")
        with pytest.raises(SyncProtocolError):
            provider.reconcile_fetch(other, ReconcileFetch(keys=(), cookie=response.cookie))


# ----------------------------------------------------------------------
# the consumer ladder
# ----------------------------------------------------------------------
def overflow_then_kill(master, provider, consumer, touched=4):
    """Sync, overflow the session history (mint an ``:h`` cookie), then
    kill the session so the next poll faces a protocol error."""
    consumer.sync_once()
    for i in range(touched):
        master.modify(f"cn=E{i:03d},o=xyz", [Modification.replace("sn", f"S{i}")])
    consumer.sync_once()  # incomplete-history resume: cookie now carries :h
    assert consumer._cookie_overflowed()
    for i in range(touched):
        master.modify(f"cn=E{i:03d},o=xyz", [Modification.replace("sn", f"Z{i}")])
    provider.invalidate_cookie(consumer.content.cookie)


class TestReconcileTier:
    def test_h_cookie_reconciles_without_reload(self):
        master = build_master(40)
        provider = overflowing_provider(master)
        net = SimulatedNetwork()
        consumer = ResilientConsumer(REQUEST, provider, network=net)
        overflow_then_kill(master, provider, consumer)
        master.delete("cn=E039,o=xyz")
        master.add(person("NEW"))

        assert consumer.sync_once() is not None
        assert consumer.content.matches_master(master)
        reg = net.registry
        assert reg.counter("sync.resilient.reloads").value == 0
        assert reg.counter("sync.reconcile.attempts").value == 1
        assert reg.counter("sync.reconcile.decode_success").value == 1
        # …and the recovered session keeps polling normally.
        master.modify("cn=E020,o=xyz", [Modification.replace("sn", "after")])
        consumer.sync_once()
        assert consumer.content.matches_master(master)

    def test_plain_cookie_restart_reloads_without_reconcile(self):
        """Regression: a provider restart (journal intact or not) leaves
        a *plain* cookie — the replica is a faithful prefix, so the
        ladder must take the honest reload, not burn a sketch round."""
        master = build_master(10)
        provider = ResyncProvider(master)  # no journal: restart forgets all
        net = SimulatedNetwork()
        consumer = ResilientConsumer(REQUEST, provider, network=net)
        consumer.sync_once()
        assert not consumer._cookie_overflowed()
        provider.restart()
        master.add(person("NEW"))
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        assert net.registry.counter("sync.resilient.reloads").value == 1
        assert net.registry.counter("sync.reconcile.attempts").value == 0

    def test_restart_with_intact_journal_needs_neither(self):
        """The other half of the distinction: restart + recover resolves
        the cookie — no protocol error, no reconcile, no reload."""
        master = build_master(10)
        provider = ResyncProvider(
            master, durability=DurabilityConfig(), journal=MemoryJournal()
        )
        net = SimulatedNetwork()
        consumer = ResilientConsumer(REQUEST, provider, network=net)
        consumer.sync_once()
        master.add(person("NEW"))
        provider.restart()
        provider.recover()
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        assert net.registry.counter("sync.resilient.reloads").value == 0
        assert net.registry.counter("sync.reconcile.attempts").value == 0

    def test_disabled_tier_falls_back_to_reload(self):
        master = build_master(20)
        provider = overflowing_provider(master)
        net = SimulatedNetwork()
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, reconcile_config=None
        )
        overflow_then_kill(master, provider, consumer)
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        assert net.registry.counter("sync.resilient.reloads").value == 1
        assert net.registry.counter("sync.reconcile.attempts").value == 0

    def test_sketch_doubles_until_divergence_fits(self):
        master = build_master(120)
        provider = overflowing_provider(master)
        net = SimulatedNetwork()
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            reconcile_config=ReconcileConfig(initial_divergence=1, max_cells=4096),
        )
        overflow_then_kill(master, provider, consumer, touched=40)
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        reg = net.registry
        assert reg.counter("sync.resilient.reloads").value == 0
        assert reg.counter("sync.reconcile.decode_success").value == 1
        assert reg.counter("sync.reconcile.decode_failure").value >= 1
        assert reg.counter("sync.reconcile.rounds").value >= 2

    def test_cap_exhaustion_falls_back_to_rebuild(self):
        master = build_master(60)
        provider = overflowing_provider(master)
        net = SimulatedNetwork()
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            reconcile_config=ReconcileConfig(initial_divergence=1, max_cells=6),
        )
        overflow_then_kill(master, provider, consumer, touched=30)
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        reg = net.registry
        assert reg.counter("sync.reconcile.fallbacks").value == 1
        assert reg.counter("sync.resilient.reloads").value == 1
        assert provider.active_session_count == 1  # abandoned ladder session ended

    def test_corrupted_sketches_never_install_wrong_entries(self):
        """Every served sketch corrupted: the ladder must detect each
        failure, exhaust the cap, and converge through the rebuild —
        with the replica never holding a non-master entry."""
        master = build_master(40)
        provider = overflowing_provider(master)
        net = FaultyNetwork(FaultPlan(FaultSpec(sketch_corrupt=1.0), seed=9))
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            policy=RetryPolicy(jitter=0.0),
            reconcile_config=ReconcileConfig(max_cells=128),
        )
        overflow_then_kill(master, provider, consumer)
        consumer.sync_once()
        assert consumer.content.matches_master(master)
        reg = net.registry
        assert reg.counter("sync.reconcile.decode_success").value == 0
        assert reg.counter("sync.reconcile.fallbacks").value == 1
        assert reg.counter("net.fault.injected").labels(kind="sketch_corrupt").value >= 1

    def test_reconcile_traffic_is_delta_sized(self):
        """The point of the tier: recovering a 1%-divergent replica must
        cost far fewer bytes than the full rebuild."""
        master = build_master(300)
        provider = overflowing_provider(master)
        net = SimulatedNetwork()
        consumer = ResilientConsumer(REQUEST, provider, network=net)
        overflow_then_kill(master, provider, consumer, touched=3)

        before = net.stats.snapshot()
        consumer.sync_once()
        reconcile_bytes = (net.stats - before).bytes_sent
        assert consumer.content.matches_master(master)

        # Same divergence, tier disabled: the paced full rebuild.
        master2 = build_master(300)
        provider2 = overflowing_provider(master2)
        net2 = SimulatedNetwork()
        consumer2 = ResilientConsumer(
            REQUEST, provider2, network=net2, reconcile_config=None
        )
        overflow_then_kill(master2, provider2, consumer2, touched=3)
        before2 = net2.stats.snapshot()
        consumer2.sync_once()
        rebuild_bytes = (net2.stats - before2).bytes_sent
        assert consumer2.content.matches_master(master2)
        assert reconcile_bytes * 10 <= rebuild_bytes
