"""Tests for LDAP URL (RFC 2255) parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import DN, Scope, SearchRequest
from repro.ldap.url import LdapUrl, LdapUrlParseError


class TestParse:
    def test_host_only(self):
        url = LdapUrl.parse("ldap://hostB")
        assert url.host == "hostB"
        assert url.port is None
        assert url.base.is_root

    def test_host_port(self):
        url = LdapUrl.parse("ldap://hostB:1389")
        assert url.port == 1389

    def test_base_dn(self):
        url = LdapUrl.parse("ldap://hostB/ou=research,c=us,o=xyz")
        assert url.base == DN.parse("ou=research,c=us,o=xyz")

    def test_full_form(self):
        url = LdapUrl.parse("ldap://h/o=xyz?cn,mail?sub?(sn=Doe)")
        assert url.attributes == ("cn", "mail")
        assert url.scope is Scope.SUB
        assert str(url.filter) == "(sn=Doe)"

    def test_scope_names(self):
        for name, scope in (("base", Scope.BASE), ("one", Scope.ONE), ("sub", Scope.SUB)):
            assert LdapUrl.parse(f"ldap://h/o=xyz??{name}").scope is scope

    def test_percent_encoding(self):
        url = LdapUrl.parse("ldap://h/cn=John%20Doe,o=xyz")
        assert url.base == DN.parse("cn=John Doe,o=xyz")

    @pytest.mark.parametrize(
        "bad",
        [
            "http://host",
            "ldap://",
            "ldap://h:abc",
            "ldap://h/o=xyz??weird",
            "ldap://h/o=xyz?a?sub?(f=1)?extra",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(LdapUrlParseError):
            LdapUrl.parse(bad)


class TestFormat:
    def test_host_only(self):
        assert str(LdapUrl(host="hostB")) == "ldap://hostB"

    def test_roundtrip_typical(self):
        for text in (
            "ldap://hostB",
            "ldap://hostB:1389",
            "ldap://h/o=xyz",
            "ldap://h/o=xyz??sub",
            "ldap://h/o=xyz?cn,mail?sub?(sn=Doe)",
            "ldap://h/o=xyz???(sn=Doe)",
        ):
            assert str(LdapUrl.parse(text)) == text

    def test_server_url(self):
        url = LdapUrl.parse("ldap://hostB:1389/o=xyz??sub")
        assert url.server_url == "ldap://hostB:1389"


class TestToRequest:
    def test_standalone(self):
        url = LdapUrl.parse("ldap://h/o=xyz?cn?one?(sn=Doe)")
        request = url.to_request()
        assert request.base == DN.parse("o=xyz")
        assert request.scope is Scope.ONE
        assert str(request.filter) == "(sn=Doe)"
        assert request.attributes == frozenset({"cn"})

    def test_defaults_inherited_from_continued_request(self):
        """A continuation reference carries only the new base; scope,
        filter and attributes come from the request being continued."""
        original = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)", ["mail"])
        url = LdapUrl.parse("ldap://hostC/c=in,o=xyz")
        request = url.to_request(default=original)
        assert request.base == DN.parse("c=in,o=xyz")
        assert request.scope is Scope.SUB
        assert str(request.filter) == "(sn=Doe)"
        assert request.attributes == frozenset({"mail"})

    def test_no_default_falls_back_to_match_all(self):
        request = LdapUrl.parse("ldap://h/o=xyz").to_request()
        assert request.scope is Scope.SUB
        assert str(request.filter) == "(objectClass=*)"


_hosts = st.sampled_from(["hostA", "hostB", "replica-1"])
_bases = st.sampled_from(["", "o=xyz", "c=us,o=xyz", "cn=John Doe,o=xyz"])


@given(
    _hosts,
    st.one_of(st.none(), st.integers(min_value=1, max_value=65535)),
    _bases,
    st.one_of(st.none(), st.sampled_from(list(Scope))),
)
def test_roundtrip_property(host, port, base, scope):
    url = LdapUrl(host=host, port=port, base=DN.parse(base), scope=scope)
    assert LdapUrl.parse(str(url)) == url
