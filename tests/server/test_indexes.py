"""Tests for the attribute indexes."""

from repro.ldap import DN
from repro.ldap.attributes import AttributeType, Syntax
from repro.server.indexes import (
    AttributeIndexSet,
    EqualityIndex,
    OrderingIndex,
    SubstringIndex,
)


def dn(i: int) -> DN:
    return DN.parse(f"cn=e{i},o=xyz")


class TestEqualityIndex:
    def test_insert_lookup(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.insert(dn(1), ["Doe"])
        idx.insert(dn(2), ["doe"])
        assert idx.lookup("DOE") == {dn(1), dn(2)}

    def test_remove(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.insert(dn(1), ["Doe"])
        idx.remove(dn(1), ["Doe"])
        assert idx.lookup("Doe") == set()

    def test_remove_missing_is_noop(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.remove(dn(1), ["ghost"])

    def test_len(self):
        idx = EqualityIndex(AttributeType("sn"))
        idx.insert(dn(1), ["a", "b"])
        assert len(idx) == 2


class TestSubstringIndex:
    def test_candidates_superset(self):
        idx = SubstringIndex(AttributeType("serialNumber"))
        idx.insert(dn(1), ["004217IN"])
        idx.insert(dn(2), ["994299US"])
        cands = idx.candidates(["0042"])
        assert dn(1) in cands
        assert dn(2) not in cands

    def test_short_component_unusable(self):
        idx = SubstringIndex(AttributeType("sn"))
        idx.insert(dn(1), ["abc"])
        assert idx.candidates(["ab"]) is None  # below trigram size

    def test_multiple_components_intersect(self):
        idx = SubstringIndex(AttributeType("x"))
        idx.insert(dn(1), ["abcdef"])
        idx.insert(dn(2), ["abcxyz"])
        assert idx.candidates(["abc", "def"]) == {dn(1)}

    def test_remove(self):
        idx = SubstringIndex(AttributeType("x"))
        idx.insert(dn(1), ["abcdef"])
        idx.remove(dn(1), ["abcdef"])
        assert idx.candidates(["abc"]) == set()

    def test_empty_result_short_circuits(self):
        idx = SubstringIndex(AttributeType("x"))
        idx.insert(dn(1), ["abc"])
        assert idx.candidates(["zzz"]) == set()


class TestOrderingIndex:
    def test_ge_le(self):
        idx = OrderingIndex(AttributeType("sn"))
        for i, name in enumerate(["alpha", "beta", "gamma"]):
            idx.insert(dn(i), [name])
        assert idx.greater_or_equal("beta") == {dn(1), dn(2)}
        assert idx.less_or_equal("beta") == {dn(0), dn(1)}

    def test_integer_syntax_ordering(self):
        idx = OrderingIndex(AttributeType("age", syntax=Syntax.INTEGER))
        idx.insert(dn(1), ["9"])
        idx.insert(dn(2), ["10"])
        # string normalization of normalized ints: "10" < "9"
        # the index stringifies, so this documents the conservative
        # superset behaviour — matching re-verifies numerically.
        assert dn(2) in idx.greater_or_equal("10") or dn(2) in idx.less_or_equal("10")

    def test_remove_specific_value(self):
        idx = OrderingIndex(AttributeType("sn"))
        idx.insert(dn(1), ["a"])
        idx.insert(dn(2), ["a"])
        idx.remove(dn(1), ["a"])
        assert idx.greater_or_equal("a") == {dn(2)}


class TestAttributeIndexSet:
    def test_consistent_insert_remove(self):
        ixs = AttributeIndexSet(AttributeType("sn"))
        ixs.insert(dn(1), ["Doe"])
        assert ixs.equality.lookup("doe") == {dn(1)}
        ixs.remove(dn(1), ["Doe"])
        assert ixs.equality.lookup("doe") == set()

    def test_unordered_attribute_has_no_ordering_index(self):
        ixs = AttributeIndexSet(AttributeType("objectClass", ordered=False))
        assert ixs.ordering is None
        ixs.insert(dn(1), ["person"])  # must not crash
