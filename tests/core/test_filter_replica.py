"""Tests for the filter replica — the paper's proposed model."""

import pytest

from repro.core import AnswerStatus, FilterReplica, TemplateRegistry
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification, SimulatedNetwork
from repro.sync import ResyncProvider


def person(dn: str, **attrs) -> Entry:
    base = {"objectClass": ["person", "top"], "sn": "T"}
    base["cn"] = dn.split(",")[0].split("=")[1]
    base.update(attrs)
    return Entry(dn, base)


@pytest.fixture()
def master() -> DirectoryServer:
    m = DirectoryServer("master")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    m.add(Entry("c=in,o=xyz", {"objectClass": ["country"], "c": "in"}))
    for i in range(6):
        m.add(
            person(
                f"cn=P{i},c=in,o=xyz",
                serialNumber=f"00{i // 3}2{i:02d}IN",
                departmentNumber="2406" if i % 2 == 0 else "2410",
                divisionNumber="24",
            )
        )
    return m


@pytest.fixture()
def provider(master) -> ResyncProvider:
    return ResyncProvider(master)


STORED = SearchRequest("", Scope.SUB, "(serialNumber=0002*IN)")


class TestStoredFilters:
    def test_add_filter_fetches_content(self, master, provider):
        replica = FilterReplica("branch")
        stored = replica.add_filter(STORED, provider)
        assert stored.entry_count() == 3  # P0..P2 share block 0002

    def test_add_without_provider_starts_empty(self):
        replica = FilterReplica("branch")
        assert replica.add_filter(STORED).entry_count() == 0

    def test_add_idempotent(self, master, provider):
        replica = FilterReplica("branch")
        a = replica.add_filter(STORED, provider)
        b = replica.add_filter(STORED, provider)
        assert a is b
        assert len(replica.stored_filters()) == 1

    def test_remove_filter(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        replica.remove_filter(STORED, provider=provider)
        assert not replica.holds(STORED)
        assert provider.active_session_count == 0

    def test_load_directly(self):
        replica = FilterReplica("branch")
        replica.load_directly(STORED, [person("cn=X,c=in,o=xyz")])
        assert replica.entry_count() == 1


class TestAnswer:
    def test_hit_same_filter(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        answer = replica.answer(STORED)
        assert answer.status is AnswerStatus.HIT
        assert len(answer.entries) == 3

    def test_hit_contained_query(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        q = SearchRequest("", Scope.SUB, "(serialNumber=000200IN)")
        answer = replica.answer(q)
        assert answer.status is AnswerStatus.HIT
        assert [e.first("cn") for e in answer.entries] == ["P0"]

    def test_hit_scoped_query_under_null_base(self, master, provider):
        """Filter replicas answer both null-based and scoped queries."""
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        q = SearchRequest("c=in,o=xyz", Scope.SUB, "(serialNumber=000200IN)")
        assert replica.answer(q).status is AnswerStatus.HIT

    def test_miss_uncontained(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        q = SearchRequest("", Scope.SUB, "(serialNumber=0012*IN)")
        answer = replica.answer(q)
        assert answer.status is AnswerStatus.MISS
        assert answer.referrals[0].url == "ldap://master"

    def test_miss_on_attribute_superset(self, master, provider):
        replica = FilterReplica("branch")
        narrow = SearchRequest("", Scope.SUB, "(serialNumber=0002*IN)", ["cn"])
        replica.add_filter(narrow, provider)
        q = SearchRequest("", Scope.SUB, "(serialNumber=000200IN)", ["cn", "mail"])
        assert replica.answer(q).status is AnswerStatus.MISS

    def test_answer_projects_attributes(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        q = SearchRequest("", Scope.SUB, "(serialNumber=000200IN)", ["cn"])
        answer = replica.answer(q)
        assert answer.entries[0].has_attribute("cn")
        assert not answer.entries[0].has_attribute("serialNumber")

    def test_stats_and_diagnostics(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        answer = replica.answer(STORED)
        assert answer.answered_by == str(STORED)
        assert replica.stats.hits == 1
        assert replica.stored_filters()[0].hits == 1

    def test_containment_checks_counted(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        replica.answer(STORED)
        assert replica.containment_checks >= 1


class TestTemplateAdmission:
    def test_non_member_query_misses_immediately(self, master, provider):
        templates = TemplateRegistry.from_strings("(serialnumber=_)", "(serialnumber=_*_)")
        replica = FilterReplica("branch", templates=templates)
        replica.add_filter(STORED, provider)
        before = replica.containment_checks
        q = SearchRequest("", Scope.SUB, "(cn=P0)")
        assert replica.answer(q).status is AnswerStatus.MISS
        assert replica.containment_checks == before  # pruned, no checks

    def test_member_query_answered(self, master, provider):
        templates = TemplateRegistry.from_strings("(serialnumber=_)", "(serialnumber=_*_)")
        replica = FilterReplica("branch", templates=templates)
        replica.add_filter(STORED, provider)
        q = SearchRequest("", Scope.SUB, "(serialNumber=000200IN)")
        assert replica.answer(q).status is AnswerStatus.HIT

    def test_incompatible_templates_pruned(self, master, provider):
        templates = TemplateRegistry.from_strings("(serialnumber=_)", "(mail=_)")
        replica = FilterReplica("branch", templates=templates)
        mail_q = SearchRequest("", Scope.SUB, "(mail=a@b.c)")
        replica.add_filter(mail_q, provider)
        before = replica.containment_checks
        q = SearchRequest("", Scope.SUB, "(serialNumber=000200IN)")
        replica.answer(q)
        assert replica.containment_checks == before  # mail filter never checked


class TestCacheIntegration:
    def test_miss_feeds_cache_then_hits(self, master, provider):
        replica = FilterReplica("branch", cache_capacity=10)
        q = SearchRequest("", Scope.SUB, "(cn=P0)")
        assert replica.answer(q).status is AnswerStatus.MISS
        replica.observe_miss(q, master.search(q).entries)
        answer = replica.answer(q)
        assert answer.status is AnswerStatus.HIT
        assert answer.answered_by.startswith("cache:")

    def test_cached_results_may_be_stale(self, master, provider):
        """§7.4: cached user queries are not updated."""
        replica = FilterReplica("branch", cache_capacity=10)
        q = SearchRequest("", Scope.SUB, "(cn=P0)")
        replica.observe_miss(q, master.search(q).entries)
        master.modify("cn=P0,c=in,o=xyz", [Modification.replace("title", "new")])
        answer = replica.answer(q)
        assert answer.status is AnswerStatus.HIT
        assert answer.entries[0].first("title") is None  # stale by design

    def test_filter_count_includes_cache(self, master, provider):
        replica = FilterReplica("branch", cache_capacity=10)
        replica.add_filter(STORED, provider)
        replica.observe_miss(
            SearchRequest("", Scope.SUB, "(cn=P0)"), master.search(SearchRequest("", Scope.SUB, "(cn=P0)")).entries
        )
        assert replica.filter_count == 2


class TestSyncAndSizing:
    def test_sync_applies_updates(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        master.modify("cn=P0,c=in,o=xyz", [Modification.replace("title", "X")])
        replica.sync(provider)
        answer = replica.answer(SearchRequest("", Scope.SUB, "(serialNumber=000200IN)"))
        assert answer.entries[0].first("title") == "X"

    def test_network_traffic_charged(self, master, provider):
        net = SimulatedNetwork()
        replica = FilterReplica("branch", network=net)
        replica.add_filter(STORED, provider)
        assert net.stats.sync_entry_pdus == 3

    def test_entry_count_unique_across_filters(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        overlapping = SearchRequest("", Scope.SUB, "(serialNumber=00*IN)")
        replica.add_filter(overlapping, provider)
        assert replica.entry_count() == 6  # P0..P5, no double counting

    def test_size_bytes(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        assert replica.size_bytes() > 0

    def test_repr(self, master, provider):
        replica = FilterReplica("branch")
        replica.add_filter(STORED, provider)
        assert "branch" in repr(replica)
