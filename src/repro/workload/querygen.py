"""Workload generation: the Table 1 query mix over the synthetic DIT.

Reproduces the *shape* of the paper's real two-day trace (§7.1):

=====================================  =========
query type                             ≈ share
=====================================  =========
``(serialNumber=_)``                     58%
``(mail=_)``                             24%
``(&(dept=_)(div=_))``                   16%
``(location=_)``                          2%
=====================================  =========

with the locality structure the results depend on:

* person queries target the replica's geography with probability
  ``local_bias`` (remote users mostly look up nearby colleagues);
* serialNumber lookups are skewed by **site block** (Zipf over blocks,
  then within) — the spatial/semantic locality that ``_*_`` generalized
  filters capture;
* mail lookups are skewed per employee, but the mail local part carries
  no block structure, so no generalized filter concentrates them;
* department queries are Zipf over departments ("not all departments
  in a division are accessed uniformly", §7.2(b));
* location queries are Zipf over the small location tree (high access
  rate on few entries, §7.2(c));
* the emitted stream passes a re-reference mixer, providing the
  temporal locality behind the cached-user-query curves (Figures 8/9).

Deterministic given the config seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ldap.entry import Entry
from ..ldap.filters import And, Equality
from ..ldap.query import Scope, SearchRequest
from .datagen import EnterpriseDirectory
from .distributions import TemporalMixer, WeightedChoice, ZipfSampler
from .trace import QueryRecord, QueryType, Trace

__all__ = ["WorkloadConfig", "WorkloadGenerator"]

ROOT_BASE = ""  # minimally directory enabled applications search from the root


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the workload generator (defaults follow §7.1)."""

    mix: Tuple[Tuple[QueryType, float], ...] = (
        (QueryType.SERIAL, 58.0),
        (QueryType.MAIL, 24.0),
        (QueryType.DEPARTMENT, 16.0),
        (QueryType.LOCATION, 2.0),
    )
    geography: str = "AP"
    local_bias: float = 0.75
    block_zipf: float = 0.85
    employee_zipf: float = 0.3
    department_zipf: float = 1.1
    location_zipf: float = 1.0
    repeat_probability: float = 0.2
    temporal_window: int = 100
    seed: int = 42


class WorkloadGenerator:
    """Samples :class:`QueryRecord` streams from an enterprise directory."""

    def __init__(self, directory: EnterpriseDirectory, config: Optional[WorkloadConfig] = None):
        self.directory = directory
        self.config = config if config is not None else WorkloadConfig()
        cfg = self.config
        self._rng = random.Random(cfg.seed)

        self._type_choice = WeightedChoice(
            [qtype for qtype, _w in cfg.mix],
            [w for _qtype, w in cfg.mix],
            rng=self._rng,
        )

        local_countries = set(directory.geography_countries(cfg.geography))
        self._local_employees = [
            e
            for cc in sorted(local_countries)
            for e in directory.employees_by_country[cc]
        ]
        self._remote_employees = [
            e
            for cc in sorted(set(directory.countries()) - local_countries)
            for e in directory.employees_by_country[cc]
        ]
        if not self._local_employees:
            raise ValueError(f"geography {cfg.geography!r} has no employees")

        # serialNumber: hierarchical block → employee sampling.
        self._local_block_sampler = self._block_sampler(self._local_employees)
        self._remote_block_sampler = (
            self._block_sampler(self._remote_employees)
            if self._remote_employees
            else None
        )
        # mail: per-employee popularity, blind to blocks.
        self._local_mail_sampler = ZipfSampler(
            self._local_employees, cfg.employee_zipf, rng=self._rng
        )
        self._remote_mail_sampler = (
            ZipfSampler(self._remote_employees, cfg.employee_zipf, rng=self._rng)
            if self._remote_employees
            else None
        )
        self._department_sampler = ZipfSampler(
            directory.departments, cfg.department_zipf, rng=self._rng
        )
        self._location_sampler = ZipfSampler(
            directory.locations, cfg.location_zipf, rng=self._rng
        )

    def _block_sampler(self, employees: Sequence[Entry]):
        by_block: Dict[str, List[Entry]] = {}
        for employee in employees:
            serial = employee.first("serialNumber")
            by_block.setdefault(serial[:4], []).append(employee)
        blocks = sorted(by_block)
        block_zipf = ZipfSampler(blocks, self.config.block_zipf, rng=self._rng)
        # Within a block, a mild per-employee skew.
        within: Dict[str, ZipfSampler] = {
            block: ZipfSampler(
                by_block[block], self.config.employee_zipf, rng=self._rng
            )
            for block in blocks
        }

        def sample() -> Entry:
            return within[block_zipf.sample()].sample()

        return sample

    # ------------------------------------------------------------------
    # per-type query construction
    # ------------------------------------------------------------------
    def _pick_person(self, block_based: bool) -> Entry:
        local = (
            self._remote_employees == []
            or self._rng.random() < self.config.local_bias
        )
        if block_based:
            if local or self._remote_block_sampler is None:
                return self._local_block_sampler()
            return self._remote_block_sampler()
        if local or self._remote_mail_sampler is None:
            return self._local_mail_sampler.sample()
        return self._remote_mail_sampler.sample()

    def _serial_query(self, day: int) -> QueryRecord:
        employee = self._pick_person(block_based=True)
        flt = Equality("serialNumber", employee.first("serialNumber"))
        country_base = employee.dn.parent
        return QueryRecord(
            request=SearchRequest(ROOT_BASE, Scope.SUB, flt),
            scoped_request=SearchRequest(country_base, Scope.SUB, flt),
            qtype=QueryType.SERIAL,
            day=day,
        )

    def _mail_query(self, day: int) -> QueryRecord:
        employee = self._pick_person(block_based=False)
        flt = Equality("mail", employee.first("mail"))
        country_base = employee.dn.parent
        return QueryRecord(
            request=SearchRequest(ROOT_BASE, Scope.SUB, flt),
            scoped_request=SearchRequest(country_base, Scope.SUB, flt),
            qtype=QueryType.MAIL,
            day=day,
        )

    def _department_query(self, day: int) -> QueryRecord:
        # Department queries target department *records*; minimally
        # directory enabled applications (§3.1.1) work with per-object-
        # class tables, so the objectClass predicate is part of the
        # query (otherwise the filter would also match every employee
        # of the department).
        dept = self._department_sampler.sample()
        flt = And(
            (
                Equality("objectClass", "department"),
                Equality("departmentNumber", dept.first("departmentNumber")),
                Equality("divisionNumber", dept.first("divisionNumber")),
            )
        )
        division_base = dept.dn.parent
        return QueryRecord(
            request=SearchRequest(ROOT_BASE, Scope.SUB, flt),
            scoped_request=SearchRequest(division_base, Scope.SUB, flt),
            qtype=QueryType.DEPARTMENT,
            day=day,
        )

    def _location_query(self, day: int) -> QueryRecord:
        loc = self._location_sampler.sample()
        flt = And(
            (Equality("objectClass", "location"), Equality("l", loc.first("l")))
        )
        return QueryRecord(
            request=SearchRequest(ROOT_BASE, Scope.SUB, flt),
            scoped_request=SearchRequest(loc.dn.parent, Scope.SUB, flt),
            qtype=QueryType.LOCATION,
            day=day,
        )

    def _fresh(self, day: int) -> QueryRecord:
        qtype = self._type_choice.sample()
        if qtype is QueryType.SERIAL:
            return self._serial_query(day)
        if qtype is QueryType.MAIL:
            return self._mail_query(day)
        if qtype is QueryType.DEPARTMENT:
            return self._department_query(day)
        return self._location_query(day)

    # ------------------------------------------------------------------
    # trace generation
    # ------------------------------------------------------------------
    def generate(self, n_queries: int, days: int = 2) -> Trace:
        """A trace of *n_queries* spread evenly over *days* days.

        Each day gets a fresh temporal-locality window (overnight gaps
        break short-term re-reference) over the same long-term
        popularity distributions, mirroring a stable two-day workload.
        """
        if days < 1:
            raise ValueError("days must be >= 1")
        trace = Trace()
        per_day = n_queries // days
        remainder = n_queries - per_day * days
        for day in range(1, days + 1):
            quota = per_day + (1 if day <= remainder else 0)
            current_day = day

            def fresh() -> QueryRecord:
                return self._fresh(current_day)

            mixer: TemporalMixer[QueryRecord] = TemporalMixer(
                fresh,
                repeat_probability=self.config.repeat_probability,
                window=self.config.temporal_window,
                rng=self._rng,
            )
            for _ in range(quota):
                trace.append(mixer.sample())
        return trace
