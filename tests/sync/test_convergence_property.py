"""Property-based convergence: every sync mechanism must converge.

Hypothesis drives random interleavings of master updates and replica
polls; after a final poll the replica content for the tracked search
must equal the master's live content — the paper's convergence
guarantee (§5), for all four mechanisms.
"""

from hypothesis import given, settings, strategies as st

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import (
    ChangelogProvider,
    FullReloadProvider,
    ResyncProvider,
    RetainResyncProvider,
    SyncedContent,
    TombstoneProvider,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")
NAMES = [f"P{i}" for i in range(6)]


def build_master() -> DirectoryServer:
    m = DirectoryServer("M")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i, name in enumerate(NAMES):
        m.add(
            Entry(
                f"cn={name},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": name,
                    "sn": "T",
                    "departmentNumber": "42" if i % 2 == 0 else "99",
                },
            )
        )
    return m


# One step of the random schedule: either an update kind on a target
# entry, or a replica poll.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("poll")),
        st.tuples(st.just("modify_in"), st.sampled_from(NAMES)),
        st.tuples(st.just("modify_out"), st.sampled_from(NAMES)),
        st.tuples(st.just("benign"), st.sampled_from(NAMES)),
        st.tuples(st.just("delete"), st.sampled_from(NAMES)),
        st.tuples(st.just("rename"), st.sampled_from(NAMES)),
        st.tuples(st.just("add"), st.sampled_from(NAMES)),
    ),
    min_size=1,
    max_size=25,
)


def _apply(master: DirectoryServer, step, counter: list) -> None:
    kind = step[0]
    if kind == "poll":
        return
    name = step[1]
    dn = f"cn={name},o=xyz"
    try:
        if kind == "modify_in":
            master.modify(dn, [Modification.replace("departmentNumber", "42")])
        elif kind == "modify_out":
            master.modify(dn, [Modification.replace("departmentNumber", "99")])
        elif kind == "benign":
            master.modify(dn, [Modification.replace("title", f"t{counter[0]}")])
        elif kind == "delete":
            master.delete(dn)
        elif kind == "rename":
            counter[0] += 1
            master.modify_dn(dn, new_rdn=f"cn={name}v{counter[0]}")
        elif kind == "add":
            counter[0] += 1
            master.add(
                Entry(
                    f"cn={name}n{counter[0]},o=xyz",
                    {
                        "objectClass": ["person"],
                        "cn": f"{name}n{counter[0]}",
                        "sn": "T",
                        "departmentNumber": "42",
                    },
                )
            )
    except Exception:
        pass  # target already renamed/deleted this run — fine


def _run(provider_factory, steps) -> None:
    master = build_master()
    provider = provider_factory(master)
    content = SyncedContent(REQUEST)
    content.poll(provider)
    counter = [0]
    for step in steps:
        _apply(master, step, counter)
        if step[0] == "poll":
            content.poll(provider)
    content.poll(provider)
    truth = {e.dn for e in master.search(REQUEST).entries}
    assert content.dns() == truth
    assert content.matches_master(master)


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_resync_converges(steps):
    _run(ResyncProvider, steps)


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_retain_converges(steps):
    _run(RetainResyncProvider, steps)


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_changelog_converges(steps):
    _run(ChangelogProvider, steps)


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_tombstone_converges(steps):
    _run(TombstoneProvider, steps)


@settings(max_examples=30, deadline=None)
@given(_steps)
def test_full_reload_converges(steps):
    _run(FullReloadProvider, steps)


@settings(max_examples=40, deadline=None)
@given(_steps)
def test_persist_mode_converges(steps):
    """Persist-mode ReSync: every notification applied on arrival."""
    master = build_master()
    provider = ResyncProvider(master)
    content = SyncedContent(REQUEST)
    response, handle = provider.persist(REQUEST, content.apply_notification)
    for update in response.updates:
        content.apply_notification(update)
    counter = [0]
    for step in steps:
        _apply(master, step, counter)
    assert content.matches_master(master)
    handle.abandon()
