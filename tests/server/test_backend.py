"""Tests for the EntryStore backend, incl. index-consistency property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import DN, Entry, Scope, parse_filter, matches
from repro.server import EntryStore


def entry(dn_text: str, **attrs) -> Entry:
    attrs.setdefault("objectClass", ["person"])
    return Entry(dn_text, attrs)


@pytest.fixture()
def store() -> EntryStore:
    s = EntryStore()
    s.register_root(DN.parse("o=xyz"))
    s.put(entry("o=xyz", objectClass=["organization"], o="xyz"))
    s.put(entry("c=us,o=xyz", objectClass=["country"], c="us"))
    s.put(entry("cn=a,c=us,o=xyz", cn="a", sn="alpha"))
    s.put(entry("cn=b,c=us,o=xyz", cn="b", sn="beta"))
    s.put(entry("cn=x,cn=a,c=us,o=xyz", cn="x", sn="deep"))
    return s


class TestBasics:
    def test_len_contains_get(self, store):
        assert len(store) == 5
        assert DN.parse("cn=a,c=us,o=xyz") in store
        assert store.get(DN.parse("cn=zz,o=xyz")) is None

    def test_get_returns_stored_copy(self, store):
        e = store.get(DN.parse("cn=a,c=us,o=xyz"))
        assert e.first("sn") == "alpha"

    def test_children_sorted(self, store):
        kids = store.children_of(DN.parse("c=us,o=xyz"))
        assert [str(k) for k in kids] == ["cn=a,c=us,o=xyz", "cn=b,c=us,o=xyz"]

    def test_roots(self, store):
        assert store.roots() == [DN.parse("o=xyz")]

    def test_has_parent(self, store):
        assert store.has_parent(DN.parse("cn=new,c=us,o=xyz"))
        assert not store.has_parent(DN.parse("cn=new,c=zz,o=xyz"))
        assert store.has_parent(DN.parse("o=xyz"))  # registered root

    def test_put_replaces_and_reindexes(self, store):
        updated = entry("cn=a,c=us,o=xyz", cn="a", sn="renamed")
        store.put(updated)
        assert store.candidates_for(parse_filter("(sn=alpha)")) == set()
        assert store.candidates_for(parse_filter("(sn=renamed)")) == {updated.dn}

    def test_delete_updates_children(self, store):
        store.delete(DN.parse("cn=b,c=us,o=xyz"))
        kids = store.children_of(DN.parse("c=us,o=xyz"))
        assert [str(k) for k in kids] == ["cn=a,c=us,o=xyz"]

    def test_delete_missing_returns_none(self, store):
        assert store.delete(DN.parse("cn=ghost,o=xyz")) is None

    def test_has_children(self, store):
        assert store.has_children(DN.parse("cn=a,c=us,o=xyz"))
        assert not store.has_children(DN.parse("cn=b,c=us,o=xyz"))

    def test_referral_dns_tracked(self, store):
        ref = Entry(
            "c=in,o=xyz", {"objectClass": ["referral"], "ref": "ldap://hostC"}
        )
        store.put(ref)
        assert store.referral_dns() == {ref.dn}
        store.delete(ref.dn)
        assert store.referral_dns() == set()


class TestScopeIteration:
    def test_base(self, store):
        got = list(store.iter_scope(DN.parse("c=us,o=xyz"), Scope.BASE))
        assert [str(e.dn) for e in got] == ["c=us,o=xyz"]

    def test_base_missing(self, store):
        assert list(store.iter_scope(DN.parse("c=zz,o=xyz"), Scope.BASE)) == []

    def test_one(self, store):
        got = {str(e.dn) for e in store.iter_scope(DN.parse("c=us,o=xyz"), Scope.ONE)}
        assert got == {"cn=a,c=us,o=xyz", "cn=b,c=us,o=xyz"}

    def test_sub_includes_base_and_deep(self, store):
        got = {str(e.dn) for e in store.iter_scope(DN.parse("c=us,o=xyz"), Scope.SUB)}
        assert got == {
            "c=us,o=xyz",
            "cn=a,c=us,o=xyz",
            "cn=b,c=us,o=xyz",
            "cn=x,cn=a,c=us,o=xyz",
        }

    def test_sub_traverses_absent_root(self):
        s = EntryStore()
        s.register_root(DN.parse("o=xyz"))
        s.put(entry("o=xyz", objectClass=["organization"], o="xyz"))
        got = list(s.iter_scope(DN(()), Scope.SUB))
        assert [str(e.dn) for e in got] == ["o=xyz"]

    def test_subtree_dns(self, store):
        dns = store.subtree_dns(DN.parse("cn=a,c=us,o=xyz"))
        assert len(dns) == 2


class TestCandidates:
    def test_equality_candidates(self, store):
        cands = store.candidates_for(parse_filter("(sn=beta)"))
        assert cands == {DN.parse("cn=b,c=us,o=xyz")}

    def test_and_picks_most_selective(self, store):
        cands = store.candidates_for(parse_filter("(&(objectClass=person)(sn=beta))"))
        assert cands == {DN.parse("cn=b,c=us,o=xyz")}

    def test_or_unions_children(self, store):
        cands = store.candidates_for(parse_filter("(|(sn=beta)(sn=alpha))"))
        assert cands == {
            DN.parse("cn=a,c=us,o=xyz"),
            DN.parse("cn=b,c=us,o=xyz"),
        }
        assert store.plan_for(parse_filter("(|(sn=beta)(sn=alpha))")).strategy == "union"

    def test_presence_uses_presence_index(self, store):
        # The store is tiny, so the planner returns the presence set
        # rather than degrading to a scan (see SearchPlanner.MIN_SCAN_SIZE).
        plan = store.plan_for(parse_filter("(sn=*)"))
        assert plan.strategy == "presence"
        assert plan.candidates == {
            DN.parse("cn=a,c=us,o=xyz"),
            DN.parse("cn=b,c=us,o=xyz"),
            DN.parse("cn=x,cn=a,c=us,o=xyz"),
        }

    def test_not_not_narrowed(self, store):
        assert store.candidates_for(parse_filter("(!(sn=beta))")) is None
        assert store.plan_for(parse_filter("(!(sn=beta))")).strategy == "scan"

    def test_missing_attribute_is_absent(self, store):
        plan = store.plan_for(parse_filter("(nosuchattr=x)"))
        assert plan.strategy == "absent"
        assert plan.candidates == set()


# ----------------------------------------------------------------------
# property: candidates are always a superset of true matches
# ----------------------------------------------------------------------
_names = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=12, unique=True
)


@settings(max_examples=50, deadline=None)
@given(_names, st.text(alphabet="abcdef", min_size=1, max_size=3))
def test_candidates_superset_property(names, needle):
    store = EntryStore()
    store.register_root(DN.parse("o=xyz"))
    store.put(entry("o=xyz", objectClass=["organization"], o="xyz"))
    for i, name in enumerate(names):
        store.put(entry(f"cn=e{i},o=xyz", cn=f"e{i}", sn=name))
    for flt_text in (f"(sn={needle})", f"(sn={needle}*)", f"(sn>={needle})", f"(sn<={needle})"):
        flt = parse_filter(flt_text)
        true_matches = {e.dn for e in store.all_entries() if matches(flt, e)}
        cands = store.candidates_for(flt)
        if cands is not None:
            assert true_matches <= cands
