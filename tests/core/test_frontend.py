"""Tests for replica frontends: clients chasing misses to the master."""

import pytest

from repro.core import FilterReplica, ReplicaFrontend, SubtreeReplica
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, LdapClient, SimulatedNetwork
from repro.sync import ResyncProvider


@pytest.fixture()
def deployment():
    """Master + filter replica, both addressable on one network."""
    network = SimulatedNetwork()
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(4):
        master.add(
            Entry(
                f"cn=P{i},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"P{i}",
                    "sn": "T",
                    "serialNumber": f"000{i}00IN",
                },
            )
        )
    network.register(master)

    provider = ResyncProvider(master)
    replica = FilterReplica("branch", master_url="ldap://master")
    replica.add_filter(
        SearchRequest("", Scope.SUB, "(serialNumber=0000*IN)"), provider
    )
    network.register(ReplicaFrontend("branch", replica))
    return network, master, replica


class TestFilterReplicaFrontend:
    def test_hit_served_locally(self, deployment):
        network, _master, _replica = deployment
        client = LdapClient(network)
        result = client.search(
            "ldap://branch", SearchRequest("", Scope.SUB, "(serialNumber=000000IN)")
        )
        assert result.round_trips == 1
        assert [e.first("cn") for e in result.entries] == ["P0"]

    def test_miss_chased_to_master(self, deployment):
        network, _master, _replica = deployment
        client = LdapClient(network)
        result = client.search(
            "ldap://branch", SearchRequest("", Scope.SUB, "(serialNumber=000300IN)")
        )
        assert result.round_trips == 2
        assert result.servers_contacted == ["ldap://branch", "ldap://master"]
        assert [e.first("cn") for e in result.entries] == ["P3"]
        assert result.complete

    def test_round_trip_asymmetry(self, deployment):
        """The §3 payoff: hits cost 1 round trip, misses cost 2."""
        network, _master, _replica = deployment
        client = LdapClient(network)
        hit = client.search(
            "ldap://branch", SearchRequest("", Scope.SUB, "(serialNumber=000000IN)")
        )
        miss = client.search(
            "ldap://branch", SearchRequest("", Scope.SUB, "(cn=P3)")
        )
        assert hit.round_trips < miss.round_trips


class TestSubtreeReplicaFrontend:
    def test_partial_answer_chased(self):
        network = SimulatedNetwork()
        master = DirectoryServer("master")
        master.add_naming_context("c=us,o=xyz")
        master.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
        master.add(
            Entry("cn=A,c=us,o=xyz", {"objectClass": ["person"], "cn": "A", "sn": "a"})
        )
        sub_server = DirectoryServer("hostB")
        sub_server.add_naming_context("ou=r,c=us,o=xyz")
        sub_server.add(
            Entry("ou=r,c=us,o=xyz", {"objectClass": ["organizationalUnit"], "ou": "r"})
        )
        sub_server.add(
            Entry(
                "cn=B,ou=r,c=us,o=xyz",
                {"objectClass": ["person"], "cn": "B", "sn": "b"},
            )
        )
        network.register(master)
        network.register(sub_server)

        replica = SubtreeReplica("branch", master_url="ldap://master")
        replica.add_context(
            "c=us,o=xyz", referrals=[("ou=r,c=us,o=xyz", "ldap://hostB")]
        )
        replica.sync(ResyncProvider(master))
        network.register(ReplicaFrontend("branch", replica))

        client = LdapClient(network)
        result = client.search(
            "ldap://branch", SearchRequest("c=us,o=xyz", Scope.SUB, "(sn=*)")
        )
        # local entries + subordinate server's, via the continuation
        assert {e.first("cn") for e in result.entries} == {"A", "B"}
        assert result.round_trips == 2

    def test_repr(self, deployment):
        _net, _master, replica = deployment
        assert "branch" in repr(ReplicaFrontend("branch", replica))
