"""Filter evaluation: does an entry match a filter?

Implements LDAP's three-ish-valued matching pragmatically as two-valued:
an assertion on an absent attribute evaluates FALSE (and its negation
TRUE), which is the behaviour of the deployed servers the paper measures
against and the one its algorithms assume.

Matching respects attribute syntaxes from the entry's registry:
directory strings compare case-insensitively, integers numerically.
Ordering assertions on attributes whose values mix syntaxes degrade to
string comparison rather than failing, mirroring real servers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterable, Optional

from .attributes import AttributeRegistry, AttributeType, DEFAULT_REGISTRY
from .entry import Entry
from .filters import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Predicate,
    Present,
    Substring,
)

__all__ = [
    "matches",
    "substring_match",
    "compare_values",
    "compile_filter",
    "compile_filter_cached",
]


def compare_values(atype: AttributeType, left: str, right: str) -> int:
    """Three-way comparison of two attribute values under *atype*'s syntax.

    Returns -1 / 0 / +1.  When normalization yields mixed types (e.g. an
    integer-syntax attribute holding a non-numeric value), both sides are
    compared as normalized strings.
    """
    lnorm = atype.normalize(left)
    rnorm = atype.normalize(right)
    if type(lnorm) is not type(rnorm):
        lnorm, rnorm = str(lnorm), str(rnorm)
    if lnorm < rnorm:
        return -1
    if lnorm > rnorm:
        return 1
    return 0


def substring_match(
    atype: AttributeType,
    value: str,
    initial: str,
    any_parts: Iterable[str],
    final: str,
) -> bool:
    """Match one value against a substring assertion.

    Components must appear in order without overlap; comparison is under
    the attribute's normalization (case-insensitive for directory
    strings).
    """
    norm = str(atype.normalize(value))
    cursor = 0
    if initial:
        prefix = str(atype.normalize(initial))
        if not norm.startswith(prefix):
            return False
        cursor = len(prefix)
    for part in any_parts:
        needle = str(atype.normalize(part))
        found = norm.find(needle, cursor)
        if found < 0:
            return False
        cursor = found + len(needle)
    if final:
        suffix = str(atype.normalize(final))
        if len(norm) - cursor < len(suffix):
            return False
        if not norm.endswith(suffix):
            return False
    return True


def _match_predicate(pred: Predicate, entry: Entry) -> bool:
    atype = entry.registry.get(pred.attr)
    if isinstance(pred, Present):
        return entry.has_attribute(pred.attr)
    values = entry.get(pred.attr)
    if not values:
        return False
    if isinstance(pred, Equality):
        assertion = atype.normalize(pred.value)
        return any(atype.normalize(v) == assertion for v in values)
    if isinstance(pred, Approx):
        # Approximate matching is server-defined; case/space-insensitive
        # equality is the common lowest denominator.
        assertion = str(atype.normalize(pred.value)).lower()
        return any(str(atype.normalize(v)).lower() == assertion for v in values)
    if isinstance(pred, GreaterOrEqual):
        if not atype.ordered:
            return False
        return any(compare_values(atype, v, pred.value) >= 0 for v in values)
    if isinstance(pred, LessOrEqual):
        if not atype.ordered:
            return False
        return any(compare_values(atype, v, pred.value) <= 0 for v in values)
    if isinstance(pred, Substring):
        return any(
            substring_match(atype, v, pred.initial, pred.any_parts, pred.final)
            for v in values
        )
    raise TypeError(f"unknown predicate {pred!r}")  # pragma: no cover


def matches(node: Filter, entry: Entry) -> bool:
    """True when *entry* satisfies filter *node*."""
    if isinstance(node, Predicate):
        return _match_predicate(node, entry)
    if isinstance(node, And):
        return all(matches(child, entry) for child in node.children)
    if isinstance(node, Or):
        return any(matches(child, entry) for child in node.children)
    if isinstance(node, Not):
        return not matches(node.child, entry)
    raise TypeError(f"unknown filter node {node!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# compiled filters
# ----------------------------------------------------------------------
CompiledFilter = Callable[[Entry], bool]


def _ordering_test(
    atype: AttributeType, attr: str, assertion: str, want: int
) -> CompiledFilter:
    """Closure for ``>=`` (want=+1) / ``<=`` (want=-1) under *atype*."""
    normalize = atype.normalize
    rnorm = normalize(assertion)
    rtype = type(rnorm)
    rstr = str(rnorm)

    def test(entry: Entry) -> bool:
        values = entry.get(attr)
        if not values:
            return False
        for value in values:
            lnorm = normalize(value)
            if type(lnorm) is rtype:
                cmp = -1 if lnorm < rnorm else (1 if lnorm > rnorm else 0)
            else:
                lstr = str(lnorm)
                cmp = -1 if lstr < rstr else (1 if lstr > rstr else 0)
            if cmp * want >= 0:
                return True
        return False

    return test


def _compile_predicate(pred: Predicate, registry: AttributeRegistry) -> CompiledFilter:
    atype = registry.get(pred.attr)
    # Look up by the predicate's own attribute spelling — Entry.get is
    # case-insensitive but not alias-aware, exactly like matches().
    attr = pred.attr
    normalize = atype.normalize
    if isinstance(pred, Present):
        return lambda entry: entry.has_attribute(attr)
    if isinstance(pred, Equality):
        assertion = normalize(pred.value)
        return lambda entry: any(
            normalize(v) == assertion for v in entry.get(attr) or ()
        )
    if isinstance(pred, Approx):
        assertion = str(normalize(pred.value)).lower()
        return lambda entry: any(
            str(normalize(v)).lower() == assertion for v in entry.get(attr) or ()
        )
    if isinstance(pred, GreaterOrEqual):
        if not atype.ordered:
            return lambda entry: False
        return _ordering_test(atype, attr, pred.value, +1)
    if isinstance(pred, LessOrEqual):
        if not atype.ordered:
            return lambda entry: False
        return _ordering_test(atype, attr, pred.value, -1)
    if isinstance(pred, Substring):
        initial = str(normalize(pred.initial)) if pred.initial else ""
        needles = tuple(str(normalize(p)) for p in pred.any_parts)
        final = str(normalize(pred.final)) if pred.final else ""

        def substring_test(entry: Entry) -> bool:
            values = entry.get(attr)
            if not values:
                return False
            for value in values:
                norm = str(normalize(value))
                cursor = 0
                if initial:
                    if not norm.startswith(initial):
                        continue
                    cursor = len(initial)
                ok = True
                for needle in needles:
                    found = norm.find(needle, cursor)
                    if found < 0:
                        ok = False
                        break
                    cursor = found + len(needle)
                if not ok:
                    continue
                if final:
                    if len(norm) - cursor < len(final) or not norm.endswith(final):
                        continue
                return True
            return False

        return substring_test
    raise TypeError(f"unknown predicate {pred!r}")  # pragma: no cover


def compile_filter(
    node: Filter, registry: Optional[AttributeRegistry] = None
) -> CompiledFilter:
    """Compile *node* into one ``entry -> bool`` closure.

    Attribute types are resolved and assertion values normalized **once
    per filter** instead of once per entry, and the per-entry
    ``isinstance`` dispatch of :func:`matches` disappears — the verify
    path of a search evaluates a chain of plain closures.  Semantics
    are identical to :func:`matches` evaluated under *registry* (the
    server's registry; entries carry the same one in every store).
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    if isinstance(node, Predicate):
        return _compile_predicate(node, reg)
    if isinstance(node, And):
        tests = tuple(compile_filter(child, reg) for child in node.children)
        if len(tests) == 1:
            return tests[0]
        return lambda entry: all(test(entry) for test in tests)
    if isinstance(node, Or):
        tests = tuple(compile_filter(child, reg) for child in node.children)
        if len(tests) == 1:
            return tests[0]
        return lambda entry: any(test(entry) for test in tests)
    if isinstance(node, Not):
        inner = compile_filter(node.child, reg)
        return lambda entry: not inner(entry)
    raise TypeError(f"unknown filter node {node!r}")  # pragma: no cover


@lru_cache(maxsize=65_536)
def compile_filter_cached(node: Filter) -> CompiledFilter:
    """Memoized :func:`compile_filter` under the default registry.

    Filters are immutable and hot paths (replica evaluation, routing,
    session fan-out) compile the same filter over and over — this keeps
    one closure per distinct filter.  Only the default registry is
    memoized, matching the memoization policy of
    :func:`repro.core.containment.query_contained_in`.
    """
    return compile_filter(node, DEFAULT_REGISTRY)
