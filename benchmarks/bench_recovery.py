"""E13 — crash recovery: resume-from-journal vs full reload.

A durable :class:`ResyncProvider` journals session state so a crash is
survivable: consumers keep their cookies and the first post-crash poll
carries only the delta (docs/PROTOCOL.md §10).  Without the journal a
provider restart voids every session and each consumer must reload its
full content.  This bench quantifies that difference as the session
count grows: post-crash traffic (bytes on the wire after the crash)
and recovery time for the journal replay itself.

The sweep is deterministic (fixed directory, fixed update schedule, no
network faults), so ``s{N}_durable_bytes_sent`` / ``s{N}_reload_bytes_sent``
are regression-diffable by ``validate_results.py``; ``recovery_seconds``
is wall time and stays informational.  The in-bench floor — reload
traffic at least 5x the durable resume at 100 sessions — fails on any
reversion to reload-after-crash independent of runner speed.
"""

from __future__ import annotations

import time

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import DurabilityConfig, MemoryJournal, ResyncProvider, SyncedContent

from .common import report

DEPARTMENTS = 12
PERSONS_PER_DEPT = 10
SESSION_COUNTS = (25, 50, 100)
UPDATES = DEPARTMENTS  # one touched entry per department
SNAPSHOT_INTERVAL = 64
MIN_TRAFFIC_RATIO = 5.0  # reload must cost >=5x the durable resume


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for dept in range(DEPARTMENTS):
        for person in range(PERSONS_PER_DEPT):
            name = f"P{dept:02d}-{person:02d}"
            master.add(
                Entry(
                    f"cn={name},o=xyz",
                    {
                        "objectClass": ["person"],
                        "cn": name,
                        "sn": "T",
                        "departmentNumber": f"D{dept:02d}",
                    },
                )
            )
    return master


def open_sessions(provider, count: int):
    """*count* consumers, one department filter each, initial content
    delivered; returns (consumers, initial bytes on the wire)."""
    consumers = []
    initial_bytes = 0
    for i in range(count):
        request = SearchRequest(
            "o=xyz", Scope.SUB, f"(departmentNumber=D{i % DEPARTMENTS:02d})"
        )
        content = SyncedContent(request)
        initial_bytes += sum(u.pdu_bytes for u in content.poll(provider).updates)
        consumers.append(content)
    return consumers, initial_bytes


def mutate(master: DirectoryServer) -> None:
    """One modified entry per department: every session has a 1-entry
    delta pending when the crash hits."""
    for dept in range(DEPARTMENTS):
        master.modify(
            f"cn=P{dept:02d}-00,o=xyz", [Modification.replace("sn", f"S{dept}")]
        )


def run_durable_cell(count: int) -> dict:
    master = build_master()
    journal = MemoryJournal()
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(snapshot_interval=SNAPSHOT_INTERVAL),
        journal=journal,
    )
    consumers, initial_bytes = open_sessions(provider, count)
    mutate(master)
    provider.restart()  # the crash
    started = time.perf_counter()
    replayed = provider.recover()
    recovery_seconds = time.perf_counter() - started
    post_bytes = 0
    for content in consumers:
        post_bytes += sum(u.pdu_bytes for u in content.poll(provider).updates)
        assert content.matches_master(master)
    assert provider.active_session_count == count
    return {
        "initial_bytes": initial_bytes,
        "post_bytes": post_bytes,
        "recovery_seconds": recovery_seconds,
        "replayed": replayed,
        "journal_records": journal.record_count,
    }


def run_reload_cell(count: int) -> dict:
    """The same schedule against a journal-less provider: the restart
    voids every session and consumers fall back to full reloads."""
    master = build_master()
    provider = ResyncProvider(master)
    consumers, initial_bytes = open_sessions(provider, count)
    mutate(master)
    provider.restart()  # the crash: nothing to recover from
    post_bytes = 0
    for content in consumers:
        post_bytes += sum(u.pdu_bytes for u in content.reload(provider).updates)
        assert content.matches_master(master)
    return {"initial_bytes": initial_bytes, "post_bytes": post_bytes}


def test_recovery(benchmark):
    rows = []
    metrics = {}
    for count in SESSION_COUNTS:
        durable = run_durable_cell(count)
        reload_ = run_reload_cell(count)
        ratio = reload_["post_bytes"] / max(durable["post_bytes"], 1)
        rows.append(
            [
                count,
                durable["post_bytes"],
                reload_["post_bytes"],
                round(ratio, 1),
                durable["replayed"],
                round(durable["recovery_seconds"] * 1000, 2),
            ]
        )
        metrics[f"s{count}_durable_bytes_sent"] = durable["post_bytes"]
        metrics[f"s{count}_reload_bytes_sent"] = reload_["post_bytes"]
        metrics[f"s{count}_replayed"] = durable["replayed"]
        metrics[f"s{count}_recovery_seconds"] = durable["recovery_seconds"]

    # Identical schedules: the durable resume must beat the reload by a
    # wide margin, not by noise — the headline robustness claim.
    assert (
        metrics["s100_reload_bytes_sent"]
        >= MIN_TRAFFIC_RATIO * metrics["s100_durable_bytes_sent"]
    )
    # The delta a recovered session serves never exceeds what a live one
    # would have: post-crash traffic is O(delta), not O(content).
    for count in SESSION_COUNTS:
        assert metrics[f"s{count}_durable_bytes_sent"] > 0

    report(
        "recovery",
        "Post-crash traffic and recovery time vs session count",
        [
            "sessions",
            "durable bytes",
            "reload bytes",
            "ratio",
            "replayed",
            "recover ms",
        ],
        rows,
        params={
            "departments": DEPARTMENTS,
            "persons_per_dept": PERSONS_PER_DEPT,
            "updates": UPDATES,
            "snapshot_interval": SNAPSHOT_INTERVAL,
            "session_counts": ",".join(str(c) for c in SESSION_COUNTS),
        },
        metrics=metrics,
        paper_expected=None,
    )

    # Timed unit: one full journal replay at the largest session count.
    master = build_master()
    provider = ResyncProvider(
        master,
        durability=DurabilityConfig(snapshot_interval=SNAPSHOT_INTERVAL),
        journal=MemoryJournal(),
    )
    open_sessions(provider, SESSION_COUNTS[-1])
    mutate(master)
    provider.restart()
    benchmark(provider.recover)
