"""LDAP URLs (RFC 2255).

Referral objects and continuation references name subordinate servers
with LDAP URLs: ``ldap://host:port/base?attrs?scope?filter``.  The
paper's Figure 2 uses the short form ``ldap://hostB``; full URLs let a
referral carry the re-based search with it.

:class:`LdapUrl` parses and formats the subset used by directory
referrals: scheme, host, optional port, base DN and the optional
attribute/scope/filter query components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple
from urllib.parse import quote, unquote

from .dn import DN, ROOT_DN
from .filter_parser import parse_filter
from .filters import Filter
from .query import Scope, SearchRequest

__all__ = ["LdapUrl", "LdapUrlParseError"]

_SCOPE_NAMES = {"base": Scope.BASE, "one": Scope.ONE, "sub": Scope.SUB}
_SCOPE_TEXT = {Scope.BASE: "base", Scope.ONE: "one", Scope.SUB: "sub"}


class LdapUrlParseError(ValueError):
    """Raised when an LDAP URL cannot be parsed."""


@dataclass(frozen=True)
class LdapUrl:
    """One parsed LDAP URL.

    >>> url = LdapUrl.parse("ldap://hostB/ou=research,c=us,o=xyz??sub?(sn=Doe)")
    >>> url.host, str(url.base), url.scope
    ('hostB', 'ou=research,c=us,o=xyz', <Scope.SUB: 2>)
    """

    host: str
    port: Optional[int] = None
    base: DN = ROOT_DN
    attributes: Tuple[str, ...] = ()
    scope: Optional[Scope] = None
    filter: Optional[Filter] = None

    @classmethod
    def parse(cls, text: str) -> "LdapUrl":
        if not text.startswith("ldap://"):
            raise LdapUrlParseError(f"not an ldap:// URL: {text!r}")
        rest = text[len("ldap://") :]
        hostport, _, tail = rest.partition("/")
        if not hostport:
            raise LdapUrlParseError(f"missing host in {text!r}")
        host, _, port_text = hostport.partition(":")
        port: Optional[int] = None
        if port_text:
            if not port_text.isdigit():
                raise LdapUrlParseError(f"bad port in {text!r}")
            port = int(port_text)

        parts = tail.split("?") if tail else [""]
        if len(parts) > 4:
            raise LdapUrlParseError(f"too many '?' components in {text!r}")
        base = DN.parse(unquote(parts[0])) if parts[0] else ROOT_DN
        attributes: Tuple[str, ...] = ()
        scope: Optional[Scope] = None
        flt: Optional[Filter] = None
        if len(parts) > 1 and parts[1]:
            attributes = tuple(a for a in unquote(parts[1]).split(",") if a)
        if len(parts) > 2 and parts[2]:
            name = unquote(parts[2]).strip().lower()
            if name not in _SCOPE_NAMES:
                raise LdapUrlParseError(f"unknown scope {name!r} in {text!r}")
            scope = _SCOPE_NAMES[name]
        if len(parts) > 3 and parts[3]:
            flt = parse_filter(unquote(parts[3]))
        return cls(
            host=host,
            port=port,
            base=base,
            attributes=attributes,
            scope=scope,
            filter=flt,
        )

    # ------------------------------------------------------------------
    @property
    def server_url(self) -> str:
        """Just the scheme+host(+port) part, e.g. ``ldap://hostB``."""
        port = f":{self.port}" if self.port is not None else ""
        return f"ldap://{self.host}{port}"

    def to_request(self, default: Optional[SearchRequest] = None) -> SearchRequest:
        """The search request this URL describes.

        Missing components inherit from *default* (the request being
        continued), per referral-chasing semantics: a continuation
        reference typically carries only the new base.
        """
        scope = self.scope
        flt = self.filter
        attributes = self.attributes or None
        if default is not None:
            if scope is None:
                scope = default.scope
            if flt is None:
                flt = default.filter
            if attributes is None and not default.wants_all_attributes:
                attributes = tuple(default.attributes)
        return SearchRequest(
            self.base,
            scope if scope is not None else Scope.SUB,
            flt if flt is not None else "(objectClass=*)",
            attributes,
        )

    def __str__(self) -> str:
        out = self.server_url
        has_query = self.attributes or self.scope is not None or self.filter is not None
        if not self.base.is_root or has_query:
            out += "/" + quote(str(self.base), safe="=,+ ")
        if has_query:
            out += "?" + ",".join(self.attributes)
            out += "?" + (_SCOPE_TEXT[self.scope] if self.scope is not None else "")
            if self.filter is not None:
                out += "?" + quote(str(self.filter), safe="()=*&|!<>~ ")
            # trailing empty components are omitted
            while out.endswith("?"):
                out = out[:-1]
        return out
