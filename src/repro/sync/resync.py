"""The ReSync filter-synchronization protocol (§5.2) — master side.

Two providers implement the two synchronization equations of §5.1:

* :class:`ResyncProvider` — **complete history** (eq. 2).  The master
  keeps a per-session history of entries leaving the content (via the
  update-listener hook of :class:`~repro.server.directory.DirectoryServer`)
  and each poll sends exactly the net adds, modifies and deletes since
  the last poll.  Supports both modes of update: ``poll`` (cookie-based
  resumption) and ``persist`` (an open connection carrying change
  notifications, extending the persistent-search idea of [15]).

* :class:`RetainResyncProvider` — **incomplete history** (eq. 3).  The
  master keeps no per-session state, only a per-entry last-change CSN.
  Each poll returns full entries for everything that changed since the
  cookie's CSN and still matches, plus a DN-only ``retain`` action for
  every unchanged in-content entry; the replica discards whatever is
  neither retained nor sent.  Convergent without history, at the price
  of one retain PDU per unchanged entry per poll.

Both speak the same request/response types, so the consumer
(:mod:`repro.sync.consumer`) and the experiments treat them uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..ldap.controls import ReSyncControl, SyncMode
from ..ldap.dn import DN
from ..ldap.query import SearchRequest
from ..obs.tracing import span
from ..server.directory import DirectoryServer
from ..server.operations import UpdateOp, UpdateRecord
from .durability import (
    AdmissionController,
    DurabilityConfig,
    JournalBackend,
    record_from_wire,
    record_to_wire,
    request_from_wire,
    request_to_wire,
    session_from_wire,
    session_to_wire,
)
from .protocol import (
    ReconcileFetch,
    ReconcileRequest,
    ReconcileResponse,
    SyncProtocolError,
    SyncResponse,
    SyncUpdate,
)
from .reconcile import build_sketch, cells_for_divergence, entry_key
from .router import SessionRouter
from .session import Session, SessionStore

__all__ = ["ResyncProvider", "RetainResyncProvider", "PersistHandle"]

DeliverFn = Callable[[SyncUpdate], None]


class PersistHandle:
    """Client-side handle to an open persist-mode connection.

    Abandoning the handle (``abandon()``) models the LDAP abandon
    operation on a persistent search (Figure 3 ends this way).
    """

    def __init__(self, provider: "ResyncProvider", session: Session):
        self._provider = provider
        self._session = session
        self.active = True
        #: Set by a pipelined network: the per-session batching queue
        #: the notifications flow through (closed with the handle).
        self.delivery_queue = None

    @property
    def session_id(self) -> str:
        return self._session.session_id

    def abandon(self) -> None:
        """Tear down the persistent connection without a sync_end."""
        if self.active:
            self._provider._end_persist(self._session)
            self.active = False
            if self.delivery_queue is not None:
                self.delivery_queue.close()


class ResyncProvider:
    """Complete-history ReSync master (eq. 2), one per master server.

    Registers itself as an update listener on *server*; every committed
    update is folded into each active session's pending actions.

    With ``routed=True`` (the default) the fan-out goes through a
    :class:`~repro.sync.router.SessionRouter`: only sessions whose
    holder/attribute-fingerprint/region summaries say the update *can*
    affect them are visited — a superset of the sessions the linear
    scan would notify (property-tested), visited in the same creation
    order with the same compiled-vs-interpreted-equivalent predicate,
    so the per-session notification streams are byte-identical.
    ``routed=False`` keeps the seed linear scan (the test oracle, also
    reachable as :meth:`on_update_linear`).

    With a *journal* the provider becomes **durable** (docs/PROTOCOL.md
    §10): every state-changing event is journaled write-ahead, state is
    snapshotted periodically, and :meth:`recover` rebuilds the exact
    pre-crash session state so consumers resume from their existing
    cookies with an incremental delta instead of a full resync.  A
    :class:`~repro.sync.durability.DurabilityConfig` additionally caps
    per-session histories (overflow degrades that one session to an
    incomplete-history resume, eq. 3) and rate-limits full-content
    rebuilds (resync-storm admission control).

    Args:
        server: the master directory server.
        idle_limit: logical-time session expiry (the admin time limit).
        routed: route ``on_update`` through the session router.
        durability: history caps / admission / snapshot cadence; implied
            (with defaults) when *journal* is given.
        journal: write-ahead journal backend; None keeps the seed
            memory-only behavior.
    """

    def __init__(
        self,
        server: DirectoryServer,
        idle_limit: int = 100_000,
        routed: bool = True,
        durability: Optional[DurabilityConfig] = None,
        journal: Optional[JournalBackend] = None,
    ):
        self.server = server
        self.sessions = SessionStore(idle_limit=idle_limit)
        self.router: Optional[SessionRouter] = SessionRouter() if routed else None
        self._persist_callbacks: Dict[str, DeliverFn] = {}
        self._route_candidates = server.metrics.counter("sync.route.candidates")
        self._route_notified = server.metrics.counter("sync.route.notified")
        if durability is None and journal is not None:
            durability = DurabilityConfig()
        self.durability = durability
        self.journal = journal
        metrics = server.metrics
        self._unknown_cookie = metrics.counter("sync.session.unknown_cookie")
        self._journal_appends = metrics.counter("sync.durability.journal_appends")
        self._journal_bytes = metrics.gauge("sync.durability.journal_bytes")
        self._snapshots = metrics.counter("sync.durability.snapshots")
        self._recoveries = metrics.counter("sync.durability.recoveries")
        self._replayed = metrics.counter("sync.durability.replayed_records")
        self._dropped = metrics.counter("sync.durability.dropped_records")
        self._overflows = metrics.counter("sync.durability.history_overflow")
        self._degraded_resumes = metrics.counter("sync.durability.degraded_resumes")
        self._parked = metrics.counter("sync.durability.parked_sessions")
        self._sessions_lost = metrics.counter("sync.durability.sessions_lost")
        self._reconcile_served = metrics.counter("sync.reconcile.served")
        self._reconcile_fetches = metrics.counter("sync.reconcile.fetches")
        # CSN of the last committed update this provider has seen; for a
        # durable provider this doubles as the replayed-journal position
        # during recovery (it equals server.current_csn exactly when the
        # journal lost nothing).
        self._watermark = server.current_csn
        # Per-entry last-change CSNs (eq.-3 degraded resumes); only
        # maintained when a durability config is present.
        self._last_change: Dict[DN, int] = {}
        # Recovered sessions not yet re-registered into the router; they
        # take the linear fan-out path until their first poll registers
        # them (lazy re-registration).
        self._lazy_router: Set[str] = set()
        self._appends_since_snapshot = 0
        self._replaying = False
        self.admission: Optional[AdmissionController] = None
        if durability is not None and durability.admission_burst is not None:
            self.admission = AdmissionController(
                durability.admission_burst,
                durability.admission_refill,
                durability.admission_retry_after_ms,
                metrics,
            )
        server.add_update_listener(self)

    # ------------------------------------------------------------------
    # update listener
    # ------------------------------------------------------------------
    def on_update(self, record: UpdateRecord) -> None:
        """Fold one committed master update into every affected session."""
        self._journal_event({"t": "update", **record_to_wire(record)})
        self._watermark = record.csn
        if self.durability is not None:
            self._note_last_change(record)
        if self.router is None:
            self.on_update_linear(record)
        else:
            self._on_update_routed(record)
            # Recovered-but-not-yet-registered sessions take the linear
            # path until their first poll re-registers them.
            for sid in list(self._lazy_router):
                session = self.sessions.get(sid)
                if session is None:
                    self._lazy_router.discard(sid)
                    continue
                self._apply_to_session(session, record)
        self._maybe_snapshot()

    def _on_update_routed(self, record: UpdateRecord) -> None:
        # Phase 1: route, resolve the exact membership predicate per
        # candidate (pre-resolved by the holder index where it already
        # knows the answer — SessionRouter.route_verdicts), and advance
        # *all* holder state before any delivery.  A persist deliver
        # callback may update the master and re-enter on_update
        # mid-flush; with holders already advanced for every affected
        # session, the nested routing pass is complete, and the nested
        # visit happens between this record's deliveries exactly where
        # the linear scan would put it.
        routed = self.router.route_verdicts(record)
        self._route_candidates.inc(len(routed))
        visits = []
        sessions_get = self.sessions.get
        same_dn = record.dn == record.effective_dn
        for rs, verdict in routed:
            session = sessions_get(rs.session_id)
            if session is None:
                self.router.unregister(rs.session_id)  # expired meanwhile
                continue
            if verdict is not None:
                in_before, in_after = verdict
            else:
                in_before = record.before is not None and rs.selects(record.before)
                in_after = record.after is not None and rs.selects(record.after)
                if not in_before and not in_after:
                    continue
            if not (in_before and in_after and same_dn):
                # A stayed-in-place modify transitions no holder state.
                self.router.note_delivery(
                    rs, in_before, in_after, record.dn, record.effective_dn
                )
            visits.append((session, in_before, in_after))
        self._route_notified.inc(len(visits))
        # Phase 2: notify, in session-creation order (== linear order).
        # One shared frozen SyncUpdate per outcome kind serves every
        # visited session (consumers copy entries on apply), so each PDU
        # is built once per record instead of once per session.  The
        # outcome split is exactly Session.observe's.
        stays = gone = enters = None
        flush = self._flush_persist
        for session, in_before, in_after in visits:
            if in_before and in_after:
                if same_dn:
                    if stays is None:
                        stays = SyncUpdate.modify(record.after)
                    session.enqueue(stays)
                else:  # rename kept in content: delete old DN + add new
                    if gone is None:
                        gone = SyncUpdate.delete(record.dn)
                    if enters is None:
                        enters = SyncUpdate.add(record.after)
                    session.enqueue(gone)
                    session.enqueue(enters)
            elif in_before:
                if gone is None:
                    gone = SyncUpdate.delete(record.dn)
                session.enqueue(gone)
            else:
                if enters is None:
                    enters = SyncUpdate.add(record.after)
                session.enqueue(enters)
            flush(session)

    def on_update_linear(self, record: UpdateRecord) -> None:
        """The seed linear fan-out — every active session's filter is
        evaluated against the update (the routing-equivalence oracle)."""
        for session in self.sessions.active_sessions():
            self._apply_to_session(session, record)

    def _apply_to_session(self, session: Session, record: UpdateRecord) -> None:
        """Evaluate *record* against one session exactly like the linear
        scan (also the journal-replay fan-out)."""
        request = session.request
        in_before = record.before is not None and request.selects(record.before)
        in_after = record.after is not None and request.selects(record.after)
        if not in_before and not in_after:
            return
        session.observe(
            in_before=in_before,
            in_after=in_after,
            old_dn=record.dn,
            new_dn=record.effective_dn,
            after_entry=record.after,
        )
        self._flush_persist(session)

    def _flush_persist(self, session: Session) -> None:
        if session.persist_queue is None:
            return
        deliver = self._persist_callbacks.get(session.session_id)
        if deliver is None:
            return
        if session.draining:
            # Reentrant call: a deliver callback triggered a master
            # update, which re-entered on_update mid-delivery.  The new
            # notification is already queued; the outer drain loop picks
            # it up after the in-flight batch, preserving order.
            return
        session.draining = True
        # A batching DeliveryQueue (pipelined transport) takes whole
        # queued runs at once — one offer per flush instead of one call
        # per update; a plain callback gets the historical per-update
        # loop, byte-identically.
        offer_many = getattr(deliver, "offer_many", None)
        try:
            while session.persist_queue:
                queued, session.persist_queue = session.persist_queue, []
                if offer_many is not None:
                    offer_many(queued)
                else:
                    for update in queued:
                        deliver(update)
        finally:
            session.draining = False

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def handle(
        self,
        request: SearchRequest,
        control: ReSyncControl,
        deliver: Optional[DeliverFn] = None,
    ) -> SyncResponse:
        """Service one search request carrying a reSync control.

        The four cases of §5.2: (i) null cookie — initial request, whole
        content sent; (ii) cookie — session resumed, accumulated updates
        sent; (iii) mode ``persist`` — connection kept open, *deliver*
        called for each later change; (iv) mode ``poll`` — a resumption
        cookie is returned.  Mode ``sync_end`` terminates the session.

        **Partial-delivery safety** (docs/PROTOCOL.md §9): every
        response is safe to cut anywhere.  Batches order deletes before
        adds (:meth:`Session.drain`), every action is an idempotent
        state-setter, and the cookie travels *after* the update stream —
        so a consumer that applied only a prefix still holds its old
        cookie, retries at generation ``G-1``, and receives the retained
        batch again (:meth:`Session.retransmit`).  Over-delivery is
        harmless; the truncated tail is never silently lost.
        """
        response, _session = self._handle(request, control, deliver)
        return response

    def _handle(
        self,
        request: SearchRequest,
        control: ReSyncControl,
        deliver: Optional[DeliverFn] = None,
    ) -> tuple[SyncResponse, Optional[Session]]:
        if control.mode is SyncMode.SYNC_END:
            if control.cookie is not None:
                self._end_session(control.cookie)
            return SyncResponse(updates=[], cookie=None), None

        event: Optional[dict] = None
        if control.cookie is None:
            # Initial request: the whole current content travels — the
            # expensive full-content rebuild admission control meters.
            if self.admission is not None:
                self.admission.admit()  # may raise ServerBusy
            with span("sync.resync.initial_content") as sp:
                session = self.sessions.create(request)
                self._configure_session(session)
                content = self._search_content(request)
                session.seed_content(content)
                session.drain_csn = self._watermark
                session.prev_drain_csn = self._watermark
                if self.router is not None:
                    self.router.register(session)
                    self.router.seed(session, (e.dn for e in content))
                updates = [SyncUpdate.add(e) for e in content]
                sp.add("entries_sent", len(updates))
            response = SyncResponse(updates=updates, initial=True)
            event = {
                "t": "create",
                "sid": session.session_id,
                "req": request_to_wire(request),
                "content": sorted(str(e.dn) for e in content),
                "csn": self._watermark,
            }
        else:
            # Resumed session: scan the per-session history and emit the
            # coalesced net actions (eq. 2) — or, when the history was
            # abandoned at the cap, an incomplete-history resume (eq. 3).
            if self.admission is not None:
                self.admission.replenish()
            with span("sync.resync.history_scan") as sp:
                session = self.sessions.lookup(control.cookie)
                try:
                    if session.request != request:
                        raise SyncProtocolError(
                            "cookie presented with a different search request"
                        )
                    generation = SessionStore.generation_of(control.cookie)
                    if self._needs_degraded_resume(session, generation):
                        if control.mode is SyncMode.PERSIST:
                            raise SyncProtocolError(
                                "incomplete-history resume requires poll mode"
                            )
                        response, event = self._serve_degraded(session, generation)
                        sp.add("actions_emitted", len(response.updates))
                    else:
                        if generation == session.generation:
                            # The latest cookie acknowledges any pending
                            # degraded resume along with the last batch.
                            session.degraded_since_csn = None
                        gen_before = session.generation
                        updates = self.sessions.service_poll(session, control.cookie)
                        # Both drain and retransmit rebuild the batch at
                        # the current watermark; only a drain retires
                        # the previous one.
                        if session.generation != gen_before:
                            session.prev_drain_csn = session.drain_csn
                        session.drain_csn = self._watermark
                        response = SyncResponse(updates=updates)
                        event = {
                            "t": "poll",
                            "sid": session.session_id,
                            "gen": generation,
                        }
                        sp.add("actions_emitted", len(updates))
                except SyncProtocolError:
                    # The lookup already advanced the activity clock;
                    # replay must advance it identically.
                    self._journal_event({"t": "touch", "sid": session.session_id})
                    raise
            if self.router is not None and session.session_id in self._lazy_router:
                # Lazy re-registration: the recovered session's first
                # poll re-enters the router, seeded from its (possibly
                # just resumed) content mirror.
                self.router.reregister(session, session.content_dns)
                self._lazy_router.discard(session.session_id)

        if control.mode is SyncMode.PERSIST:
            if deliver is None:
                raise SyncProtocolError("persist mode requires a deliver callback")
            session.persist_queue = []
            self._persist_callbacks[session.session_id] = deliver
            response.cookie = None
        else:
            session.persist_queue = None
            self._persist_callbacks.pop(session.session_id, None)
            if not response.uses_retain:
                # A degraded resume already stamped its own ":h" cookie.
                response.cookie = self.sessions.cookie_for(session)
        if event is not None:
            event["persist"] = control.mode is SyncMode.PERSIST
            self._journal_event(event)
        self._maybe_snapshot()
        return response, session

    def persist(
        self,
        request: SearchRequest,
        deliver: DeliverFn,
        cookie: Optional[str] = None,
    ) -> tuple[SyncResponse, PersistHandle]:
        """Open a persist-mode session; returns (initial response, handle)."""
        control = ReSyncControl(mode=SyncMode.PERSIST, cookie=cookie)
        response, session = self._handle(request, control, deliver=deliver)
        assert session is not None
        return response, PersistHandle(self, session)

    # ------------------------------------------------------------------
    # anti-entropy reconciliation (docs/PROTOCOL.md §11)
    # ------------------------------------------------------------------
    def reconcile(
        self, request: SearchRequest, rreq: ReconcileRequest
    ) -> ReconcileResponse:
        """Serve one anti-entropy sketch over the current content.

        The cheap alternative to a full-content rebuild for a consumer
        whose ``:h`` cookie died (docs/RECOVERY.md tier 2): the sketch
        costs O(cells) bytes instead of O(content), and admission
        control does **not** meter it — reconciliation is precisely the
        path that keeps a recovery storm off the rebuild budget.

        A fresh session is minted *at sketch time*, seeded with the
        sketched content, and journaled like any initial poll — so the
        cookie in the response survives a provider crash, and every
        master update between the sketch and the consumer's next poll
        lands in the session's pending history rather than in a
        divergence window.  ``rreq.cookie`` (a previous attempt's
        session, on a doubling retry) is ended first.
        """
        if rreq.cookie is not None:
            self._end_session(rreq.cookie)
        if self.admission is not None:
            self.admission.replenish()
        with span("sync.resync.reconcile_scan") as sp:
            cells = (
                rreq.cells
                if rreq.cells is not None
                else cells_for_divergence(rreq.divergence_hint)
            )
            content = self._search_content(request)
            session = self.sessions.create(request)
            self._configure_session(session)
            session.seed_content(content)
            session.drain_csn = self._watermark
            session.prev_drain_csn = self._watermark
            if self.router is not None:
                self.router.register(session)
                self.router.seed(session, (e.dn for e in content))
            sketch = build_sketch(content, cells, salt=rreq.salt)
            sp.add("entries_sketched", len(content))
        self._reconcile_served.inc()
        self._journal_event(
            {
                "t": "create",
                "sid": session.session_id,
                "req": request_to_wire(request),
                "content": sorted(str(e.dn) for e in content),
                "csn": self._watermark,
                "persist": False,
            }
        )
        self._maybe_snapshot()
        return ReconcileResponse(
            sketch=sketch,
            cookie=self.sessions.cookie_for(session),
            content_count=len(content),
        )

    def reconcile_fetch(
        self, request: SearchRequest, fetch: ReconcileFetch
    ) -> SyncResponse:
        """Resolve decoded master-only keys into full-entry ``add`` PDUs.

        Keys are matched against the *current* content: an entry
        modified since the sketch travels in its newest version (the
        session redelivers the modify — idempotent), one deleted since
        is skipped (the session delivers the delete on the next poll).
        The response cookie resumes the sketch-time session, which from
        here on is an ordinary §4 poll session.
        """
        with span("sync.resync.reconcile_fetch") as sp:
            session = self.sessions.lookup(fetch.cookie)
            try:
                if session.request != request:
                    raise SyncProtocolError(
                        "cookie presented with a different search request"
                    )
                content = self._search_content(request)
                by_key = {entry_key(e.dn): e for e in content}
                wanted = set(fetch.keys)
                updates = [
                    SyncUpdate.add(e)
                    for key, e in by_key.items()
                    if key in wanted
                ]
                sp.add("entries_sent", len(updates))
            finally:
                # The lookup advanced the activity clock; replay must
                # advance it identically (mirrors the poll error path).
                self._journal_event({"t": "touch", "sid": session.session_id})
        self._reconcile_fetches.inc()
        self._maybe_snapshot()
        return SyncResponse(
            updates=updates, cookie=self.sessions.cookie_for(session)
        )

    # ------------------------------------------------------------------
    # failure hooks (docs/PROTOCOL.md §9)
    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Simulate a master crash/restart.

        The DIT survives (it is the server's, not the provider's), but
        every piece of in-memory protocol state dies with the process:
        session histories, unacked batches and persist callbacks.  Every
        outstanding cookie now names an unknown session, so the next
        poll from any consumer raises :class:`SyncProtocolError` and the
        consumer must take §5's reload path (``cookie=None``).  Persist
        streams simply stop; consumers detect the dead connection and
        re-subscribe.
        """
        self.sessions = SessionStore(idle_limit=self.sessions.idle_limit)
        self._persist_callbacks.clear()
        if self.router is not None:
            self.router.reset()
        self._lazy_router.clear()
        self._last_change.clear()
        self._watermark = self.server.current_csn
        self._appends_since_snapshot = 0
        if self.admission is not None:
            self.admission.reset()
        # The journal is the durable store: it survives the crash
        # untouched (modulo injected damage) for recover() to replay.

    def invalidate_cookie(self, cookie: str) -> None:
        """Expire the session named by *cookie* (the admin time limit
        firing early); its next presentation raises
        :class:`SyncProtocolError`."""
        self._end_session(cookie)

    def park_session(self, cookie: str) -> bool:
        """Park the session named by *cookie* at the eq.-3 retain tier
        (quarantine relief, docs/RECOVERY.md §5).

        The per-session history is abandoned *now* — the provider stops
        accumulating update state for a flapping consumer — and the next
        poll is served as an incomplete-history resume
        (:meth:`_serve_degraded`): full entries for what changed since
        the consumer's last drain, DN-only ``retain`` actions for the
        unchanged rest, cookie stamped ``:h``.  Journaled and replayed
        like any other session transition, so a recovered provider
        holds identically-parked state.

        Returns True when the session existed and was parked.  Unknown
        cookies are a counted no-op (``sync.session.unknown_cookie``),
        like :meth:`_end_session` — quarantine is best-effort relief,
        never a new failure mode.  Providers without durability have no
        eq.-3 resume path and refuse (False).
        """
        if self.durability is None:
            return False
        session = self.sessions.get(cookie.split(":", 1)[0])
        if session is None:
            self._unknown_cookie.inc()
            return False
        self._park(session)
        self._journal_event({"t": "park", "sid": session.session_id})
        if not self._replaying:
            self._parked.inc()
        return True

    @staticmethod
    def _park(session: Session) -> None:
        """Fold a park into session state — shared by the live path and
        journal replay."""
        session.history_overflowed = True
        session._pending.clear()
        session.pending_bytes = 0

    def _end_session(self, cookie: str) -> None:
        """Terminate a session and drop its routing registration.

        An unknown or already-ended cookie is a counted no-op
        (``sync.session.unknown_cookie``), not an error: sync_end is
        how consumers *stop caring*, and double delivery of it (a retry
        after a lost ack, an admin expiry racing a voluntary end) must
        not fail the caller."""
        sid = cookie.split(":", 1)[0]
        if not self.sessions.end(cookie):
            self._unknown_cookie.inc()
            return
        self._journal_event({"t": "end", "sid": sid})
        if self.router is not None:
            self.router.unregister(sid)
        self._lazy_router.discard(sid)

    def _end_persist(self, session: Session) -> None:
        self._persist_callbacks.pop(session.session_id, None)
        self._end_session(session.session_id)

    def _search_content(self, request: SearchRequest):
        """Current master content of *request*, in deterministic DN
        order (so truncated initial deliveries are reproducible)."""
        result = self.server.search(request)
        return sorted(result.entries, key=lambda e: str(e.dn))

    @property
    def active_session_count(self) -> int:
        return len(self.sessions)

    def detach(self) -> None:
        """Stop receiving updates from the server (idempotent) — used
        when a recovered provider instance replaces this one."""
        self.server.remove_update_listener(self)

    # ------------------------------------------------------------------
    # durability: journal plumbing (docs/PROTOCOL.md §10)
    # ------------------------------------------------------------------
    def _journal_event(self, event: dict) -> None:
        if self.journal is None or self._replaying:
            return
        self.journal.append(event)
        self._journal_appends.inc()
        self._appends_since_snapshot += 1
        self._journal_bytes.set(self.journal.size_bytes)

    def _maybe_snapshot(self) -> None:
        """Compact once enough has been appended since the last
        snapshot.  Called only *after* a handler finished folding its
        event into provider state — snapshotting mid-fold would truncate
        the journal while the state still excludes the in-flight record,
        losing it."""
        if self.journal is None or self._replaying:
            return
        if self._appends_since_snapshot < self.durability.snapshot_interval:
            return
        self._write_snapshot()

    def _write_snapshot(self) -> None:
        snapshot = {
            "csn": self._watermark,
            "tick": self.sessions.tick,
            "next_id": self.sessions.next_id,
            "last_change": {str(dn): csn for dn, csn in self._last_change.items()},
            "sessions": [
                session_to_wire(s) for s in self.sessions.active_sessions()
            ],
        }
        self.journal.write_snapshot(snapshot)
        self._appends_since_snapshot = 0
        self._snapshots.inc()
        self._journal_bytes.set(self.journal.size_bytes)

    def _note_last_change(self, record: UpdateRecord) -> None:
        """Maintain the per-entry last-change CSN map that backs
        degraded (eq. 3) resumes — same bookkeeping as
        :meth:`RetainResyncProvider.on_update`."""
        if record.op is UpdateOp.DELETE:
            self._last_change.pop(record.dn, None)
            return
        if record.op is UpdateOp.MODIFY_DN:
            self._last_change.pop(record.dn, None)
        self._last_change[record.effective_dn] = record.csn

    def _configure_session(self, session: Session) -> None:
        if self.durability is None:
            return
        session.history_max_entries = self.durability.history_max_entries
        session.history_max_bytes = self.durability.history_max_bytes
        session.overflow_callback = self._on_history_overflow

    def _on_history_overflow(self, session: Session) -> None:
        # Overflow re-occurs deterministically during journal replay;
        # the registry survives the crash, so count it only once.
        if not self._replaying:
            self._overflows.inc()

    # ------------------------------------------------------------------
    # durability: degraded (incomplete-history) resume — eq. 3
    # ------------------------------------------------------------------
    def _needs_degraded_resume(self, session: Session, generation: int) -> bool:
        if self.durability is None:
            return False
        if session.history_overflowed:
            return True
        # An unacknowledged degraded resume retried with the pre-resume
        # cookie (its response was lost) is re-served, not poll-drained:
        # the complete history restarted empty at the resume point, so a
        # retransmit would silently skip the resume delta.
        return (
            session.degraded_since_csn is not None
            and generation == session.generation - 1
        )

    def _serve_degraded(
        self, session: Session, generation: int
    ) -> tuple[SyncResponse, dict]:
        """Serve one incomplete-history resume (eq. 3): full entries for
        everything changed since the consumer's last-known state, a
        DN-only ``retain`` for the unchanged rest; the consumer discards
        whatever is neither.  The cookie is stamped ``:h`` so the
        consumer can tell (and count) the degraded path."""
        if session.history_overflowed:
            first = True
            if generation == session.generation:
                since = session.drain_csn
            elif generation == session.generation - 1:
                since = session.prev_drain_csn
            else:
                raise SyncProtocolError(
                    f"cookie generation {generation} is too old for session "
                    f"{session.session_id}; full reload required"
                )
        else:
            first = False
            since = session.degraded_since_csn
        content = self._search_content(session.request)
        now = self._watermark
        updates: List[SyncUpdate] = []
        for entry in content:
            if self._last_change.get(entry.dn, 0) > since:
                updates.append(SyncUpdate.add(entry))
            else:
                updates.append(SyncUpdate.retain(entry.dn))
        dns = [str(e.dn) for e in content]
        self._apply_resume(session, first, since, dns, now)
        if not self._replaying:
            self._degraded_resumes.inc()
        response = SyncResponse(
            updates=updates,
            cookie=f"{session.session_id}:{session.generation}:h",
            uses_retain=True,
        )
        event = {
            "t": "resume",
            "sid": session.session_id,
            "first": first,
            "since": since,
            "csn": now,
            "content": dns,
        }
        return response, event

    def _apply_resume(
        self, session: Session, first: bool, since: int, dns: List[str], csn: int
    ) -> None:
        """Fold a degraded resume into session state — shared verbatim
        by the live path and journal replay, so both land on identical
        state."""
        session.polls += 1
        session._pending.clear()
        session.pending_bytes = 0
        session._unacked = {}
        session.content_dns = {DN.parse(d) for d in dns}
        session._delivered = set(session.content_dns)
        session.prev_drain_csn = since
        session.drain_csn = csn
        if first:
            session.generation += 1
            session.history_overflowed = False
        session.degraded_since_csn = since

    # ------------------------------------------------------------------
    # durability: crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild session state from the journal after :meth:`restart`.

        Loads the snapshot, replays the journal tail through the same
        fold functions the live path uses, then applies two safety
        rules: (i) persist sessions are dropped — their delivery
        callback died with the process and no cookie was ever issued for
        them, so they are unreachable; (ii) if the replayed watermark
        trails ``server.current_csn``, the journal lost committed
        updates (torn tail / corruption) and *every* recovered session
        would silently miss them — all are dropped (counted
        ``sync.durability.sessions_lost``) so consumers take the honest
        reload path instead of diverging.  Surviving sessions re-enter
        the :class:`SessionRouter` lazily on their first poll.

        Returns the number of journal records replayed.
        """
        if self.journal is None:
            raise RuntimeError("recover() requires a journal backend")
        snapshot, records, dropped = self.journal.load()
        if dropped:
            self._dropped.inc(dropped)
        self.sessions = SessionStore(idle_limit=self.sessions.idle_limit)
        self._persist_callbacks.clear()
        if self.router is not None:
            self.router.reset()
        self._lazy_router.clear()
        self._last_change.clear()
        self._watermark = 0
        self._appends_since_snapshot = 0
        replayed = 0
        self._replaying = True
        try:
            if snapshot is not None:
                self._watermark = snapshot["csn"]
                self.sessions.restore_clock(snapshot["tick"], snapshot["next_id"])
                self._last_change = {
                    DN.parse(d): csn for d, csn in snapshot["last_change"].items()
                }
                for wire in snapshot["sessions"]:
                    session = session_from_wire(wire)
                    self._configure_session(session)
                    self.sessions.adopt(session)
            for record in records:
                self._replay_record(record)
                replayed += 1
        finally:
            self._replaying = False
        self._replayed.inc(replayed)
        for session in self.sessions.active_sessions():
            if session.persist_queue is not None:
                self.sessions.drop(session.session_id)
        if self._watermark < self.server.current_csn:
            lost = len(self.sessions)
            if lost:
                self._sessions_lost.inc(lost)
                for session in self.sessions.active_sessions():
                    self.sessions.drop(session.session_id)
            # The lost window cannot poison future sessions: a new
            # session's resume point is at least its creation watermark,
            # which now covers it.
            self._watermark = self.server.current_csn
            self._last_change.clear()
        if self.router is not None:
            self._lazy_router = {
                s.session_id for s in self.sessions.active_sessions()
            }
        self._write_snapshot()
        if self.admission is not None:
            self.admission.reset()
        self._recoveries.inc()
        return replayed

    def _replay_record(self, rec: dict) -> None:
        """Fold one journal record into provider state, mirroring the
        live handler that wrote it tick-for-tick."""
        kind = rec.get("t")
        if kind == "update":
            record = record_from_wire(rec)
            self._watermark = record.csn
            self._note_last_change(record)
            for session in self.sessions.active_sessions():
                self._apply_to_session(session, record)
        elif kind == "create":
            session = Session(rec["sid"], request_from_wire(rec["req"]))
            self._configure_session(session)
            session.content_dns = {DN.parse(d) for d in rec["content"]}
            session._delivered = set(session.content_dns)
            # A creation (like a resume) attests the directory CSN it was
            # served at — without it a journal holding only session events
            # would look torn-tailed and recovery would shed the sessions.
            self._watermark = max(self._watermark, rec["csn"])
            session.drain_csn = rec["csn"]
            session.prev_drain_csn = rec["csn"]
            session.last_active_tick = self.sessions.tick
            session.persist_queue = [] if rec["persist"] else None
            self.sessions.adopt(session)
        elif kind == "poll":
            session = self.sessions.touch_by_id(rec["sid"])
            if session is None:
                return
            if rec["gen"] == session.generation:
                session.degraded_since_csn = None
            gen_before = session.generation
            try:
                self.sessions.service_poll(session, f"{rec['sid']}:{rec['gen']}")
            except SyncProtocolError:
                return  # state diverged less than the live path did
            if session.generation != gen_before:
                session.prev_drain_csn = session.drain_csn
            session.drain_csn = self._watermark
            session.persist_queue = [] if rec["persist"] else None
        elif kind == "touch":
            self.sessions.touch_by_id(rec["sid"])
        elif kind == "resume":
            session = self.sessions.touch_by_id(rec["sid"])
            if session is None:
                return
            self._watermark = max(self._watermark, rec["csn"])
            self._apply_resume(
                session, rec["first"], rec["since"], rec["content"], rec["csn"]
            )
        elif kind == "park":
            session = self.sessions.get(rec["sid"])
            if session is not None:
                self._park(session)
        elif kind == "end":
            self.sessions.drop(rec["sid"])
        # Unknown kinds (a newer writer) are skipped, not fatal.


class RetainResyncProvider:
    """Incomplete-history ReSync master (eq. 3, ``retain`` actions).

    Keeps no per-session state: the cookie encodes the CSN of the last
    poll, and a per-entry last-change CSN map (maintained from the
    update stream) decides changed vs unchanged.
    """

    COOKIE_PREFIX = "csn"

    def __init__(self, server: DirectoryServer):
        self.server = server
        self._last_change: Dict[DN, int] = {}
        self._unknown_cookie = server.metrics.counter("sync.session.unknown_cookie")
        server.add_update_listener(self)

    def on_update(self, record: UpdateRecord) -> None:
        if record.op is UpdateOp.DELETE:
            self._last_change.pop(record.dn, None)
            return
        if record.op is UpdateOp.MODIFY_DN:
            self._last_change.pop(record.dn, None)
        self._last_change[record.effective_dn] = record.csn

    def handle(self, request: SearchRequest, control: ReSyncControl) -> SyncResponse:
        """Service a poll following eq. (3).

        Persist mode is not meaningful without history; only ``poll``
        and ``sync_end`` are accepted.
        """
        if control.mode is SyncMode.SYNC_END:
            # Stateless provider: sync_end drops nothing, but a cookie
            # this provider never minted is still a counted no-op
            # (mirrors ResyncProvider._end_session).
            if control.cookie is not None:
                try:
                    self._parse_cookie(control.cookie)
                except SyncProtocolError:
                    self._unknown_cookie.inc()
            return SyncResponse(updates=[], cookie=None)
        if control.mode is not SyncMode.POLL:
            raise SyncProtocolError(
                "RetainResyncProvider supports poll mode only"
            )
        # Stateless scan: the whole current content is re-derived and
        # classified changed/unchanged against the cookie CSN (eq. 3).
        with span("sync.resync.retain_scan") as sp:
            since = self._parse_cookie(control.cookie)
            now = self.server.current_csn
            content = self.server.search(request).entries
            updates: List[SyncUpdate] = []
            if control.cookie is None:
                updates.extend(SyncUpdate.add(e) for e in content)
                initial = True
            else:
                for entry in content:
                    changed_at = self._last_change.get(entry.dn, 0)
                    if changed_at > since:
                        updates.append(SyncUpdate.add(entry))
                    else:
                        updates.append(SyncUpdate.retain(entry.dn))
                initial = False
            sp.add("actions_emitted", len(updates))
        return SyncResponse(
            updates=updates,
            cookie=f"{self.COOKIE_PREFIX}:{now}",
            initial=initial,
            uses_retain=not initial,
        )

    def _parse_cookie(self, cookie: Optional[str]) -> int:
        if cookie is None:
            return 0
        prefix, _, csn = cookie.partition(":")
        if prefix != self.COOKIE_PREFIX or not csn.isdigit():
            raise SyncProtocolError(f"malformed cookie {cookie!r}")
        return int(csn)
