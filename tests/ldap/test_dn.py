"""Tests for DN parsing, serialization and ancestry predicates."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import DN, DNParseError, RDN, ROOT_DN


class TestRdn:
    def test_single_valued(self):
        rdn = RDN.single("cn", "John Doe")
        assert rdn.attr == "cn"
        assert rdn.value == "John Doe"
        assert str(rdn) == "cn=John Doe"

    def test_multi_valued_sorted_equality(self):
        a = RDN([("cn", "John"), ("sn", "Doe")])
        b = RDN([("sn", "Doe"), ("cn", "John")])
        assert a == b
        assert hash(a) == hash(b)

    def test_case_insensitive_equality(self):
        assert RDN.single("CN", "John") == RDN.single("cn", "JOHN")

    def test_whitespace_insensitive_value(self):
        assert RDN.single("cn", "John  Doe") == RDN.single("cn", "John Doe")

    def test_empty_value_rejected(self):
        with pytest.raises(DNParseError):
            RDN.single("cn", "")

    def test_empty_attr_rejected(self):
        with pytest.raises(DNParseError):
            RDN.single("", "x")

    def test_no_avas_rejected(self):
        with pytest.raises(DNParseError):
            RDN([])

    def test_ordering_is_consistent(self):
        assert RDN.single("a", "1") < RDN.single("b", "1")

    def test_repr(self):
        assert "cn=x" in repr(RDN.single("cn", "x"))


class TestDnParse:
    def test_basic(self):
        dn = DN.parse("cn=John Doe,ou=research,c=us,o=xyz")
        assert dn.depth() == 4
        assert dn.rdn.value == "John Doe"
        assert str(dn.parent) == "ou=research,c=us,o=xyz"

    def test_empty_is_root(self):
        assert DN.parse("") is ROOT_DN
        assert DN.parse("   ").is_root

    def test_roundtrip(self):
        text = "cn=John Doe,ou=research,c=us,o=xyz"
        assert str(DN.parse(text)) == text

    def test_escaped_comma(self):
        dn = DN.parse(r"cn=Doe\, John,o=xyz")
        assert dn.rdn.value == "Doe, John"
        assert DN.parse(str(dn)) == dn

    def test_escaped_equals(self):
        dn = DN.parse(r"cn=a\=b,o=xyz")
        assert dn.rdn.value == "a=b"

    def test_escaped_plus_in_value(self):
        dn = DN.parse(r"cn=a\+b,o=xyz")
        assert dn.rdn.value == "a+b"
        assert len(dn.rdn.avas) == 1

    def test_multivalued_rdn(self):
        dn = DN.parse("cn=John+sn=Doe,o=xyz")
        assert len(dn.rdn.avas) == 2

    def test_missing_equals_rejected(self):
        with pytest.raises(DNParseError):
            DN.parse("nonsense,o=xyz")

    def test_dangling_escape_rejected(self):
        with pytest.raises(DNParseError):
            DN.parse("cn=x\\")

    def test_leading_trailing_space_escapes(self):
        dn = DN((RDN.single("cn", " padded "),))
        assert DN.parse(str(dn)) == dn


class TestDnStructure:
    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            _ = ROOT_DN.parent

    def test_root_has_no_rdn(self):
        with pytest.raises(ValueError):
            _ = ROOT_DN.rdn

    def test_child(self):
        dn = DN.parse("o=xyz").child("c=us")
        assert str(dn) == "c=us,o=xyz"

    def test_child_with_rdn_object(self):
        dn = DN.parse("o=xyz").child(RDN.single("c", "us"))
        assert str(dn) == "c=us,o=xyz"

    def test_ancestors(self):
        dn = DN.parse("cn=a,c=us,o=xyz")
        chain = [str(d) for d in dn.ancestors()]
        assert chain == ["c=us,o=xyz", "o=xyz", ""]

    def test_ancestors_include_self(self):
        dn = DN.parse("c=us,o=xyz")
        assert list(dn.ancestors(include_self=True))[0] == dn

    def test_iteration_and_len(self):
        dn = DN.parse("cn=a,o=xyz")
        assert len(dn) == 2
        assert [r.attr for r in dn] == ["cn", "o"]


class TestSuffixPredicates:
    def test_is_suffix_of(self):
        ancestor = DN.parse("o=xyz")
        descendant = DN.parse("cn=a,c=us,o=xyz")
        assert ancestor.is_suffix_of(descendant)
        assert not descendant.is_suffix_of(ancestor)

    def test_not_suffix_of_self(self):
        dn = DN.parse("o=xyz")
        assert not dn.is_suffix_of(dn)
        assert dn.is_ancestor_or_self(dn)

    def test_root_is_suffix_of_everything(self):
        assert ROOT_DN.is_suffix_of(DN.parse("o=xyz"))
        assert not ROOT_DN.is_suffix_of(ROOT_DN)

    def test_case_insensitive_suffix(self):
        assert DN.parse("O=XYZ").is_suffix_of(DN.parse("c=us,o=xyz"))

    def test_sibling_not_suffix(self):
        assert not DN.parse("c=us,o=xyz").is_suffix_of(DN.parse("c=in,o=xyz"))

    def test_lookalike_value_not_suffix(self):
        # "...,o=xyzzy" does not end with the RDN o=xyz
        assert not DN.parse("o=xyz").is_suffix_of(DN.parse("c=us,o=xyzzy"))

    def test_is_parent_of(self):
        parent = DN.parse("c=us,o=xyz")
        child = DN.parse("cn=a,c=us,o=xyz")
        assert parent.is_parent_of(child)
        assert not parent.is_parent_of(DN.parse("cn=a,cn=b,c=us,o=xyz"))
        assert not parent.is_parent_of(parent)

    def test_relative_to(self):
        dn = DN.parse("cn=a,ou=r,o=xyz")
        rdns = dn.relative_to(DN.parse("o=xyz"))
        assert [str(r) for r in rdns] == ["cn=a", "ou=r"]

    def test_relative_to_rejects_non_ancestor(self):
        with pytest.raises(ValueError):
            DN.parse("cn=a,o=xyz").relative_to(DN.parse("c=us,o=xyz"))

    def test_rename(self):
        dn = DN.parse("cn=a,ou=r,o=xyz")
        moved = dn.rename(DN.parse("ou=r,o=xyz"), DN.parse("ou=s,o=abc"))
        assert str(moved) == "cn=a,ou=s,o=abc"


class TestDnEquality:
    def test_equal_ignoring_case_and_space(self):
        assert DN.parse("CN=John  Doe,O=XYZ") == DN.parse("cn=john doe,o=xyz")

    def test_hashable(self):
        assert len({DN.parse("o=xyz"), DN.parse("O=XYZ")}) == 1

    def test_ordering_groups_siblings(self):
        a = DN.parse("cn=a,o=xyz")
        b = DN.parse("cn=b,o=xyz")
        assert a < b
        assert a <= a

    def test_not_equal_other_types(self):
        assert DN.parse("o=xyz") != "o=xyz"


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
_attr = st.sampled_from(["cn", "ou", "o", "c", "uid", "l"])
_value = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=8,
)
_rdns = st.lists(
    st.tuples(_attr, _value).map(lambda t: RDN.single(*t)), min_size=0, max_size=5
)


@given(_rdns)
def test_parse_str_roundtrip(rdns):
    dn = DN(rdns)
    assert DN.parse(str(dn)) == dn


@given(_rdns, _rdns)
def test_concatenation_makes_suffix(prefix, suffix):
    base = DN(suffix)
    full = DN(tuple(prefix) + tuple(suffix))
    assert base.is_ancestor_or_self(full)
    if prefix:
        assert base.is_suffix_of(full)


@given(_rdns, _rdns, _rdns)
def test_suffix_transitive(a, b, c):
    d1 = DN(c)
    d2 = DN(tuple(b) + tuple(c))
    d3 = DN(tuple(a) + tuple(b) + tuple(c))
    if d1.is_suffix_of(d2) and d2.is_suffix_of(d3):
        assert d1.is_suffix_of(d3)
