"""E9 — Figure 9: hit ratio vs number of stored filters, mail query.

Paper §7.2(c): the local part of ``<user>@<cc>.xyz.com`` is **not
organized** (unlike serialNumber), so "filter based caching can not
describe the access patterns efficiently for this case".  The only
possible generalization — the domain suffix — yields country-sized
filters: its hit ratio per replicated entry is several times worse than
the serialNumber block filters of Figure 8, and its smallest unit is a
whole country.  Cached user queries still capture temporal locality,
exactly as in Figure 8.
"""

from __future__ import annotations

import pytest

from repro.ldap import Scope, SearchRequest
from repro.workload import QueryType

from .common import BenchEnv, block_filter, hot_blocks, report, run_filter_point


@pytest.fixture(scope="module")
def fig9_rows(env: BenchEnv):
    eval_trace = env.day(2).of_type(QueryType.MAIL)
    rows = []

    # Curve 1: cached user queries only — temporal locality still works.
    for window in (25, 50, 100, 200, 400):
        result, _replica = run_filter_point(env, [], eval_trace, cache_capacity=window)
        rows.append(("user queries", window, result.hit_ratio, result.replica_entries))

    # Curve 2: generalized mail filters — the domain suffix is the only
    # component generalization available, and it is country-sized.
    domain_hits = {}
    for record in env.day(1).of_type(QueryType.MAIL):
        value = str(record.request.filter)[len("(mail=") : -1]
        domain = value.split("@", 1)[1]
        domain_hits[domain] = domain_hits.get(domain, 0) + 1
    ranked_domains = sorted(domain_hits, key=domain_hits.get, reverse=True)

    for k in (1, 2, 5, 10):
        filters = [
            SearchRequest("", Scope.SUB, f"(mail=*@{domain})")
            for domain in ranked_domains[:k]
        ]
        result, _replica = run_filter_point(env, filters, eval_trace)
        rows.append(("generalized", k, result.hit_ratio, result.replica_entries))

    # Curve 3: both.
    for k in (1, 5):
        filters = [
            SearchRequest("", Scope.SUB, f"(mail=*@{domain})")
            for domain in ranked_domains[:k]
        ]
        result, _replica = run_filter_point(env, filters, eval_trace, cache_capacity=50)
        rows.append(("both", k + 50, result.hit_ratio, result.replica_entries))
    return rows


@pytest.fixture(scope="module")
def serial_reference(env: BenchEnv):
    """Figure 8's generalized head (25 block filters) — the comparable
    hit-ratio point for the per-entry efficiency contrast."""
    eval_trace = env.day(2).of_type(QueryType.SERIAL)
    filters = [block_filter(b, cc) for b, cc, _h in hot_blocks(env)[:25]]
    result, _replica = run_filter_point(env, filters, eval_trace)
    return result


def test_fig9_hit_ratio_vs_filter_count_mail(
    benchmark, env: BenchEnv, fig9_rows, serial_reference
):
    cached = {n: hit for c, n, hit, _e in fig9_rows if c == "user queries"}
    generalized = [
        (n, hit, entries) for c, n, hit, entries in fig9_rows if c == "generalized"
    ]
    report(
        "fig9",
        "Hit ratio vs # stored filters — mail query (unorganized local part)",
        ["curve", "filters", "hit ratio", "entries"],
        fig9_rows,
        params={"query_type": "mail", "curves": "cached,generalized,both"},
        metrics={
            "cached50_hit": cached.get(50, 0.0),
            "generalized_best_hit": max((h for _n, h, _e in generalized), default=0.0),
            "generalized_min_entries": min(
                (e for _n, _h, e in generalized if e), default=0
            ),
        },
        paper_expected={
            "shape": "mail generalizations are country-sized and inefficient"
        },
    )

    # Temporal locality is query-type independent: the cached curve
    # behaves like Figure 8's (≈0.2 at 50 queries, then saturating).
    assert 0.10 <= cached[50] <= 0.32
    assert cached[400] - cached[100] < 0.10

    # Paper shape (a): the smallest generalized mail unit is a whole
    # country — orders of magnitude larger than a serialNumber block.
    single_domain_entries = min(e for _n, _hit, e in generalized if e)
    serial_unit = serial_reference.replica_entries / 25  # avg block size
    assert single_domain_entries > 10 * serial_unit, (
        "mail generalization units must be country-sized"
    )

    # Paper shape (b): hit ratio per replicated entry is substantially
    # worse than Figure 8's serialNumber block filters at a comparable
    # hit-ratio level — the local part carries no exploitable structure.
    serial_density = serial_reference.hit_ratio / serial_reference.replica_entries
    for _n, hit, entries in generalized:
        if entries:
            assert hit / entries < serial_density / 1.5, (
                "mail filters must be far less efficient per entry"
            )

    # Timed unit: cache lookup path for a mail query with a warm window.
    from repro.core import FilterReplica
    from repro.server import SimulatedNetwork

    master = env.fresh_master()
    replica = FilterReplica("bench", network=SimulatedNetwork(), cache_capacity=50)
    for record in env.day(1).of_type(QueryType.MAIL)[:50]:
        replica.observe_miss(record.request, master.search(record.request).entries)
    sample = env.day(2).of_type(QueryType.MAIL)[0].request
    benchmark(lambda: replica.answer(sample))
