"""Tests for per-filter consistency levels (§3.2)."""

import pytest

from repro.core import FilterReplica
from repro.ldap import DN, Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider


@pytest.fixture()
def master() -> DirectoryServer:
    m = DirectoryServer("master")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for name, dept in (("A", "1"), ("B", "2")):
        m.add(
            Entry(
                f"cn={name},o=xyz",
                {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
            )
        )
    return m


FAST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=1)")
SLOW = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=2)")


class TestSyncIntervals:
    def test_default_polls_every_round(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r")
        replica.add_filter(FAST, provider)
        master.modify("cn=A,o=xyz", [Modification.replace("title", "x")])
        replica.sync(provider)
        entry = replica.stored_filters()[0].content.entries[DN.parse("cn=A,o=xyz")]
        assert entry.first("title") == "x"

    def test_slow_filter_skips_rounds(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r")
        replica.add_filter(FAST, provider, sync_interval=1)
        replica.add_filter(SLOW, provider, sync_interval=3)
        master.modify("cn=A,o=xyz", [Modification.replace("title", "fast")])
        master.modify("cn=B,o=xyz", [Modification.replace("title", "slow")])

        replica.sync(provider)  # round 1: only FAST due
        fast_entry = replica._stored[FAST].content.entries[DN.parse("cn=A,o=xyz")]
        slow_entry = replica._stored[SLOW].content.entries[DN.parse("cn=B,o=xyz")]
        assert fast_entry.first("title") == "fast"
        assert slow_entry.first("title") is None  # still stale

        replica.sync(provider)  # round 2: SLOW still not due
        slow_entry = replica._stored[SLOW].content.entries[DN.parse("cn=B,o=xyz")]
        assert slow_entry.first("title") is None

        replica.sync(provider)  # round 3: SLOW due
        slow_entry = replica._stored[SLOW].content.entries[DN.parse("cn=B,o=xyz")]
        assert slow_entry.first("title") == "slow"

    def test_invalid_interval_rejected(self, master):
        replica = FilterReplica("r")
        with pytest.raises(ValueError):
            replica.add_filter(FAST, sync_interval=0)

    def test_slow_filter_still_converges_eventually(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r")
        replica.add_filter(SLOW, provider, sync_interval=2)
        master.modify("cn=B,o=xyz", [Modification.replace("departmentNumber", "9")])
        replica.sync(provider)
        replica.sync(provider)
        assert replica._stored[SLOW].content.matches_master(master)

    def test_traffic_reduction(self, master):
        """Longer intervals mean fewer polls — less update traffic
        (the flexibility argument of §3.2)."""
        from repro.server import SimulatedNetwork

        def run(interval: int) -> int:
            m = DirectoryServer("m")
            m.add_naming_context("o=xyz")
            m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
            m.add(
                Entry(
                    "cn=B,o=xyz",
                    {"objectClass": ["person"], "cn": "B", "sn": "T", "departmentNumber": "2"},
                )
            )
            provider = ResyncProvider(m)
            net = SimulatedNetwork()
            replica = FilterReplica("r", network=net)
            replica.add_filter(SLOW, provider, sync_interval=interval)
            net.stats.reset()
            for i in range(12):
                m.modify("cn=B,o=xyz", [Modification.replace("title", f"t{i}")])
                replica.sync(provider)
            return net.stats.round_trips

        assert run(4) < run(1)
