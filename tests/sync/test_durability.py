"""Provider durability: journaling, recovery, history caps, admission.

Covers docs/PROTOCOL.md §10 — the write-ahead journal backends and
their damage tolerance, `ResyncProvider.recover()` rebuilding sessions
so cookies stay honorable across crashes, bounded histories degrading
to incomplete-history (eq. 3) resumes, resync-storm admission control,
and the satellite bugfixes (two-phase session expiry, counted
unknown-cookie no-ops).
"""

from __future__ import annotations

import pytest

from repro.ldap.controls import ReSyncControl, SyncMode
from repro.ldap.entry import Entry
from repro.ldap.query import Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.server.faults import FaultyNetwork
from repro.server.network import ServerBusy
from repro.server.operations import UpdateOp, UpdateRecord
from repro.sync import (
    AdmissionController,
    DurabilityConfig,
    FileJournal,
    MemoryJournal,
    ResilientConsumer,
    ResyncProvider,
    RetainResyncProvider,
    SyncedContent,
    SyncProtocolError,
    SyncUpdate,
)
from repro.sync.durability import (
    record_from_wire,
    record_to_wire,
    request_from_wire,
    request_to_wire,
    session_from_wire,
    session_to_wire,
    update_from_wire,
    update_to_wire,
)
from repro.sync.session import Session
from repro.obs.registry import MetricsRegistry

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)")


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


def build_master(n: int = 6) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"P{i}"))
    return master


def durable_provider(master, journal=None, **cfg) -> ResyncProvider:
    journal = journal if journal is not None else MemoryJournal()
    return ResyncProvider(
        master, durability=DurabilityConfig(**cfg), journal=journal
    )


# ----------------------------------------------------------------------
# wire serialization round trips
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_request_round_trip(self):
        req = SearchRequest("c=us,o=xyz", Scope.ONE, "(sn=T)", ["cn", "sn"])
        assert request_from_wire(request_to_wire(req)) == req

    def test_request_round_trip_all_attributes(self):
        assert request_from_wire(request_to_wire(REQUEST)) == REQUEST

    def test_update_round_trip(self):
        for update in (
            SyncUpdate.add(person("A")),
            SyncUpdate.modify(person("B")),
            SyncUpdate.delete(person("C").dn),
            SyncUpdate.retain(person("D").dn),
        ):
            back = update_from_wire(update_to_wire(update))
            assert back.action == update.action
            assert back.dn == update.dn
            assert (back.entry is None) == (update.entry is None)
            if update.entry is not None:
                assert back.entry == update.entry

    def test_record_round_trip(self):
        before, after = person("A"), person("A", dept="99")
        record = UpdateRecord(
            csn=7, op=UpdateOp.MODIFY, dn=before.dn, before=before, after=after
        )
        back = record_from_wire(record_to_wire(record))
        assert back.csn == 7 and back.op is UpdateOp.MODIFY
        assert back.dn == record.dn and back.effective_dn == record.effective_dn
        assert back.after == after

    def test_session_round_trip(self):
        session = Session("s9", REQUEST)
        session.seed_content([person("A"), person("B")])
        session.observe(
            in_before=True,
            in_after=True,
            old_dn=person("A").dn,
            new_dn=person("A").dn,
            after_entry=person("A", dept="99"),
        )
        session.generation = 3
        session.polls = 5
        session.drain_csn = 11
        session.prev_drain_csn = 9
        back = session_from_wire(session_to_wire(session))
        assert back.session_id == "s9" and back.request == REQUEST
        assert back.content_dns == session.content_dns
        assert back.generation == 3 and back.polls == 5
        assert back.pending_count == session.pending_count
        assert back.pending_bytes == session.pending_bytes
        assert (back.drain_csn, back.prev_drain_csn) == (11, 9)
        # A second trip is byte-stable (the wire format is canonical).
        assert session_to_wire(back) == session_to_wire(session)


# ----------------------------------------------------------------------
# journal backends
# ----------------------------------------------------------------------
class TestJournalBackends:
    @pytest.fixture(params=["memory", "file"])
    def journal(self, request, tmp_path):
        if request.param == "memory":
            return MemoryJournal()
        return FileJournal(str(tmp_path / "journal"))

    def test_append_load_round_trip(self, journal):
        events = [{"t": "update", "csn": i} for i in range(5)]
        for event in events:
            journal.append(event)
        snapshot, records, dropped = journal.load()
        assert snapshot is None and records == events and dropped == 0
        assert journal.record_count == 5
        assert journal.size_bytes > 0

    def test_snapshot_truncates_journal(self, journal):
        journal.append({"t": "update", "csn": 1})
        journal.write_snapshot({"csn": 1, "sessions": []})
        journal.append({"t": "update", "csn": 2})
        snapshot, records, dropped = journal.load()
        assert snapshot == {"csn": 1, "sessions": []}
        assert records == [{"t": "update", "csn": 2}] and dropped == 0

    def test_truncation_drops_tail(self, journal):
        for i in range(10):
            journal.append({"t": "update", "csn": i})
        journal.damage_truncate(0.5)
        snapshot, records, dropped = journal.load()
        assert [r["csn"] for r in records] == [0, 1, 2, 3, 4]
        assert dropped == 0  # a clean tear, nothing unreadable

    def test_corruption_ends_readable_stream(self, journal):
        for i in range(10):
            journal.append({"t": "update", "csn": i})
        journal.damage_corrupt(0.5)
        snapshot, records, dropped = journal.load()
        assert [r["csn"] for r in records] == [0, 1, 2, 3, 4]
        assert dropped == 5  # the damaged record and everything after

    def test_corrupt_snapshot_voids_everything(self, journal):
        journal.write_snapshot({"csn": 3, "sessions": []})
        journal.damage_corrupt(0.0)  # journal empty -> snapshot corrupted
        journal.append({"t": "update", "csn": 4})
        snapshot, records, dropped = journal.load()
        assert snapshot is None and records == [] and dropped == 2

    def test_file_journal_survives_reopen(self, tmp_path):
        path = str(tmp_path / "j")
        journal = FileJournal(path)
        journal.append({"t": "update", "csn": 1})
        journal.write_snapshot({"csn": 1})
        journal.append({"t": "update", "csn": 2})
        journal.close()
        reopened = FileJournal(path)
        snapshot, records, dropped = reopened.load()
        assert snapshot == {"csn": 1}
        assert records == [{"t": "update", "csn": 2}] and dropped == 0


class TestDurabilityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DurabilityConfig(snapshot_interval=0)
        with pytest.raises(ValueError):
            DurabilityConfig(history_max_entries=0)
        with pytest.raises(ValueError):
            DurabilityConfig(admission_burst=0)
        with pytest.raises(ValueError):
            DurabilityConfig(admission_refill=0.0)

    def test_journal_implies_default_config(self):
        provider = ResyncProvider(build_master(), journal=MemoryJournal())
        assert provider.durability == DurabilityConfig()


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_recover_without_journal_raises(self):
        provider = ResyncProvider(build_master())
        with pytest.raises(RuntimeError):
            provider.recover()

    def test_cookie_survives_crash_with_incremental_delta(self):
        master = build_master()
        provider = durable_provider(master)
        content = SyncedContent(REQUEST)
        initial = content.poll(provider)
        assert len(initial.updates) == 6

        master.modify("cn=P1,o=xyz", [Modification.replace("sn", "S")])
        provider.restart()
        provider.recover()

        delta = content.poll(provider)  # the pre-crash cookie still works
        assert [str(u.dn) for u in delta.updates] == ["cn=P1,o=xyz"]
        assert content.matches_master(master)
        assert master.metrics.counter("sync.durability.recoveries").value == 1

    def test_unchanged_master_resumes_with_empty_delta(self):
        master = build_master()
        provider = durable_provider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        provider.restart()
        provider.recover()
        assert content.poll(provider).updates == []

    def test_snapshot_compaction_path(self):
        master = build_master()
        provider = durable_provider(master, snapshot_interval=3)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(6):
            master.modify("cn=P0,o=xyz", [Modification.replace("sn", f"S{i}")])
            content.poll(provider)
        assert master.metrics.counter("sync.durability.snapshots").value >= 2
        master.delete("cn=P5,o=xyz")
        provider.restart()
        provider.recover()
        content.poll(provider)
        assert content.matches_master(master)

    def test_multiple_sessions_and_mid_life_crash(self):
        master = build_master()
        provider = durable_provider(master)
        requests = [
            SearchRequest("o=xyz", Scope.SUB, f"(cn=P{i})") for i in range(4)
        ]
        consumers = [SyncedContent(r) for r in requests]
        for consumer in consumers:
            consumer.poll(provider)
        master.modify("cn=P2,o=xyz", [Modification.replace("sn", "X")])
        consumers[0].poll(provider)  # different generations across sessions
        provider.restart()
        assert provider.active_session_count == 0
        provider.recover()
        assert provider.active_session_count == 4
        for consumer in consumers:
            consumer.poll(provider)
            assert consumer.matches_master(master)

    def test_persist_sessions_are_dropped_on_recovery(self):
        master = build_master()
        provider = durable_provider(master)
        received = []
        response, handle = provider.persist(REQUEST, received.append)
        assert provider.active_session_count == 1
        provider.restart()
        provider.recover()
        # No cookie was ever issued for the persist session; it cannot
        # be resumed and must not linger.
        assert provider.active_session_count == 0

    def test_torn_tail_drops_sessions_instead_of_diverging(self):
        master = build_master()
        journal = MemoryJournal()
        provider = durable_provider(master, journal=journal)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        master.modify("cn=P1,o=xyz", [Modification.replace("sn", "S")])
        # The crash tears off the committed update's journal record
        # (keeping the session-create record before it).
        journal.damage_truncate(0.5)
        provider.restart()
        provider.recover()
        assert provider.active_session_count == 0
        assert master.metrics.counter("sync.durability.sessions_lost").value >= 1
        # The consumer's next poll is refused; the reload path converges.
        with pytest.raises(SyncProtocolError):
            content.poll(provider)
        content.cookie = None
        content.poll(provider)
        assert content.matches_master(master)

    def test_corrupted_journal_is_counted_and_safe(self):
        master = build_master()
        journal = MemoryJournal()
        provider = durable_provider(master, journal=journal)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        master.modify("cn=P1,o=xyz", [Modification.replace("sn", "S")])
        journal.damage_corrupt(0.9)
        provider.restart()
        provider.recover()
        assert master.metrics.counter("sync.durability.dropped_records").value >= 1
        content.cookie = None  # reload regardless of what survived
        content.poll(provider)
        assert content.matches_master(master)

    def test_unknown_journal_record_kinds_are_skipped(self):
        master = build_master()
        journal = MemoryJournal()
        provider = durable_provider(master, journal=journal)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        journal.append({"t": "future-kind", "payload": 1})
        provider.restart()
        provider.recover()
        content.poll(provider)
        assert content.matches_master(master)

    def test_lazy_router_reregistration(self):
        master = build_master()
        provider = durable_provider(master)
        assert provider.router is not None
        content = SyncedContent(REQUEST)
        content.poll(provider)
        provider.restart()
        provider.recover()
        sid = next(iter(provider.sessions.active_sessions())).session_id
        assert sid in provider._lazy_router
        # Updates before the first poll still reach the session (linear
        # fallback)...
        master.add(person("P9"))
        # ...and the first poll re-enters the router.
        content.poll(provider)
        assert sid not in provider._lazy_router
        assert provider.router._sessions.get(sid) is not None
        master.add(person("P10"))
        content.poll(provider)
        assert content.matches_master(master)

    def test_file_journal_recovery_across_provider_instances(self, tmp_path):
        master = build_master()
        journal = FileJournal(str(tmp_path / "journal"))
        provider = ResyncProvider(master, journal=journal)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        master.modify("cn=P3,o=xyz", [Modification.replace("sn", "Z")])
        provider.detach()
        provider.detach()  # idempotent
        journal.close()
        # A brand-new provider instance on the same directory.
        recovered = ResyncProvider(
            master, journal=FileJournal(str(tmp_path / "journal"))
        )
        recovered.recover()
        delta = content.poll(recovered)
        assert [str(u.dn) for u in delta.updates] == ["cn=P3,o=xyz"]
        assert content.matches_master(master)

    def test_network_crash_recovers_durable_provider(self):
        master = build_master()
        provider = durable_provider(master)
        net = FaultyNetwork()
        consumer = ResilientConsumer(REQUEST, provider, network=net, seed=1)
        consumer.sync_once()
        master.modify("cn=P0,o=xyz", [Modification.replace("sn", "Q")])
        net.crash(provider)  # restart + journal recovery in one step
        assert provider.active_session_count == 1
        assert consumer.converge(master) is not None


# ----------------------------------------------------------------------
# bounded histories -> degraded (eq. 3) resume
# ----------------------------------------------------------------------
class TestHistoryCap:
    def test_overflow_degrades_and_converges(self):
        master = build_master()
        provider = durable_provider(master, history_max_entries=2)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(5):
            master.modify(f"cn=P{i},o=xyz", [Modification.replace("sn", f"S{i}")])
        response = content.poll(provider)
        assert response.uses_retain  # eq.-3 resume, not a history drain
        assert response.cookie.endswith(":h")  # degraded stamp
        assert content.matches_master(master)
        assert master.metrics.counter("sync.durability.history_overflow").value == 1
        assert master.metrics.counter("sync.durability.degraded_resumes").value == 1

    def test_next_poll_after_degraded_resume_is_complete_history_again(self):
        master = build_master()
        provider = durable_provider(master, history_max_entries=2)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(5):
            master.modify(f"cn=P{i},o=xyz", [Modification.replace("sn", f"S{i}")])
        content.poll(provider)  # degraded resume
        master.delete("cn=P4,o=xyz")
        response = content.poll(provider)
        assert not response.uses_retain
        assert [str(u.dn) for u in response.updates] == ["cn=P4,o=xyz"]
        assert content.matches_master(master)

    def test_byte_cap_also_degrades(self):
        master = build_master()
        provider = durable_provider(master, history_max_bytes=100)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(4):
            master.modify(f"cn=P{i},o=xyz", [Modification.replace("sn", f"S{i}")])
        response = content.poll(provider)
        assert response.uses_retain
        assert content.matches_master(master)

    def test_lost_degraded_response_is_reserved_on_retry(self):
        master = build_master()
        provider = durable_provider(master, history_max_entries=2)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        old_cookie = content.cookie
        for i in range(5):
            master.modify(f"cn=P{i},o=xyz", [Modification.replace("sn", f"S{i}")])
        first = provider.handle(
            REQUEST, ReSyncControl(mode=SyncMode.POLL, cookie=old_cookie)
        )
        assert first.uses_retain
        # The response is lost: the consumer retries with its old cookie
        # and must get an equivalent degraded resume, not a (now empty)
        # complete-history drain that would strand the stale entries.
        retry = provider.handle(
            REQUEST, ReSyncControl(mode=SyncMode.POLL, cookie=old_cookie)
        )
        assert retry.uses_retain
        content.apply(retry)
        content.cookie = retry.cookie
        assert content.matches_master(master)
        assert master.metrics.counter("sync.durability.degraded_resumes").value == 2

    def test_degraded_resume_refused_in_persist_mode(self):
        master = build_master()
        provider = durable_provider(master, history_max_entries=1)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(4):
            master.modify(f"cn=P{i},o=xyz", [Modification.replace("sn", f"S{i}")])
        with pytest.raises(SyncProtocolError):
            provider.persist(REQUEST, lambda u: None, cookie=content.cookie)

    def test_overflow_survives_crash_recovery(self):
        master = build_master()
        provider = durable_provider(master, history_max_entries=2)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        for i in range(5):
            master.modify(f"cn=P{i},o=xyz", [Modification.replace("sn", f"S{i}")])
        provider.restart()
        provider.recover()
        session = provider.sessions.active_sessions()[0]
        assert session.history_overflowed  # replay re-derived the overflow
        response = content.poll(provider)
        assert response.uses_retain
        assert content.matches_master(master)

    def test_no_unbounded_growth_in_soak(self):
        """A session never polled again must not grow beyond its cap."""
        master = build_master(12)
        provider = durable_provider(master, history_max_entries=8)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        session = provider.sessions.active_sessions()[0]
        for step in range(500):
            master.modify(
                f"cn=P{step % 12},o=xyz", [Modification.replace("sn", f"S{step}")]
            )
            assert session.pending_count <= 8
            assert session.pending_bytes == 0 or not session.history_overflowed
        assert session.history_overflowed
        assert session.pending_count == 0 and session.pending_bytes == 0
        content.poll(provider)
        assert content.matches_master(master)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_token_bucket_admits_then_rejects(self):
        controller = AdmissionController(2, 0.25, 40.0, MetricsRegistry())
        controller.admit()
        controller.admit()
        with pytest.raises(ServerBusy) as excinfo:
            controller.admit()
        assert excinfo.value.retry_after_ms == 40.0
        assert excinfo.value.fault == "busy"

    def test_logical_refill_eventually_readmits(self):
        controller = AdmissionController(1, 0.5, 40.0, MetricsRegistry())
        controller.admit()
        with pytest.raises(ServerBusy):
            controller.admit()
        controller.replenish()  # two serviced requests -> one token
        controller.admit()

    def test_reset_refills_to_burst(self):
        controller = AdmissionController(1, 0.1, 40.0, MetricsRegistry())
        controller.admit()
        controller.reset()
        controller.admit()

    def test_provider_rejects_storm_but_serves_resumes(self):
        master = build_master()
        provider = durable_provider(master, admission_burst=1, admission_refill=0.25)
        first = SyncedContent(REQUEST)
        first.poll(provider)
        second = SyncedContent(REQUEST)
        with pytest.raises(ServerBusy):
            second.poll(provider)
        # Resumes are never refused -- only full-content rebuilds are.
        first.poll(provider)
        assert master.metrics.counter("sync.admission.rejected").value == 1

    def test_resilient_consumer_backs_off_and_gets_in(self):
        master = build_master()
        provider = durable_provider(
            master, admission_burst=1, admission_refill=0.5,
            admission_retry_after_ms=123.0,
        )
        net = FaultyNetwork()
        consumers = [
            ResilientConsumer(REQUEST, provider, network=net, seed=i)
            for i in range(4)
        ]
        for consumer in consumers:
            assert consumer.sync_once() is not None
            assert consumer.content.matches_master(master)
        registry = master.metrics
        assert registry.counter("sync.admission.rejected").value > 0
        # The busy hint floors the backoff: at least one rejected retry
        # waited >= retry_after_ms on the simulated clock.
        assert net.registry.gauge("sync.resilient.backoff_ms").value >= 123.0

    def test_post_recovery_storm_is_paced(self):
        master = build_master()
        journal = MemoryJournal()
        provider = durable_provider(
            master, journal=journal, admission_burst=2, admission_refill=0.5
        )
        net = FaultyNetwork()
        consumers = [
            ResilientConsumer(REQUEST, provider, network=net, seed=i)
            for i in range(5)
        ]
        for consumer in consumers:
            consumer.sync_once()
        # Tear the whole journal: recovery drops every session, so all
        # five consumers need simultaneous full rebuilds -- the storm.
        journal.damage_truncate(0.0)
        journal.damage_corrupt(0.0)
        provider.restart()
        provider.recover()
        for consumer in consumers:
            assert consumer.converge(master) is not None
        assert master.metrics.counter("sync.admission.rejected").value > 0


# ----------------------------------------------------------------------
# satellite bugfixes
# ----------------------------------------------------------------------
class TestUnknownCookieNoOp:
    def test_end_unknown_cookie_is_counted(self):
        master = build_master()
        provider = ResyncProvider(master)
        provider.handle(REQUEST, ReSyncControl(mode=SyncMode.SYNC_END, cookie="s99:0"))
        assert master.metrics.counter("sync.session.unknown_cookie").value == 1

    def test_double_end_is_counted_not_raised(self):
        master = build_master()
        provider = ResyncProvider(master)
        content = SyncedContent(REQUEST)
        content.poll(provider)
        cookie = content.cookie
        provider.invalidate_cookie(cookie)
        provider.invalidate_cookie(cookie)  # already gone: counted no-op
        assert master.metrics.counter("sync.session.unknown_cookie").value == 1

    def test_durable_provider_counts_too(self):
        master = build_master()
        provider = durable_provider(master)
        provider.invalidate_cookie("s5:1")
        assert master.metrics.counter("sync.session.unknown_cookie").value == 1
        # Nothing was journaled for the no-op: recovery is unaffected.
        provider.restart()
        provider.recover()
        assert provider.active_session_count == 0

    def test_retain_provider_counts_malformed_end(self):
        master = build_master()
        provider = RetainResyncProvider(master)
        provider.handle(
            REQUEST, ReSyncControl(mode=SyncMode.SYNC_END, cookie="bogus")
        )
        assert master.metrics.counter("sync.session.unknown_cookie").value == 1
        provider.handle(
            REQUEST, ReSyncControl(mode=SyncMode.SYNC_END, cookie="csn:3")
        )
        assert master.metrics.counter("sync.session.unknown_cookie").value == 1


class TestExpiryMidDelivery:
    def test_expire_during_persist_delivery_is_safe(self):
        """Session expiry fired by a poll *inside* a persist delivery
        must neither corrupt the store nor expire the draining session
        (the two-phase `_expire` regression)."""
        master = build_master()
        provider = ResyncProvider(master, idle_limit=3)
        poller = SyncedContent(SearchRequest("o=xyz", Scope.SUB, "(cn=P1)"))

        delivered = []

        def deliver(update):
            delivered.append(update)
            # Re-enter the session store mid-delivery: this poll ticks
            # the activity clock far enough to expire the persist
            # session that is currently draining.
            for _ in range(4):
                poller.poll(provider)

        response, handle = provider.persist(REQUEST, deliver)
        persist_sid = [
            s.session_id
            for s in provider.sessions.active_sessions()
            if s.persist_queue is not None
        ][0]
        master.add(person("P7"))  # triggers delivery -> reentrant polls
        assert delivered
        # The draining session survived the reentrant expiry sweep...
        assert provider.sessions.get(persist_sid) is not None
        # ...and keeps receiving notifications afterwards.
        before = len(delivered)
        master.add(person("P8"))
        assert len(delivered) > before

    def test_idle_sessions_still_expire(self):
        master = build_master()
        provider = ResyncProvider(master, idle_limit=2)
        stale = SyncedContent(SearchRequest("o=xyz", Scope.SUB, "(cn=P0)"))
        stale.poll(provider)
        busy = SyncedContent(REQUEST)
        busy.poll(provider)
        for _ in range(4):
            busy.poll(provider)
        assert provider.active_session_count == 1
        with pytest.raises(SyncProtocolError):
            stale.poll(provider)
