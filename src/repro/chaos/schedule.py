"""Composable, seed-replayable fault schedules.

The fault primitives live in :mod:`repro.server.faults` and each is
individually deterministic; what the robustness benches lacked was a
way to *sequence and overlap* them over a long horizon — "a 30-minute
partition starting at t=45min, message-level noise from t=60min to
t=120min, a provider crash in the middle, a slow node for the last
hour" — as one declarative, replayable object.  A
:class:`FaultSchedule` is that object:

* windows are declared in **absolute virtual time** and armed onto a
  :class:`~repro.server.scheduler.DeterministicScheduler` with
  :meth:`~repro.server.scheduler.DeterministicScheduler.call_at`, so
  every boundary fires at an exact virtual-clock stamp;
* **noise** windows carry a :class:`~repro.server.faults.FaultSpec`;
  overlapping noise windows combine field-wise (per-field maximum) into
  the plan's live spec.  The schedule drives *one*
  :class:`~repro.server.faults.FaultPlan` for the whole run and swaps
  its ``spec`` in place at window boundaries — the plan's per-stream
  decision indices keep counting across windows, so the entire run
  replays from ``(schedule, seed)`` alone;
* **partition**, **slow** and **crash** windows call the network's
  explicit primitives (:meth:`FaultyNetwork.partition` /
  :meth:`set_slow` / :meth:`crash`), with per-server depth tracking so
  overlapping windows nest correctly (the last heal wins, the largest
  active slowdown applies).

Armed transitions are counted under ``chaos.windows`` (a
``kind``-labeled counter) and the live overlap under
``chaos.active_windows`` in the network's registry
(docs/OBSERVABILITY.md §2), so a soak report can show the schedule it
actually executed.

One schedule object is immutable once built and can be armed onto any
number of independent runs (the replay workflow: build once, arm
twice, compare run fingerprints).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from ..server.faults import FaultPlan, FaultSpec, FaultyNetwork
from ..server.scheduler import DeterministicScheduler

__all__ = ["FaultWindow", "FaultSchedule", "combine_specs"]

_KINDS = ("noise", "partition", "slow", "crash")

#: A spec with every probability at zero — what the plan runs between
#: noise windows (streams keep drawing indices, decisions all miss).
IDLE_SPEC = FaultSpec()


def combine_specs(specs: List[FaultSpec]) -> FaultSpec:
    """Field-wise maximum of overlapping noise specs.

    Probabilities combine as "the worst active window wins" — max, not
    sum, so stacking two 0.6-drop windows cannot manufacture an invalid
    1.2 probability — and the window/length fields (``crash_length``,
    ``max_delay_ms``, …) take the largest active value too.
    """
    if not specs:
        return IDLE_SPEC
    merged = {}
    for f in fields(FaultSpec):
        merged[f.name] = max(getattr(spec, f.name) for spec in specs)
    return FaultSpec(**merged)


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault condition over ``[start_ms, end_ms)``.

    ``kind`` is one of ``noise`` (plan-driven message faults from
    ``spec``), ``partition`` (reachability cut), ``slow`` (sustained
    ``latency_ms`` surcharge) or ``crash`` (a point event at
    ``start_ms``; ``end_ms`` is ignored — the restart window is the
    spec's ``crash_length``).
    """

    kind: str
    start_ms: float
    end_ms: float
    spec: Optional[FaultSpec] = None
    latency_ms: float = 0.0
    label: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.start_ms < 0:
            raise ValueError("start_ms must be >= 0")
        if self.kind != "crash" and self.end_ms < self.start_ms:
            raise ValueError("end_ms must be >= start_ms")
        if self.kind == "noise" and self.spec is None:
            raise ValueError("a noise window needs a FaultSpec")
        if self.kind == "slow" and self.latency_ms <= 0:
            raise ValueError("a slow window needs latency_ms > 0")

    def overlaps(self, other: "FaultWindow") -> bool:
        """True when the two windows share any virtual time (a crash is
        a point event at its start)."""
        a0, a1 = self.start_ms, self._effective_end
        b0, b1 = other.start_ms, other._effective_end
        return a0 <= b1 and b0 <= a1

    @property
    def _effective_end(self) -> float:
        return self.start_ms if self.kind == "crash" else self.end_ms


class FaultSchedule:
    """A composed sequence of :class:`FaultWindow` s, armed as one
    continuous :class:`FaultPlan`.

    Builder methods return ``self`` so schedules read as one chain::

        schedule = (
            FaultSchedule(seed=42)
            .noise(0, 600_000, FaultSpec.uniform(0.1), label="background")
            .partition(120_000, 300_000)
            .crash(420_000)
            .slow(480_000, 600_000, latency_ms=80.0)
        )
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._windows: List[FaultWindow] = []

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    @classmethod
    def canonical(cls, seed: int, horizon_ms: float) -> "FaultSchedule":
        """The acceptance-soak schedule, scaled to *horizon_ms*: nine
        windows — background message noise spanning the run, two
        partitions, two slow-node windows, two noise bursts and two
        provider crashes — with the overlaps the soak invariants are
        meant to survive (used by ``repro-ldap soak`` and
        ``benchmarks/bench_soak.py``)."""
        h = float(horizon_ms)
        return (
            cls(seed=seed)
            .noise(
                0.05 * h,
                0.95 * h,
                FaultSpec.uniform(0.08),
                label="background",
            )
            .partition(0.15 * h, 0.25 * h, label="partition-1")
            .slow(0.20 * h, 0.40 * h, latency_ms=60.0, label="slow-1")
            .crash(0.30 * h, label="crash-1")
            .noise(
                0.35 * h,
                0.45 * h,
                FaultSpec(drop_request=0.3, drop_response=0.3),
                label="drop-burst",
            )
            .partition(0.55 * h, 0.62 * h, label="partition-2")
            .noise(
                0.60 * h,
                0.70 * h,
                FaultSpec(truncate=0.35, duplicate=0.2),
                label="truncate-burst",
            )
            .slow(0.75 * h, 0.85 * h, latency_ms=120.0, label="slow-2")
            .crash(0.80 * h, label="crash-2")
        )

    def add(self, window: FaultWindow) -> "FaultSchedule":
        self._windows.append(window)
        return self

    def noise(
        self, start_ms: float, end_ms: float, spec: FaultSpec, label: str = "noise"
    ) -> "FaultSchedule":
        return self.add(FaultWindow("noise", start_ms, end_ms, spec=spec, label=label))

    def partition(
        self, start_ms: float, end_ms: float, label: str = "partition"
    ) -> "FaultSchedule":
        return self.add(FaultWindow("partition", start_ms, end_ms, label=label))

    def slow(
        self,
        start_ms: float,
        end_ms: float,
        latency_ms: float,
        label: str = "slow",
    ) -> "FaultSchedule":
        return self.add(
            FaultWindow("slow", start_ms, end_ms, latency_ms=latency_ms, label=label)
        )

    def crash(self, at_ms: float, label: str = "crash") -> "FaultSchedule":
        return self.add(FaultWindow("crash", at_ms, at_ms, label=label))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def windows(self) -> Tuple[FaultWindow, ...]:
        """The windows in deterministic (start, end, kind) order."""
        return tuple(
            sorted(
                self._windows,
                key=lambda w: (w.start_ms, w._effective_end, w.kind, w.label),
            )
        )

    @property
    def horizon_ms(self) -> float:
        """Virtual time at which the last window has ended."""
        return max((w._effective_end for w in self._windows), default=0.0)

    def overlap_count(self) -> int:
        """Number of window pairs that share virtual time — the
        "overlapping fault windows" figure a soak report quotes."""
        ws = self.windows
        return sum(
            1
            for i in range(len(ws))
            for j in range(i + 1, len(ws))
            if ws[i].overlaps(ws[j])
        )

    def describe(self) -> List[dict]:
        """Plain-data rows (for reports and the bench JSON)."""
        return [
            {
                "kind": w.kind,
                "label": w.label or w.kind,
                "start_ms": w.start_ms,
                "end_ms": w._effective_end,
            }
            for w in self.windows
        ]

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(
        self,
        network: FaultyNetwork,
        provider,
        scheduler: Optional[DeterministicScheduler] = None,
    ) -> None:
        """Attach this schedule to one run.

        Installs a fresh idle-spec :class:`FaultPlan` seeded with the
        schedule's seed (unless the network already carries a plan — a
        pre-seeded plan is kept and only its spec is driven), then
        schedules every window boundary on the scheduler's virtual
        clock.  Per-arm state lives in a private closure, so the same
        schedule object can be armed onto any number of runs.
        """
        sched = scheduler if scheduler is not None else network.scheduler
        if network.plan is None:
            network.plan = FaultPlan(IDLE_SPEC, seed=self.seed)
        windows_counter = network.registry.counter("chaos.windows")
        active_gauge = network.registry.gauge("chaos.active_windows")

        active_noise: List[FaultSpec] = []
        partition_depth: Dict[str, int] = {}
        slow_stack: List[float] = []
        live = {"count": 0}

        def adjust(delta: int) -> None:
            live["count"] += delta
            active_gauge.set(live["count"])

        def recompute_noise() -> None:
            network.plan.spec = combine_specs(active_noise)

        def recompute_slow() -> None:
            if slow_stack:
                network.set_slow(provider, max(slow_stack))
            else:
                network.clear_slow(provider)

        key = network._server_key(provider)

        def start(window: FaultWindow) -> None:
            windows_counter.inc()
            windows_counter.labels(kind=window.kind).inc()
            adjust(+1)
            if window.kind == "noise":
                active_noise.append(window.spec)
                recompute_noise()
            elif window.kind == "partition":
                partition_depth[key] = partition_depth.get(key, 0) + 1
                network.partition(provider)
            elif window.kind == "slow":
                slow_stack.append(window.latency_ms)
                recompute_slow()
            elif window.kind == "crash":
                network.crash(provider)
                adjust(-1)  # a point event: over as soon as it fired

        def end(window: FaultWindow) -> None:
            adjust(-1)
            if window.kind == "noise":
                active_noise.remove(window.spec)
                recompute_noise()
            elif window.kind == "partition":
                depth = partition_depth.get(key, 1) - 1
                if depth <= 0:
                    partition_depth.pop(key, None)
                    network.heal_partition(provider)
                else:
                    partition_depth[key] = depth
            elif window.kind == "slow":
                slow_stack.remove(window.latency_ms)
                recompute_slow()

        for window in self.windows:
            if window.kind != "crash" and window._effective_end <= window.start_ms:
                continue  # zero-length: a no-op (and same-stamp event
                #           order is seeded-random, so arming one could
                #           run its end before its start)
            sched.call_at(window.start_ms, start, window)
            if window.kind != "crash":
                sched.call_at(window._effective_end, end, window)
