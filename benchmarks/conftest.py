"""Session-scoped benchmark environment (built once for every bench)."""

from __future__ import annotations

import pytest

from .common import BenchEnv, build_env


def pytest_addoption(parser):
    parser.addoption(
        "--provider-crash",
        action="store_true",
        default=False,
        help="also run the provider-crash cells of bench_fault_convergence "
        "(durable provider, journal damage, mid-schedule recovery) and "
        "export their crash_* metrics",
    )


@pytest.fixture(scope="session")
def provider_crash(request) -> bool:
    """Whether the E12 provider-crash cells were requested."""
    return bool(request.config.getoption("--provider-crash"))


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    """Directory + two-day Table 1 trace shared by all benches."""
    return build_env()
