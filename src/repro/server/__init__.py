"""Directory server substrate: backends, servers, partitioning, network.

Simulated LDAP servers implementing the functional model of §2.2 and
the distributed directory model of §2.3, joined by a message-counting
network so experiments can measure round trips and transferred entries.
"""

from .backend import EntryStore
from .client import ChasedResult, LdapClient, ReferralLimitExceeded
from .connection import (
    BindState,
    Connection,
    ConnectionError_,
    PendingOp,
    RequestPipeline,
    connect,
)
from .directory import DirectoryServer, NamingContext, UpdateListener
from .faults import ExchangeFaults, FaultPlan, FaultSpec, FaultyNetwork
from .network import (
    Delivery,
    NetworkPartitioned,
    OperationTimeout,
    RequestDropped,
    ResponseDropped,
    ResponseTruncated,
    ServerBusy,
    ServerUnavailable,
    SimulatedNetwork,
    TrafficStats,
    TransportError,
)
from .operations import (
    LdapError,
    Modification,
    ModType,
    Referral,
    ResultCode,
    SearchResult,
    UpdateOp,
    UpdateRecord,
)
from .partition import DistributedDirectory, make_referral_entry
from .planner import SearchPlan, SearchPlanner
from .scheduler import DeterministicScheduler, ScheduledEvent

__all__ = [
    "EntryStore",
    "SearchPlan",
    "SearchPlanner",
    "Connection",
    "BindState",
    "ConnectionError_",
    "PendingOp",
    "RequestPipeline",
    "connect",
    "DeterministicScheduler",
    "ScheduledEvent",
    "DirectoryServer",
    "NamingContext",
    "UpdateListener",
    "LdapClient",
    "ChasedResult",
    "ReferralLimitExceeded",
    "SimulatedNetwork",
    "TrafficStats",
    "Delivery",
    "TransportError",
    "RequestDropped",
    "ResponseDropped",
    "ResponseTruncated",
    "ServerUnavailable",
    "NetworkPartitioned",
    "OperationTimeout",
    "ServerBusy",
    "FaultSpec",
    "FaultPlan",
    "ExchangeFaults",
    "FaultyNetwork",
    "DistributedDirectory",
    "make_referral_entry",
    "LdapError",
    "ResultCode",
    "Modification",
    "ModType",
    "UpdateOp",
    "UpdateRecord",
    "Referral",
    "SearchResult",
]
