"""Sliding-window cache of recent user queries (§7.4).

Besides replicating generalized filters, it is advantageous to store
recently performed user queries: they capture *temporal* locality.
Cached queries are "simply cached for a short time window and not
updated" — the window is a FIFO of the last N queries with their result
entries, answered through the same containment machinery as stored
filters, and results may be slightly stale by design.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filters import attributes_of
from ..ldap.query import SearchRequest
from .containment import query_contained_in

__all__ = ["CachedQuery", "RecentQueryCache"]


@dataclass
class CachedQuery:
    """One cached user query and its (frozen) result entries."""

    request: SearchRequest
    entries: Dict[DN, Entry]
    filter_attrs: frozenset = frozenset()
    """Attributes of the cached filter — a cheap containment prescreen:
    our sound checker can only prove ``q ⊆ qs`` when every attribute
    *qs* constrains is also constrained by *q*."""


class RecentQueryCache:
    """Window of the last *capacity* user queries.

    The paper caches "recently performed user queries … for a short time
    window" — a FIFO of arrivals.  The ``lru`` policy is the classical
    alternative (hits refresh a query's position), exposed for the
    replacement-policy ablation; FIFO remains the paper-faithful
    default.

    Queries identical to an already-cached one refresh its result but do
    not consume an extra slot.
    """

    POLICIES = ("fifo", "lru")

    def __init__(self, capacity: int = 50, policy: str = "fifo"):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {self.POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._window: "OrderedDict[SearchRequest, CachedQuery]" = OrderedDict()
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._window)

    def insert(self, request: SearchRequest, entries: Sequence[Entry]) -> None:
        """Cache *request* with its result, evicting the oldest entry."""
        if self.capacity == 0:
            return
        if request in self._window:
            self._window.move_to_end(request)
        self._window[request] = CachedQuery(
            request=request,
            entries={e.dn: e.copy() for e in entries},
            filter_attrs=attributes_of(request.filter),
        )
        while len(self._window) > self.capacity:
            self._window.popitem(last=False)

    def lookup(self, request: SearchRequest) -> Optional[Tuple[List[Entry], str]]:
        """Answer *request* from a containing cached query, if any.

        Returns (entries, cache key) on a hit, None on a miss.  Newest
        cached queries are consulted first (temporal locality).
        """
        self.lookups += 1
        request_attrs = attributes_of(request.filter)
        for cached in reversed(self._window.values()):
            if not cached.filter_attrs <= request_attrs:
                continue
            if query_contained_in(request, cached.request):
                self.hits += 1
                answer = [
                    request.project(entry)
                    for entry in cached.entries.values()
                    if request.selects(entry)
                ]
                if self.policy == "lru":
                    self._window.move_to_end(cached.request)
                return answer, str(cached.request)
        return None

    def entry_count(self) -> int:
        """Unique entries held in the window (counts toward replica size)."""
        dns: Set[DN] = set()
        for cached in self._window.values():
            dns.update(cached.entries)
        return len(dns)

    def stored_queries(self) -> List[SearchRequest]:
        """Cached requests, oldest first."""
        return list(self._window.keys())

    def clear(self) -> None:
        self._window.clear()
