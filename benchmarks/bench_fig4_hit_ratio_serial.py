"""E4 — Figure 4: hit ratio vs replica size, serialNumber query.

Paper: for ``(serialNumber=_)`` lookups, the filter based model reaches
**hit ratio 0.5 with a replica smaller than 10% of the person entries**,
while a subtree based replica — unable to selectively replicate
employees from a country's flat namespace (§3.3) — needs whole-country
replicas and trails at every size.

Method: day 1 ranks site blocks (filter model) and countries (subtree
model) by access count — the static benefit/size selection of §6.2 —
and day 2's serialNumber queries are evaluated.  Subtree replicas are
given the scoped (country-based) query variants, their most favourable
interpretation (§3.1.1); filter replicas answer the faithful null-based
queries.
"""

from __future__ import annotations

import pytest

from repro.workload import QueryType

from .common import (
    BenchEnv,
    block_filter,
    hot_blocks,
    hot_countries,
    report,
    run_filter_point,
    run_subtree_point,
)


@pytest.fixture(scope="module")
def fig4_rows(env: BenchEnv):
    eval_trace = env.day(2).of_type(QueryType.SERIAL)
    blocks = hot_blocks(env)
    rows = []

    for k in (5, 10, 20, 25, 40, 80, 160):
        filters = [block_filter(b, cc) for b, cc, _hits in blocks[:k]]
        result, replica = run_filter_point(env, filters, eval_trace)
        rows.append(
            (
                "filter",
                k,
                result.replica_entries,
                result.replica_entries / env.person_entries,
                result.hit_ratio,
            )
        )

    countries = [cc for cc, _hits in hot_countries(env)]
    for k in (1, 2, 4, len(countries)):
        result, replica = run_subtree_point(env, countries[:k], eval_trace)
        rows.append(
            (
                "subtree",
                k,
                result.replica_entries,
                result.replica_entries / env.person_entries,
                result.hit_ratio,
            )
        )
    return rows


def test_fig4_hit_ratio_vs_replica_size(benchmark, env: BenchEnv, fig4_rows):
    filter_rows = [r for r in fig4_rows if r[0] == "filter"]
    subtree_rows = [r for r in fig4_rows if r[0] == "subtree"]
    best_small = max(
        (hit for (_m, _k, _e, frac, hit) in filter_rows if frac < 0.10),
        default=0.0,
    )
    report(
        "fig4",
        "Hit ratio vs replica size — serialNumber query (filter vs subtree)",
        ["model", "units", "entries", "size frac", "hit ratio"],
        fig4_rows,
        params={"query_type": "serialNumber", "sweep_filters": "5..160"},
        metrics={
            "filter_best_hit_under_10pct": best_small,
            "filter_points": len(filter_rows),
            "subtree_points": len(subtree_rows),
        },
        paper_expected={"filter_best_hit_under_10pct": 0.5},
    )

    # Paper anchor: hit ratio ≈0.5 below 10% of the person entries.
    assert any(
        frac < 0.10 and hit >= 0.45 for (_m, _k, _e, frac, hit) in filter_rows
    ), "filter model must reach ~0.5 hit ratio under 10% replica size"

    # Shape: for every *partial* subtree replica, some filter replica of
    # equal-or-smaller size matches or beats it (a full replica trivially
    # hits 1.0 and is excluded).
    for _m, _k, _e, sfrac, shit in subtree_rows:
        if sfrac >= 0.95:
            continue
        dominating = [
            hit
            for (_m2, _k2, _e2, ffrac, hit) in filter_rows
            if ffrac <= sfrac + 0.05  # nearest sweep point within 5pp
        ]
        if dominating:
            assert max(dominating) >= shit - 0.02, (
                "filter replicas must match/beat subtree replicas at equal size"
            )

    # Monotonicity: more replicated blocks → no lower hit ratio.
    hits = [hit for *_rest, hit in filter_rows]
    assert all(b >= a - 0.01 for a, b in zip(hits, hits[1:]))

    # Timed unit: one small filter-replica evaluation pass.
    blocks = hot_blocks(env)[:10]
    eval_trace = env.day(2).of_type(QueryType.SERIAL)[:500]
    benchmark(
        lambda: run_filter_point(
            env, [block_filter(b, cc) for b, cc, _h in blocks], eval_trace
        )
    )
