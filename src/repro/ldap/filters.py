"""LDAP search filter abstract syntax.

Filters are boolean combinations of predicates over entry attributes,
written in the parenthesized prefix notation of RFC 2254::

    (&(sn=Doe)(givenName=John))
    (|(departmentNumber=2406)(departmentNumber=2407))
    (!(objectClass=referral))
    (serialNumber=04*)            ; substring
    (age>=30)                     ; ordering
    (cn=*)                        ; presence

The paper (§2.2) considers predicates ``(name op value)`` with
``op ∈ {=, >=, <=}`` plus substring and presence assertions; filters with
no NOT operator are *positive* filters, the class for which Propositions
2 and 3 give tractable containment.

The AST here is immutable (frozen dataclasses) so filters can be hashed,
deduplicated and used as dictionary keys in replica metadata.  Structure
only — evaluation lives in :mod:`repro.ldap.matching` and containment in
:mod:`repro.core.filter_containment`.

Every node renders back to RFC 2254 text via ``str()`` and to the paper's
*template* notation (assertion values replaced by ``_``, §3.4.2) via
:func:`template_of`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Tuple

__all__ = [
    "Filter",
    "Predicate",
    "Present",
    "Equality",
    "GreaterOrEqual",
    "LessOrEqual",
    "Approx",
    "Substring",
    "And",
    "Or",
    "Not",
    "MATCH_ALL",
    "escape_assertion_value",
    "template_of",
    "simplify",
    "to_nnf",
    "to_dnf",
    "conjuncts",
    "disjuncts",
    "iter_predicates",
    "attributes_of",
    "is_positive",
]

# Characters escaped in assertion values (RFC 2254 §4).
_ESCAPE_MAP = {"*": r"\2a", "(": r"\28", ")": r"\29", "\\": r"\5c", "\0": r"\00"}


def escape_assertion_value(value: str) -> str:
    """Escape ``* ( ) \\`` in an assertion value for serialization."""
    return "".join(_ESCAPE_MAP.get(ch, ch) for ch in value)


class Filter:
    """Base class for all filter nodes."""

    __slots__ = ()

    def __and__(self, other: "Filter") -> "And":
        return And((self, other))

    def __or__(self, other: "Filter") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


class Predicate(Filter):
    """Base class for leaf predicates (one attribute, one assertion)."""

    __slots__ = ()

    attr: str

    @property
    def attr_key(self) -> str:
        """Case-folded attribute name for comparisons."""
        return self.attr.lower()


@dataclass(frozen=True)
class Present(Predicate):
    """Presence assertion ``(attr=*)``.

    ``(objectClass=*)`` matches every entry (every entry has at least one
    object class) and is how a subtree specification is expressed as a
    query (§3, "Note that a query specification can be reduced...").
    """

    attr: str

    def __str__(self) -> str:
        return f"({self.attr}=*)"


@dataclass(frozen=True)
class Equality(Predicate):
    """Equality assertion ``(attr=value)``."""

    attr: str
    value: str

    def __str__(self) -> str:
        return f"({self.attr}={escape_assertion_value(self.value)})"


@dataclass(frozen=True)
class GreaterOrEqual(Predicate):
    """Ordering assertion ``(attr>=value)`` — the paper's ``(a ≥ v)``."""

    attr: str
    value: str

    def __str__(self) -> str:
        return f"({self.attr}>={escape_assertion_value(self.value)})"


@dataclass(frozen=True)
class LessOrEqual(Predicate):
    """Ordering assertion ``(attr<=value)`` — the paper's ``(a ≤ v)``."""

    attr: str
    value: str

    def __str__(self) -> str:
        return f"({self.attr}<={escape_assertion_value(self.value)})"


@dataclass(frozen=True)
class Approx(Predicate):
    """Approximate-match assertion ``(attr~=value)``.

    Not used by the paper's algorithms; matched as case-insensitive
    equality so that workloads containing ``~=`` still evaluate.
    """

    attr: str
    value: str

    def __str__(self) -> str:
        return f"({self.attr}~={escape_assertion_value(self.value)})"


@dataclass(frozen=True)
class Substring(Predicate):
    """Substring assertion ``(attr=initial*any1*any2*final)``.

    Any of *initial*, *any_parts*, *final* may be empty/absent, but at
    least one component must be non-empty (otherwise the assertion is a
    presence test and must be written :class:`Present`).

    The paper interprets substring assertions as range assertions on the
    ordered value space (§4.1, "extended for substring assertions by
    interpreting substrings as range assertions"); that interpretation
    lives in :mod:`repro.core.filter_containment`.
    """

    attr: str
    initial: str = ""
    any_parts: Tuple[str, ...] = ()
    final: str = ""

    def __post_init__(self):
        if not self.initial and not self.final and not any(self.any_parts):
            raise ValueError(
                "substring assertion needs at least one non-empty component; "
                "use Present for (attr=*)"
            )

    @property
    def components(self) -> Tuple[str, ...]:
        """All components in order: initial, any parts, final."""
        return (self.initial,) + tuple(self.any_parts) + (self.final,)

    def pattern(self) -> str:
        """The assertion's pattern text, e.g. ``smi*th*`` for (sn=smi*th*)."""
        parts = [escape_assertion_value(self.initial)]
        parts.extend(escape_assertion_value(p) for p in self.any_parts)
        parts.append(escape_assertion_value(self.final))
        return "*".join(parts)

    def __str__(self) -> str:
        return f"({self.attr}={self.pattern()})"


@dataclass(frozen=True)
class And(Filter):
    """Conjunction ``(&(f1)(f2)...)``."""

    children: Tuple[Filter, ...]

    def __post_init__(self):
        object.__setattr__(self, "children", tuple(self.children))
        if not self.children:
            raise ValueError("And requires at least one child filter")

    def __str__(self) -> str:
        return "(&" + "".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Filter):
    """Disjunction ``(|(f1)(f2)...)``."""

    children: Tuple[Filter, ...]

    def __post_init__(self):
        object.__setattr__(self, "children", tuple(self.children))
        if not self.children:
            raise ValueError("Or requires at least one child filter")

    def __str__(self) -> str:
        return "(|" + "".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(Filter):
    """Negation ``(!(f))``."""

    child: Filter

    def __str__(self) -> str:
        return f"(!{self.child})"


MATCH_ALL = Present("objectClass")
"""The filter ``(objectClass=*)`` matching every entry (§2.2)."""


# ----------------------------------------------------------------------
# structural helpers
# ----------------------------------------------------------------------
def iter_predicates(node: Filter) -> Iterator[Predicate]:
    """Yield every leaf predicate of *node*, left to right."""
    stack: List[Filter] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Predicate):
            yield current
        elif isinstance(current, Not):
            stack.append(current.child)
        elif isinstance(current, (And, Or)):
            stack.extend(reversed(current.children))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown filter node {current!r}")


def attributes_of(node: Filter) -> FrozenSet[str]:
    """Case-folded attribute names mentioned anywhere in *node*."""
    return frozenset(p.attr_key for p in iter_predicates(node))


def is_positive(node: Filter) -> bool:
    """True when *node* contains no NOT operator (§2.2 positive filters)."""
    stack: List[Filter] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Not):
            return False
        if isinstance(current, (And, Or)):
            stack.extend(current.children)
    return True


def simplify(node: Filter) -> Filter:
    """Flatten nested AND/OR, dedupe children and unwrap singletons.

    ``(&(a=1))`` becomes ``(a=1)``; ``(&(&(a=1)(b=2))(c=3))`` becomes
    ``(&(a=1)(b=2)(c=3))``.  Double negation cancels.  The result is
    semantically equivalent to the input.
    """
    if isinstance(node, Predicate):
        return node
    if isinstance(node, Not):
        inner = simplify(node.child)
        if isinstance(inner, Not):
            return inner.child
        return Not(inner)
    if isinstance(node, (And, Or)):
        kind = type(node)
        flat: List[Filter] = []
        seen = set()
        for child in node.children:
            child = simplify(child)
            grandchildren = child.children if isinstance(child, kind) else (child,)
            for gc in grandchildren:
                if gc not in seen:
                    seen.add(gc)
                    flat.append(gc)
        if len(flat) == 1:
            return flat[0]
        return kind(tuple(flat))
    raise TypeError(f"unknown filter node {node!r}")  # pragma: no cover


def to_nnf(node: Filter, negate: bool = False) -> Filter:
    """Negation normal form: NOTs pushed down to the leaves.

    Leaf negations are kept as ``Not(predicate)`` — LDAP has no negated
    predicate forms, and the containment machinery treats ``Not(leaf)``
    as a literal.
    """
    if isinstance(node, Not):
        return to_nnf(node.child, not negate)
    if isinstance(node, And):
        kind = Or if negate else And
        return kind(tuple(to_nnf(c, negate) for c in node.children))
    if isinstance(node, Or):
        kind = And if negate else Or
        return kind(tuple(to_nnf(c, negate) for c in node.children))
    if isinstance(node, Predicate):
        return Not(node) if negate else node
    raise TypeError(f"unknown filter node {node!r}")  # pragma: no cover


def to_dnf(node: Filter, max_terms: int = 4096) -> Tuple[Tuple[Filter, ...], ...]:
    """Disjunctive normal form as a tuple of conjunctions of literals.

    Each inner tuple is one conjunct ``Bi`` of Proposition 1's
    ``F1 ∧ ¬F2 = B1 ∨ B2 ∨ … ∨ Bk``.  Literals are predicates or
    ``Not(predicate)``.

    Raises :class:`OverflowError` when expansion would exceed *max_terms*
    conjunctions — DNF is exponential in the worst case, which is exactly
    why the paper's template-based containment (§3.4.2) exists.
    """
    nnf = to_nnf(simplify(node))

    def expand(n: Filter) -> Tuple[Tuple[Filter, ...], ...]:
        if isinstance(n, Predicate) or isinstance(n, Not):
            return ((n,),)
        if isinstance(n, Or):
            terms: List[Tuple[Filter, ...]] = []
            for child in n.children:
                terms.extend(expand(child))
                if len(terms) > max_terms:
                    raise OverflowError("DNF expansion exceeds max_terms")
            return tuple(terms)
        if isinstance(n, And):
            product: List[Tuple[Filter, ...]] = [()]
            for child in n.children:
                child_terms = expand(child)
                product = [
                    existing + new for existing in product for new in child_terms
                ]
                if len(product) > max_terms:
                    raise OverflowError("DNF expansion exceeds max_terms")
            return tuple(product)
        raise TypeError(f"unknown filter node {n!r}")  # pragma: no cover

    return expand(nnf)


def conjuncts(node: Filter) -> Tuple[Filter, ...]:
    """Top-level conjuncts of *node* (the node itself when not an AND)."""
    simplified = simplify(node)
    if isinstance(simplified, And):
        return simplified.children
    return (simplified,)


def disjuncts(node: Filter) -> Tuple[Filter, ...]:
    """Top-level disjuncts of *node* (the node itself when not an OR)."""
    simplified = simplify(node)
    if isinstance(simplified, Or):
        return simplified.children
    return (simplified,)


# ----------------------------------------------------------------------
# templates (§3.4.2)
# ----------------------------------------------------------------------
def template_of(node: Filter) -> str:
    """The paper's template string for *node*: values replaced by ``_``.

    Substring assertions keep their *shape* — ``(serialNumber=04*56)``
    has template ``(serialNumber=_*_)`` and ``(sn=smith*)`` has template
    ``(sn=_*)`` — because containment behaviour differs per shape.
    AND/OR children are sorted so that semantically identical filters
    written in different orders share a template.
    """
    if isinstance(node, Present):
        return f"({node.attr.lower()}=*)"
    if isinstance(node, Equality):
        return f"({node.attr.lower()}=_)"
    if isinstance(node, GreaterOrEqual):
        return f"({node.attr.lower()}>=_)"
    if isinstance(node, LessOrEqual):
        return f"({node.attr.lower()}<=_)"
    if isinstance(node, Approx):
        return f"({node.attr.lower()}~=_)"
    if isinstance(node, Substring):
        shape = "*".join(
            "_" if component else "" for component in node.components
        )
        return f"({node.attr.lower()}={shape})"
    if isinstance(node, Not):
        return f"(!{template_of(node.child)})"
    if isinstance(node, And):
        return "(&" + "".join(sorted(template_of(c) for c in node.children)) + ")"
    if isinstance(node, Or):
        return "(|" + "".join(sorted(template_of(c) for c in node.children)) + ")"
    raise TypeError(f"unknown filter node {node!r}")  # pragma: no cover
