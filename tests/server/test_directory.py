"""Tests for the DirectoryServer: search semantics and update operations."""

import pytest

from repro.ldap import DN, Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    LdapError,
    Modification,
    ResultCode,
    UpdateOp,
    make_referral_entry,
)


def person(dn: str, **attrs) -> Entry:
    base = {"objectClass": ["person", "top"], "sn": "T"}
    base.update(attrs)
    if "cn" not in base:
        base["cn"] = dn.split(",")[0].split("=")[1]
    return Entry(dn, base)


@pytest.fixture()
def server() -> DirectoryServer:
    s = DirectoryServer("hostA")
    s.add_naming_context("o=xyz")
    s.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    s.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    s.add(person("cn=Fred,c=us,o=xyz"))
    s.add(person("cn=Ginger,c=us,o=xyz", departmentNumber="42"))
    return s


class TestNamingContexts:
    def test_context_for(self, server):
        ctx = server.context_for(DN.parse("cn=Fred,c=us,o=xyz"))
        assert ctx is not None and str(ctx.suffix) == "o=xyz"
        assert server.context_for(DN.parse("o=abc")) is None

    def test_most_specific_context_wins(self):
        s = DirectoryServer("h")
        s.add_naming_context("o=xyz")
        s.add_naming_context("c=us,o=xyz")
        ctx = s.context_for(DN.parse("cn=a,c=us,o=xyz"))
        assert str(ctx.suffix) == "c=us,o=xyz"

    def test_context_referrals(self, server):
        server.add(make_referral_entry("c=in,o=xyz", "ldap://hostC"))
        ctx = server.naming_contexts[0]
        assert [str(d) for d in server.context_referrals(ctx)] == ["c=in,o=xyz"]

    def test_url(self, server):
        assert server.url == "ldap://hostA"


class TestSearch:
    def test_base_scope(self, server):
        res = server.search(SearchRequest("cn=Fred,c=us,o=xyz", Scope.BASE))
        assert len(res.entries) == 1
        assert res.complete

    def test_one_scope(self, server):
        res = server.search(SearchRequest("c=us,o=xyz", Scope.ONE))
        assert {e.first("cn") for e in res.entries} == {"Fred", "Ginger"}

    def test_sub_scope(self, server):
        res = server.search(SearchRequest("o=xyz", Scope.SUB))
        assert len(res.entries) == 4

    def test_filter_applied(self, server):
        res = server.search(SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)"))
        assert [e.first("cn") for e in res.entries] == ["Ginger"]

    def test_attribute_projection(self, server):
        res = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(cn=Fred)", attributes=["sn"])
        )
        assert res.entries[0].has_attribute("sn")
        assert not res.entries[0].has_attribute("cn")

    def test_no_such_object(self, server):
        res = server.search(SearchRequest("cn=Ghost,c=us,o=xyz", Scope.BASE))
        assert res.code is ResultCode.NO_SUCH_OBJECT

    def test_superior_referral_when_not_held(self):
        s = DirectoryServer("hostB", default_referral="ldap://hostA")
        s.add_naming_context("c=in,o=xyz")
        res = s.search(SearchRequest("o=xyz", Scope.SUB))
        assert res.code is ResultCode.REFERRAL
        assert res.referrals[0].url == "ldap://hostA"

    def test_no_default_referral_no_such_object(self):
        s = DirectoryServer("host")
        s.add_naming_context("c=in,o=xyz")
        res = s.search(SearchRequest("o=abc", Scope.SUB))
        assert res.code is ResultCode.NO_SUCH_OBJECT

    def test_continuation_reference_in_region(self, server):
        server.add(make_referral_entry("c=in,o=xyz", "ldap://hostC"))
        res = server.search(SearchRequest("o=xyz", Scope.SUB))
        assert len(res.referrals) == 1
        assert res.referrals[0].url == "ldap://hostC"
        assert str(res.referrals[0].target) == "c=in,o=xyz"

    def test_no_descent_below_referral(self, server):
        server.add(make_referral_entry("c=in,o=xyz", "ldap://hostC"))
        # glue entry below the referral must not be returned even if present
        server.store.put(person("cn=hidden,c=in,o=xyz"))
        res = server.search(SearchRequest("o=xyz", Scope.SUB, "(cn=hidden)"))
        assert res.entries == []

    def test_base_under_referral_refers(self, server):
        server.add(make_referral_entry("c=in,o=xyz", "ldap://hostC"))
        res = server.search(SearchRequest("cn=deep,c=in,o=xyz", Scope.BASE))
        assert res.code is ResultCode.REFERRAL
        assert str(res.referrals[0].target) == "cn=deep,c=in,o=xyz"

    def test_base_is_referral_subtree_refers(self, server):
        server.add(make_referral_entry("c=in,o=xyz", "ldap://hostC"))
        res = server.search(SearchRequest("c=in,o=xyz", Scope.SUB))
        assert res.code is ResultCode.REFERRAL

    def test_root_search_standalone(self, server):
        res = server.search(SearchRequest("", Scope.SUB, "(cn=Fred)"))
        assert len(res.entries) == 1

    def test_root_search_distributed_member_refers(self):
        s = DirectoryServer("hostB", default_referral="ldap://hostA")
        s.add_naming_context("c=in,o=xyz")
        res = s.search(SearchRequest("", Scope.SUB))
        assert res.code is ResultCode.REFERRAL

    def test_root_search_base_scope_empty(self, server):
        res = server.search(SearchRequest("", Scope.BASE))
        assert res.entries == []


class TestAdd:
    def test_add_commits_record(self, server):
        record = server.add(person("cn=New,c=us,o=xyz"))
        assert record.op is UpdateOp.ADD
        assert record.after is not None
        assert record.csn == server.current_csn

    def test_add_requires_context(self, server):
        with pytest.raises(LdapError) as exc:
            server.add(person("cn=x,o=abc"))
        assert exc.value.code is ResultCode.NO_SUCH_OBJECT

    def test_add_requires_parent(self, server):
        with pytest.raises(LdapError):
            server.add(person("cn=x,c=zz,o=xyz"))

    def test_add_duplicate_rejected(self, server):
        with pytest.raises(LdapError) as exc:
            server.add(person("cn=Fred,c=us,o=xyz"))
        assert exc.value.code is ResultCode.ENTRY_ALREADY_EXISTS

    def test_schema_checking_optional(self):
        s = DirectoryServer("h", check_schema=True)
        s.add_naming_context("o=xyz")
        s.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        with pytest.raises(LdapError) as exc:
            s.add(Entry("cn=bad,o=xyz", {"objectClass": ["person"], "cn": "bad"}))
        assert exc.value.code is ResultCode.OBJECT_CLASS_VIOLATION


class TestModify:
    def test_replace(self, server):
        record = server.modify(
            "cn=Fred,c=us,o=xyz", [Modification.replace("title", "Boss")]
        )
        assert record.op is UpdateOp.MODIFY
        assert record.before.first("title") is None
        assert record.after.first("title") == "Boss"

    def test_add_values(self, server):
        server.modify("cn=Fred,c=us,o=xyz", [Modification.add("cn", "Freddy")])
        entry = server.store.get(DN.parse("cn=Fred,c=us,o=xyz"))
        assert "Freddy" in entry.get("cn")

    def test_delete_values(self, server):
        server.modify("cn=Ginger,c=us,o=xyz", [Modification.delete("departmentNumber")])
        entry = server.store.get(DN.parse("cn=Ginger,c=us,o=xyz"))
        assert not entry.has_attribute("departmentNumber")

    def test_modify_missing_rejected(self, server):
        with pytest.raises(LdapError):
            server.modify("cn=Ghost,c=us,o=xyz", [Modification.replace("sn", "x")])

    def test_modifications_recorded(self, server):
        mods = [Modification.replace("title", "X")]
        record = server.modify("cn=Fred,c=us,o=xyz", mods)
        assert record.modifications == tuple(mods)


class TestDelete:
    def test_delete_leaf(self, server):
        record = server.delete("cn=Fred,c=us,o=xyz")
        assert record.op is UpdateOp.DELETE
        assert record.before is not None
        assert server.store.get(DN.parse("cn=Fred,c=us,o=xyz")) is None

    def test_delete_non_leaf_rejected(self, server):
        with pytest.raises(LdapError) as exc:
            server.delete("c=us,o=xyz")
        assert exc.value.code is ResultCode.NOT_ALLOWED_ON_NON_LEAF

    def test_delete_missing_rejected(self, server):
        with pytest.raises(LdapError):
            server.delete("cn=Ghost,c=us,o=xyz")

    def test_delete_subtree(self, server):
        records = server.delete_subtree("c=us,o=xyz")
        assert len(records) == 3
        assert server.store.get(DN.parse("c=us,o=xyz")) is None


class TestModifyDn:
    def test_rename_leaf(self, server):
        records = server.modify_dn("cn=Fred,c=us,o=xyz", new_rdn="cn=Frederick")
        assert len(records) == 1
        assert str(records[0].new_dn) == "cn=Frederick,c=us,o=xyz"
        moved = server.store.get(DN.parse("cn=Frederick,c=us,o=xyz"))
        assert moved.get("cn") == ["Frederick"]

    def test_move_subtree(self, server):
        server.add(Entry("c=ca,o=xyz", {"objectClass": ["country"], "c": "ca"}))
        server.add(person("cn=kid,cn=Fred,c=us,o=xyz"))
        records = server.modify_dn("cn=Fred,c=us,o=xyz", new_superior="c=ca,o=xyz")
        assert len(records) == 2
        assert server.store.get(DN.parse("cn=kid,cn=Fred,c=ca,o=xyz")) is not None

    def test_move_under_self_rejected(self, server):
        server.add(person("cn=kid,cn=Fred,c=us,o=xyz"))
        with pytest.raises(LdapError):
            server.modify_dn("cn=Fred,c=us,o=xyz", new_superior="cn=kid,cn=Fred,c=us,o=xyz")

    def test_rename_to_existing_rejected(self, server):
        with pytest.raises(LdapError):
            server.modify_dn("cn=Fred,c=us,o=xyz", new_rdn="cn=Ginger")

    def test_noop_rejected(self, server):
        with pytest.raises(LdapError):
            server.modify_dn("cn=Fred,c=us,o=xyz", new_rdn="cn=Fred")

    def test_records_carry_before_and_after(self, server):
        records = server.modify_dn("cn=Fred,c=us,o=xyz", new_rdn="cn=Frederick")
        record = records[0]
        assert record.before.dn != record.after.dn
        assert record.effective_dn == record.after.dn


class TestListeners:
    def test_listener_sees_all_ops(self, server):
        seen = []

        class Listener:
            def on_update(self, record):
                seen.append(record.op)

        server.add_update_listener(Listener())
        server.add(person("cn=New,c=us,o=xyz"))
        server.modify("cn=New,c=us,o=xyz", [Modification.replace("title", "X")])
        server.delete("cn=New,c=us,o=xyz")
        assert seen == [UpdateOp.ADD, UpdateOp.MODIFY, UpdateOp.DELETE]

    def test_listener_removal(self, server):
        seen = []

        class Listener:
            def on_update(self, record):
                seen.append(record)

        listener = Listener()
        server.add_update_listener(listener)
        server.remove_update_listener(listener)
        server.add(person("cn=New,c=us,o=xyz"))
        assert seen == []

    def test_csn_strictly_increasing(self, server):
        csns = []

        class Listener:
            def on_update(self, record):
                csns.append(record.csn)

        server.add_update_listener(Listener())
        server.add(person("cn=N1,c=us,o=xyz"))
        server.add(person("cn=N2,c=us,o=xyz"))
        server.delete("cn=N1,c=us,o=xyz")
        assert csns == sorted(csns)
        assert len(set(csns)) == len(csns)


class TestLoad:
    def test_bulk_load_orders_parents_first(self, small_directory):
        server = DirectoryServer("bulk")
        server.add_naming_context(small_directory.suffix)
        count = server.load(reversed(small_directory.entries))
        assert count == len(small_directory.entries)

    def test_load_does_not_notify(self, small_directory):
        server = DirectoryServer("bulk")
        server.add_naming_context(small_directory.suffix)
        seen = []

        class Listener:
            def on_update(self, record):
                seen.append(record)

        server.add_update_listener(Listener())
        server.load(small_directory.entries)
        assert seen == []
