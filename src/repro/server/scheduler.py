"""Deterministic event-loop scheduler for the pipelined transport.

The transport refactor (docs/TRANSPORT.md) needs an event loop —
pipelined requests complete asynchronously, persist batches flush on
age timers, backpressured consumers acknowledge later — but asyncio
would destroy the property this repository is built on: **replayable
runs**.  `FaultyNetwork` seeds, crash windows and every Hypothesis
equivalence property assume that the same seed produces byte-identical
executions; an OS-clock-driven loop cannot promise that.

So the loop here is explicit:

* a **virtual clock** (`now`, in milliseconds) that only advances when
  the run loop pops an event — no sleeping, no wall-clock reads;
* an explicit **run queue** (a heap of scheduled callbacks) ordered by
  ``(due_ms, tie, seq)``;
* **seeded tie-breaking**: events scheduled for the same due time run
  in an order fixed by the scheduler's seed (each event draws its tie
  key from a seeded RNG at schedule time), with the monotonically
  increasing sequence number as the final total-order guarantee.

Determinism contract (regression-tested in
``tests/server/test_scheduler.py``): for a fixed seed and a fixed
sequence of ``call_later``/``call_soon``/``cancel`` calls, the
execution order, the virtual clock trajectory and the instrument
values are identical across runs and across processes.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional

from ..obs.registry import MetricsRegistry

__all__ = ["ScheduledEvent", "DeterministicScheduler"]


class ScheduledEvent:
    """One pending callback; compare by ``(due_ms, tie, seq)``."""

    __slots__ = ("due_ms", "tie", "seq", "callback", "args", "cancelled")

    def __init__(self, due_ms: float, tie: float, seq: int, callback, args):
        self.due_ms = due_ms
        self.tie = tie
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.due_ms, self.tie, self.seq) < (
            other.due_ms,
            other.tie,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent due={self.due_ms} seq={self.seq} {state}>"


class DeterministicScheduler:
    """Explicit run-queue + virtual clock with seeded tie-breaking.

    Args:
        seed: fixes the tie-break order of same-due-time events.
        registry: metrics registry for ``net.sched.*`` instruments
            (default: a private one).
    """

    def __init__(self, seed: int = 0, registry: Optional[MetricsRegistry] = None):
        self.seed = seed
        self.registry = registry if registry is not None else MetricsRegistry()
        self._heap: List[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._rng = random.Random(f"sched:{seed}")
        self._events_run = self.registry.counter("net.sched.events")
        self._now_gauge = self.registry.gauge("net.sched.now_ms")

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The virtual clock, in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Scheduled-and-not-cancelled events still in the queue."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def idle(self) -> bool:
        return self.pending == 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_later(
        self, delay_ms: float, callback: Callable, *args
    ) -> ScheduledEvent:
        """Schedule *callback(*args)* at ``now + delay_ms``."""
        if delay_ms < 0:
            raise ValueError(f"negative delay {delay_ms!r}")
        event = ScheduledEvent(
            self._now + delay_ms, self._rng.random(), self._seq, callback, args
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable, *args) -> ScheduledEvent:
        """Schedule *callback(*args)* at the current virtual time."""
        return self.call_later(0.0, callback, *args)

    def call_at(self, due_ms: float, callback: Callable, *args) -> ScheduledEvent:
        """Schedule *callback(*args)* at the absolute virtual time
        *due_ms* (clamped to now — the past runs immediately, like
        :meth:`run_next`'s no-backwards-clock rule).  The chaos
        :class:`~repro.chaos.FaultSchedule` arms its fault windows with
        this, so window boundaries land at exact virtual-clock stamps
        independent of when the schedule was armed."""
        return self.call_later(max(0.0, due_ms - self._now), callback, *args)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event (no-op if it already ran)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run_next(self) -> bool:
        """Pop and run the next due event; False when the queue is empty.

        The virtual clock jumps to the event's due time (it never runs
        backwards: events scheduled in the past run at the current
        time).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.due_ms > self._now:
                self._now = event.due_ms
                self._now_gauge.set(self._now)
            self._events_run.inc()
            event.callback(*event.args)
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run events (advancing the clock) until none remain.

        *max_events* is a runaway-loop backstop — a callback chain that
        keeps rescheduling itself forever raises instead of hanging.
        """
        ran = 0
        while self.run_next():
            ran += 1
            if ran >= max_events:
                raise RuntimeError(
                    f"scheduler did not go idle within {max_events} events"
                )
        return ran

    def run_for(self, duration_ms: float, max_events: int = 1_000_000) -> int:
        """Advance the clock by *duration_ms*, running every event due
        in the window; events due later stay queued."""
        deadline = self._now + duration_ms
        ran = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.due_ms > deadline:
                break
            self.run_next()
            ran += 1
            if ran >= max_events:
                raise RuntimeError(
                    f"scheduler ran {max_events} events without draining the window"
                )
        if deadline > self._now:
            self._now = deadline
            self._now_gauge.set(self._now)
        return ran

    @property
    def events_run(self) -> int:
        return self._events_run.value
