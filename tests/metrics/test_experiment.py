"""Tests for the experiment driver."""

import pytest

from repro.core import (
    FilterReplica,
    FilterSelector,
    Generalizer,
    PrefixSuffixGeneralization,
    SubtreeReplica,
)
from repro.ldap import Scope, SearchRequest
from repro.metrics import ReplicaDriver
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import WorkloadConfig, WorkloadGenerator
from repro.workload.updates import UpdateGenerator


@pytest.fixture()
def setup(small_directory):
    master = DirectoryServer("master")
    master.add_naming_context(small_directory.suffix)
    master.load(small_directory.entries)
    provider = ResyncProvider(master)
    trace = WorkloadGenerator(small_directory, WorkloadConfig(seed=21)).generate(400)
    return small_directory, master, provider, trace


class TestBasicRun:
    def test_counts_add_up(self, setup):
        directory, master, provider, trace = setup
        net = SimulatedNetwork()
        replica = FilterReplica("branch", network=net, cache_capacity=20)
        driver = ReplicaDriver(master, replica, provider=provider, sync_interval=100)
        result = driver.run(trace)
        assert result.queries == len(trace)
        assert result.hits + result.partials + result.misses == result.queries
        assert 0.0 <= result.hit_ratio <= 1.0

    def test_hit_ratio_by_type_complete(self, setup):
        directory, master, provider, trace = setup
        replica = FilterReplica("branch", network=SimulatedNetwork())
        result = ReplicaDriver(master, replica, provider=provider).run(trace)
        assert set(result.hit_ratio_by_type) == {
            r.qtype.value for r in trace
        }

    def test_stored_filter_improves_hit_ratio(self, setup):
        directory, master, provider, trace = setup
        empty = FilterReplica("empty", network=SimulatedNetwork())
        base = ReplicaDriver(master, empty, provider=provider).run(trace)

        loaded = FilterReplica("loaded", network=SimulatedNetwork())
        for cc in directory.geography_countries("AP"):
            for block in directory.blocks_by_country[cc]:
                loaded.add_filter(
                    SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc.upper()})"),
                    provider,
                )
        rich = ReplicaDriver(master, loaded, provider=provider).run(trace)
        assert rich.hit_ratio > base.hit_ratio
        assert rich.hit_ratio_by_type["serialNumber"] > 0.5

    def test_cache_feeding_raises_hits(self, setup):
        directory, master, provider, trace = setup
        cached = FilterReplica("cached", network=SimulatedNetwork(), cache_capacity=50)
        result = ReplicaDriver(master, cached, provider=provider).run(trace)
        uncached = FilterReplica("uncached", network=SimulatedNetwork())
        base = ReplicaDriver(master, uncached, provider=provider).run(trace)
        assert result.hit_ratio > base.hit_ratio

    def test_feed_cache_disabled(self, setup):
        directory, master, provider, trace = setup
        replica = FilterReplica("r", network=SimulatedNetwork(), cache_capacity=50)
        result = ReplicaDriver(
            master, replica, provider=provider, feed_cache=False
        ).run(trace)
        assert result.hits == 0


class TestSubtreeRuns:
    def test_scoped_queries_hit_subtree_replica(self, setup):
        directory, master, provider, trace = setup
        replica = SubtreeReplica("branch", network=SimulatedNetwork())
        for cc in directory.geography_countries("AP"):
            replica.add_context(f"c={cc},o=xyz")
        replica.sync(provider)
        result = ReplicaDriver(
            master, replica, provider=provider, use_scoped=True
        ).run(trace)
        assert result.hit_ratio > 0.3

    def test_root_queries_never_hit_subtree_replica(self, setup):
        directory, master, provider, trace = setup
        replica = SubtreeReplica("branch", network=SimulatedNetwork())
        for cc in directory.geography_countries("AP"):
            replica.add_context(f"c={cc},o=xyz")
        replica.sync(provider)
        result = ReplicaDriver(master, replica, provider=provider).run(trace)
        assert result.hits == 0  # §3.1.1


class TestUpdateTraffic:
    def test_sync_traffic_measured(self, setup):
        directory, master, provider, trace = setup
        net = SimulatedNetwork()
        replica = FilterReplica("branch", network=net)
        cc = directory.geography_countries("AP")[0]
        block = directory.blocks_by_country[cc][0]
        replica.add_filter(
            SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc.upper()})"),
            provider,
        )
        updates = UpdateGenerator(directory, master)
        driver = ReplicaDriver(
            master,
            replica,
            provider=provider,
            update_generator=updates,
            updates_per_query=0.5,
            sync_interval=50,
            network=net,
        )
        result = driver.run(trace)
        assert result.updates_applied > 100
        assert result.sync_polls == len(trace) // 50 + 1
        assert result.sync_entry_pdus + result.sync_dn_pdus >= 0

    def test_bigger_replica_more_traffic(self, setup):
        directory, master, provider, trace = setup

        def run(contexts):
            m = DirectoryServer("m")
            m.add_naming_context(directory.suffix)
            m.load(directory.entries)
            p = ResyncProvider(m)
            net = SimulatedNetwork()
            replica = SubtreeReplica("branch", network=net)
            for suffix in contexts:
                replica.add_context(suffix)
            replica.sync(p)
            net.stats.reset()
            driver = ReplicaDriver(
                m,
                replica,
                provider=p,
                update_generator=UpdateGenerator(directory, m),
                updates_per_query=1.0,
                sync_interval=50,
                network=net,
            )
            return driver.run(trace[:200])

        small = run(["c=in,o=xyz"])
        large = run([f"c={cc},o=xyz" for cc in directory.countries()])
        assert large.sync_entry_pdus > small.sync_entry_pdus

    def test_revolution_traffic_separated(self, setup):
        directory, master, provider, trace = setup
        net = SimulatedNetwork()
        replica = FilterReplica("branch", network=net, cache_capacity=0)
        selector = FilterSelector(
            replica,
            Generalizer([PrefixSuffixGeneralization("serialNumber", 4, 2)]),
            ReplicaDriver.size_estimator_for(master),
            budget_entries=200,
            revolution_interval=100,
            provider=provider,
        )
        driver = ReplicaDriver(
            master,
            replica,
            provider=provider,
            selector=selector,
            sync_interval=100,
            network=net,
        )
        result = driver.run(trace)
        assert selector.revolutions >= 3
        assert result.revolution_entry_pdus > 0
        assert result.resync_entry_pdus >= 0
        assert result.hit_ratio_by_type["serialNumber"] > 0.2


class TestSizeEstimator:
    def test_estimates_master_counts(self, setup):
        directory, master, _provider, _trace = setup
        estimate = ReplicaDriver.size_estimator_for(master)
        cc = directory.geography_countries("AP")[0]
        block = directory.blocks_by_country[cc][0]
        q = SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc.upper()})")
        assert estimate(q) >= 1
