"""Tests for LDIF serialization and parsing."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ldap import Entry, entries_to_ldif, entry_to_ldif, parse_ldif, write_ldif


def sample() -> Entry:
    return Entry(
        "cn=John Doe,o=xyz",
        {"objectClass": ["person"], "cn": "John Doe", "sn": "Doe"},
    )


class TestRender:
    def test_dn_first_line(self):
        assert entry_to_ldif(sample()).splitlines()[0] == "dn: cn=John Doe,o=xyz"

    def test_attributes_sorted(self):
        lines = entry_to_ldif(sample()).splitlines()[1:]
        names = [line.split(":")[0] for line in lines]
        assert names == sorted(names, key=str.lower)

    def test_unsafe_value_base64(self):
        entry = Entry("cn=x,o=xyz", {"objectClass": ["person"], "cn": "x", "sn": " café"})
        text = entry_to_ldif(entry)
        assert "sn:: " in text

    def test_leading_colon_base64(self):
        entry = Entry("cn=x,o=xyz", {"cn": ":odd"})
        assert "cn:: " in entry_to_ldif(entry)

    def test_entries_sorted_by_dn(self):
        a = Entry("cn=b,o=xyz", {"cn": "b"})
        b = Entry("cn=a,o=xyz", {"cn": "a"})
        text = entries_to_ldif([a, b])
        assert text.index("cn=a,o=xyz") < text.index("cn=b,o=xyz")


class TestParse:
    def test_roundtrip(self):
        entry = sample()
        parsed = list(parse_ldif(entry_to_ldif(entry)))
        assert len(parsed) == 1
        assert parsed[0] == entry

    def test_base64_roundtrip(self):
        entry = Entry("cn=x,o=xyz", {"objectClass": ["person"], "cn": "x", "sn": " café"})
        assert list(parse_ldif(entry_to_ldif(entry)))[0] == entry

    def test_multiple_records(self):
        entries = [
            Entry("cn=a,o=xyz", {"cn": "a"}),
            Entry("cn=b,o=xyz", {"cn": "b"}),
        ]
        parsed = list(parse_ldif(entries_to_ldif(entries)))
        assert len(parsed) == 2

    def test_comments_skipped(self):
        text = "# header\ndn: cn=a,o=xyz\ncn: a\n"
        parsed = list(parse_ldif(text))
        assert parsed[0].first("cn") == "a"

    def test_continuation_lines(self):
        text = "dn: cn=a,o=xyz\ncn: long\n  value\n"
        parsed = list(parse_ldif(text))
        assert parsed[0].first("cn") == "long value"

    def test_missing_dn_rejected(self):
        with pytest.raises(ValueError):
            list(parse_ldif("cn: orphan\n"))

    def test_write_ldif(self):
        buf = io.StringIO()
        write_ldif([sample()], buf)
        assert "dn: cn=John Doe,o=xyz" in buf.getvalue()


class TestWhitespaceRoundTrip:
    """Leading/trailing whitespace must survive the dump exactly —
    a snapshot-restored replica must not silently differ from what was
    dumped (ISSUE 7 satellite: the old writer deemed ``"foo "`` safe
    while the old parser stripped it back to ``"foo"``)."""

    def test_trailing_space_base64(self):
        entry = Entry("cn=x,o=xyz", {"cn": ["x"], "sn": ["foo "]})
        assert "sn:: " in entry_to_ldif(entry)

    def test_trailing_space_roundtrip(self):
        entry = Entry("cn=x,o=xyz", {"cn": ["x"], "sn": ["foo "]})
        parsed = list(parse_ldif(entry_to_ldif(entry)))[0]
        assert parsed.get("sn") == ["foo "]

    def test_leading_space_roundtrip(self):
        entry = Entry("cn=x,o=xyz", {"cn": ["x"], "sn": [" foo"]})
        parsed = list(parse_ldif(entry_to_ldif(entry)))[0]
        assert parsed.get("sn") == [" foo"]

    def test_interior_whitespace_kept(self):
        # Safe values keep their interior spacing through the plain path.
        parsed = list(parse_ldif("dn: cn=a,o=xyz\ncn: two  spaces\n"))[0]
        assert parsed.get("cn") == ["two  spaces"]

    def test_empty_value_roundtrip(self):
        entry = Entry("cn=x,o=xyz", {"cn": ["x"], "description": [""]})
        parsed = list(parse_ldif(entry_to_ldif(entry)))[0]
        assert parsed.get("description") == [""]


class TestParseErrors:
    """Malformed lines fail with a ValueError naming the offending
    line — never a raw binascii traceback (ISSUE 7 satellite)."""

    def test_bad_base64_named(self):
        with pytest.raises(ValueError, match=r"sn:: %%%not-base64"):
            list(parse_ldif("dn: cn=a,o=xyz\nsn:: %%%not-base64\n"))

    def test_bad_utf8_named(self):
        # Valid base64, but the bytes are not UTF-8.
        with pytest.raises(ValueError, match=r"undecodable base64"):
            list(parse_ldif("dn: cn=a,o=xyz\nsn:: /w==\n"))

    def test_url_reference_rejected(self):
        with pytest.raises(ValueError, match=r"not supported.*file://"):
            list(parse_ldif("dn: cn=a,o=xyz\njpegPhoto:< file:///x.jpg\n"))

    def test_separatorless_line_named(self):
        with pytest.raises(ValueError, match=r"':' separator.*garbage"):
            list(parse_ldif("dn: cn=a,o=xyz\ngarbage\n"))

    def test_nameless_line_rejected(self):
        with pytest.raises(ValueError, match=r"attribute name"):
            list(parse_ldif("dn: cn=a,o=xyz\n: nameless\n"))


class TestVersionLine:
    """A leading RFC 2849 ``version: 1`` line is recognized and
    skipped, so foreign-tool LDIF parses (ISSUE 7 satellite)."""

    # The shape ldapsearch/OpenLDAP tools emit: version line, comments,
    # then records.
    FOREIGN = (
        "version: 1\n"
        "# extended LDIF\n"
        "#\n"
        "dn: cn=a,o=xyz\n"
        "cn: a\n"
        "\n"
        "dn: cn=b,o=xyz\n"
        "cn: b\n"
    )

    def test_version_line_skipped(self):
        parsed = list(parse_ldif(self.FOREIGN))
        assert [str(e.dn) for e in parsed] == ["cn=a,o=xyz", "cn=b,o=xyz"]

    def test_version_with_blank_line_after(self):
        parsed = list(parse_ldif("version: 1\n\ndn: cn=a,o=xyz\ncn: a\n"))
        assert len(parsed) == 1

    def test_version_attribute_inside_record_kept(self):
        # Only the file head is special: a ``version`` attribute inside
        # a record stays an attribute.
        parsed = list(parse_ldif("dn: cn=a,o=xyz\nversion: 1\n"))
        assert parsed[0].get("version") == ["1"]


# Attribute values: any UTF-8-encodable text (surrogates excluded) —
# leading/trailing/interior whitespace, colons, unicode, control chars.
_VALUES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
)
_NAMES = st.sampled_from(
    ["cn", "sn", "description", "title", "ou", "telephoneNumber"]
)
_DN_TOKEN = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12
)


@st.composite
def entries(draw):
    token = draw(_DN_TOKEN)
    attrs = draw(
        st.dictionaries(
            _NAMES,
            st.lists(_VALUES, min_size=1, max_size=3, unique=True),
            min_size=1,
            max_size=4,
        )
    )
    entry = Entry(f"uid={token},o=xyz")
    for name, values in attrs.items():
        entry.add_values(name, values)
    return entry


class TestRoundTripProperty:
    @given(entries())
    def test_entry_ldif_entry_identity(self, entry):
        """entry → LDIF → entry is the identity on raw values.

        Raw ``get()`` lists are compared (not Entry equality): matching
        normalization collapses whitespace for directory strings, so it
        cannot distinguish ``"foo "`` from ``"foo"`` — exactly the
        corruption this property exists to rule out.
        """
        parsed = list(parse_ldif(entry_to_ldif(entry)))
        assert len(parsed) == 1
        got = parsed[0]
        assert str(got.dn) == str(entry.dn)
        assert sorted(got.attribute_names()) == sorted(entry.attribute_names())
        for name in entry.attribute_names():
            assert got.get(name) == entry.get(name)

    @given(st.lists(entries(), min_size=1, max_size=4))
    def test_multi_record_roundtrip(self, entry_list):
        # Deduplicate by DN — the dump keys records by DN.
        by_dn = {str(e.dn): e for e in entry_list}
        originals = list(by_dn.values())
        parsed = {str(e.dn): e for e in parse_ldif(entries_to_ldif(originals))}
        assert set(parsed) == set(by_dn)
        for dn, original in by_dn.items():
            for name in original.attribute_names():
                assert parsed[dn].get(name) == original.get(name)
