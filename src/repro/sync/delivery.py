"""Per-session batching of persist-mode notifications.

The synchronous transport delivers every persist notification inline
with the master update — one callback, one charge, one consumer apply
per update per session.  At thousands of live persist sessions (§5.2's
scaling worry) that per-notification overhead dominates.  The pipelined
transport (docs/TRANSPORT.md) instead hands each session's deliveries
to a :class:`DeliveryQueue` that:

* **batches** — notifications accumulate and flush as one wire frame
  (:func:`repro.ldap.ber.encode_sync_batch`) when the batch reaches
  ``max_batch`` PDUs or the oldest pending PDU reaches ``max_age_ms``
  on the scheduler's virtual clock (the delivery-latency bound);
* **applies backpressure** — a consumer that is still applying the
  previous batch (``consumer_delay_ms`` of virtual time) defers the
  next flush instead of overrunning it;
* **bounds memory under backpressure** — when a deferred queue grows
  past ``high_water`` pending PDUs it *degrades to coalesced-retain*:
  the exact notification sequence is folded into one net update per DN
  (eq. 3's "keep only the net effect" idea), so a slow consumer's queue
  is bounded by its content size, never by the update rate.  Every
  action is an idempotent state-setter and delete-of-absent is a no-op
  at the consumer, so the net-effect stream converges to the same
  content as the full sequence (property-tested in
  ``tests/sync/test_transport_equivalence.py``).

Below the high-water mark the queue preserves the exact per-update
sequence, so the delivered stream is byte-identical to the synchronous
oracle's (the PR 4/PR 8 equivalence playbook).

Faults apply at **batch boundaries**: the queue delivers through
:meth:`repro.server.network.SimulatedNetwork.deliver_batch`, which
`FaultyNetwork` overrides with its independent ``:b`` decision stream
(whole-batch drop, prefix truncation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..ldap.dn import DN
from .protocol import SyncUpdate

__all__ = ["BatchConfig", "DeliveryQueue"]


@dataclass(frozen=True)
class BatchConfig:
    """Batching/backpressure knobs of one pipelined network's queues.

    Attributes:
        max_batch: flush when this many PDUs are pending (size bound).
        max_age_ms: flush no later than this after the oldest pending
            PDU was offered (the per-update delivery-latency bound, on
            the virtual clock).
        high_water: pending PDUs at which a (backpressured) queue
            degrades to per-DN coalesced-retain instead of growing.
    """

    max_batch: int = 64
    max_age_ms: float = 5.0
    high_water: int = 256

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_age_ms < 0:
            raise ValueError("max_age_ms must be >= 0")
        if self.high_water < self.max_batch:
            raise ValueError("high_water must be >= max_batch")


class DeliveryQueue:
    """Batches one persist session's notifications (docs/TRANSPORT.md §4).

    Callable so it can stand in for the plain per-update deliver
    callback (``queue(update)`` == ``queue.offer(update)``); the
    provider's ``_flush_persist`` detects :meth:`offer_many` and hands
    whole queued runs over in one call.
    """

    def __init__(
        self,
        deliver: Callable[[SyncUpdate], None],
        network,
        scheduler,
        config: Optional[BatchConfig] = None,
        session_id: Optional[str] = None,
    ):
        self._deliver = deliver
        self._network = network
        self._scheduler = scheduler
        self.config = config if config is not None else BatchConfig()
        # BatchConfig is frozen; bind the bounds once for the offer hot
        # path (one provider flush per master update per session).
        self._max_batch = self.config.max_batch
        self._max_age_ms = self.config.max_age_ms
        self._high_water = self.config.high_water
        self.session_id = session_id
        #: Exact notification sequence (update, offered_at_ms) — the
        #: byte-identical tier.
        self._pending: List[Tuple[SyncUpdate, float]] = []
        #: Net effect per DN (update, earliest offered_at_ms) — the
        #: degraded coalesced-retain tier.
        self._coalesced: Dict[DN, Tuple[SyncUpdate, float]] = {}
        self._degraded = False
        self._timer = None
        self._busy = False  # consumer still applying the last batch
        self._closed = False
        #: Simulated per-batch consumer apply time; >0 exercises the
        #: backpressure path (set by benches/tests per session).
        self.consumer_delay_ms = 0.0
        #: Virtual delivery latencies (flush - offer) of every PDU this
        #: queue delivered, for bench percentile exports.
        self.latencies: List[float] = []
        self.on_close: Optional[Callable[["DeliveryQueue"], None]] = None
        registry = network.registry
        self._offered = registry.counter("sync.batch.offered")
        self._flushes = registry.counter("sync.batch.flushes")
        self._delivered = registry.counter("sync.batch.delivered")
        self._coalesced_away = registry.counter("sync.batch.coalesced")
        self._degradations = registry.counter("sync.batch.degraded")
        self._deferred = registry.counter("sync.batch.deferred")
        self._depth_gauge = registry.gauge("sync.batch.queue_depth")
        self._latency_hist = registry.histogram("sync.batch.latency_ms")

    # ------------------------------------------------------------------
    # offering (the provider side)
    # ------------------------------------------------------------------
    def __call__(self, update: SyncUpdate) -> None:
        self.offer(update)

    def offer(self, update: SyncUpdate) -> None:
        """Queue one notification; may flush or degrade."""
        if self._closed:
            return
        self._offered.inc()
        now = self._scheduler.now
        if self._degraded:
            self._merge(update, now)
        else:
            self._pending.append((update, now))
            if len(self._pending) > self._high_water:
                self._degrade()
        depth = self.pending_count
        if depth > self._depth_gauge.value:
            self._depth_gauge.set(depth)
        if depth >= self._max_batch:
            self.flush()
        else:
            self._arm_timer(now)

    def offer_many(self, updates: List[SyncUpdate]) -> None:
        """Queue a run of notifications (one provider flush) at once.

        The provider-side hot path at high session counts: one call per
        fan-out flush, bulk counter updates, and a tight per-DN merge
        loop once degraded.
        """
        if self._closed or not updates:
            return
        self._offered.inc(len(updates))
        now = self._scheduler.now
        if not self._degraded:
            pending = self._pending
            pending.extend((update, now) for update in updates)
            if len(pending) > self._high_water:
                self._degrade()
            depth = len(self._coalesced) if self._degraded else len(pending)
        else:
            merged = self._coalesced
            away = 0
            for update in updates:
                dn = update.dn
                existing = merged.get(dn)
                if existing is not None:
                    away += 1
                    merged[dn] = (update, existing[1])
                else:
                    merged[dn] = (update, now)
            if away:
                self._coalesced_away.inc(away)
            depth = len(merged)
        if depth > self._depth_gauge.value:
            self._depth_gauge.set(depth)
        if depth >= self._max_batch:
            self.flush()
        else:
            self._arm_timer(now)

    @property
    def pending_count(self) -> int:
        return len(self._coalesced) if self._degraded else len(self._pending)

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def busy(self) -> bool:
        return self._busy

    # ------------------------------------------------------------------
    # coalesced-retain degradation
    # ------------------------------------------------------------------
    def _merge(self, update: SyncUpdate, now: float) -> None:
        existing = self._coalesced.get(update.dn)
        if existing is not None:
            # Net effect per DN: the latest state-setter wins (delete of
            # an entry the consumer never saw is a no-op on apply).
            self._coalesced_away.inc()
            self._coalesced[update.dn] = (update, existing[1])
        else:
            self._coalesced[update.dn] = (update, now)

    def _degrade(self) -> None:
        self._degradations.inc()
        self._degraded = True
        pending, self._pending = self._pending, []
        for update, offered_at in pending:
            existing = self._coalesced.get(update.dn)
            if existing is not None:
                self._coalesced_away.inc()
                self._coalesced[update.dn] = (update, existing[1])
            else:
                self._coalesced[update.dn] = (update, offered_at)

    # ------------------------------------------------------------------
    # flushing (the wire side)
    # ------------------------------------------------------------------
    def _arm_timer(self, first_offer_ms: float) -> None:
        if self._timer is not None or self.pending_count == 0:
            return
        self._timer = self._scheduler.call_later(
            self._max_age_ms, self._on_timer
        )

    def _on_timer(self) -> None:
        self._timer = None
        self.flush()

    def flush(self) -> int:
        """Deliver everything pending as one batch; returns PDUs
        delivered (0 when empty, backpressured, or dropped in flight).
        """
        if self._closed or self.pending_count == 0:
            return 0
        if self._busy:
            # Backpressure: the consumer is still applying the previous
            # batch.  Leave the data queued (degrading bounds it); the
            # ack callback retries the flush.
            self._deferred.inc()
            return 0
        if self._timer is not None:
            self._scheduler.cancel(self._timer)
            self._timer = None
        if self._degraded:
            items = list(self._coalesced.values())
            self._coalesced.clear()
            self._degraded = False
        else:
            items, self._pending = self._pending, []
        batch = [update for update, _ in items]
        self._flushes.inc()
        delivered = self._network.deliver_batch(self._deliver, batch)
        self._delivered.inc(delivered)
        now = self._scheduler.now
        for update, offered_at in items[:delivered]:
            latency = now - offered_at
            self._latency_hist.observe(latency)
            self.latencies.append(latency)
        if self.consumer_delay_ms > 0:
            self._busy = True
            self._scheduler.call_later(self.consumer_delay_ms, self._on_ack)
        # Offers made reentrantly by the deliver callbacks stay queued;
        # re-arm so they flush by the age bound at the latest.
        if self.pending_count >= self._max_batch and not self._busy:
            self._scheduler.call_soon(self.flush)
        elif self.pending_count:
            self._arm_timer(now)
        return delivered

    def _on_ack(self) -> None:
        self._busy = False
        if self._closed:
            return
        if self.pending_count >= self._max_batch:
            self.flush()
        elif self.pending_count:
            self._arm_timer(self._scheduler.now)

    def close(self) -> None:
        """End of subscription: discard pending, cancel the timer."""
        if self._closed:
            return
        self._closed = True
        if self._timer is not None:
            self._scheduler.cancel(self._timer)
            self._timer = None
        self._pending.clear()
        self._coalesced.clear()
        self._degraded = False
        if self.on_close is not None:
            self.on_close(self)
