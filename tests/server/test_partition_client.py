"""Tests for distributed directories and referral-chasing clients (Fig 2)."""

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DistributedDirectory, LdapClient, SimulatedNetwork


def person(dn: str, **attrs) -> Entry:
    base = {"objectClass": ["person", "top"], "sn": "T"}
    base["cn"] = dn.split(",")[0].split("=")[1]
    base.update(attrs)
    return Entry(dn, base)


@pytest.fixture()
def figure2() -> DistributedDirectory:
    """The three-server topology of Figure 2."""
    dist = DistributedDirectory()
    host_a = dist.add_server("hostA", "o=xyz")
    host_b = dist.add_server(
        "hostB", "ou=research,c=us,o=xyz", default_referral="ldap://hostA"
    )
    host_c = dist.add_server("hostC", "c=in,o=xyz", default_referral="ldap://hostA")

    host_a.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    host_a.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    host_a.add(person("cn=Fred Jones,c=us,o=xyz"))
    dist.add_referral("hostA", "ou=research,c=us,o=xyz", "hostB")
    dist.add_referral("hostA", "c=in,o=xyz", "hostC")

    host_b.add(
        Entry(
            "ou=research,c=us,o=xyz",
            {"objectClass": ["organizationalUnit"], "ou": "research"},
        )
    )
    host_b.add(person("cn=John Doe,ou=research,c=us,o=xyz"))
    host_c.add(Entry("c=in,o=xyz", {"objectClass": ["country"], "c": "in"}))
    host_c.add(person("cn=Ravi,c=in,o=xyz"))
    return dist


class TestTopologyConstruction:
    def test_duplicate_server_rejected(self, figure2):
        with pytest.raises(ValueError):
            figure2.add_server("hostA", "o=dup")

    def test_server_lookup(self, figure2):
        assert figure2.server("hostB").name == "hostB"

    def test_total_entries(self, figure2):
        assert figure2.total_entries() == 9  # 7 data + 2 glue referrals

    def test_network_resolution(self, figure2):
        assert figure2.network.resolve("ldap://hostA").name == "hostA"
        assert figure2.network.resolve("ldap://hostA/c=us,o=xyz").name == "hostA"
        with pytest.raises(KeyError):
            figure2.network.resolve("ldap://nowhere")


class TestFigure2:
    """The paper's worked example: 4 round trips for one request."""

    def test_four_round_trips(self, figure2):
        client = LdapClient(figure2.network)
        result = client.search(
            "ldap://hostB", SearchRequest("o=xyz", Scope.SUB)
        )
        assert result.round_trips == 4
        assert result.servers_contacted[0] == "ldap://hostB"
        assert result.servers_contacted[1] == "ldap://hostA"

    def test_all_entries_collected(self, figure2):
        client = LdapClient(figure2.network)
        result = client.search("ldap://hostB", SearchRequest("o=xyz", Scope.SUB))
        assert {str(e.dn) for e in result.entries} == {
            "o=xyz",
            "c=us,o=xyz",
            "cn=Fred Jones,c=us,o=xyz",
            "ou=research,c=us,o=xyz",
            "cn=John Doe,ou=research,c=us,o=xyz",
            "c=in,o=xyz",
            "cn=Ravi,c=in,o=xyz",
        }
        assert result.complete

    def test_direct_hit_single_round_trip(self, figure2):
        client = LdapClient(figure2.network)
        result = client.search(
            "ldap://hostC", SearchRequest("c=in,o=xyz", Scope.SUB)
        )
        assert result.round_trips == 1

    def test_network_counters_charged(self, figure2):
        client = LdapClient(figure2.network)
        figure2.network.stats.reset()
        client.search("ldap://hostB", SearchRequest("o=xyz", Scope.SUB))
        assert figure2.network.stats.round_trips == 4
        assert figure2.network.stats.entry_pdus == 7
        assert figure2.network.stats.referral_pdus == 3

    def test_unresolvable_referral_reported(self, figure2):
        figure2.server("hostA").add(
            Entry(
                "c=jp,o=xyz",
                {"objectClass": ["referral"], "ref": "ldap://ghost"},
            )
        )
        client = LdapClient(figure2.network)
        result = client.search("ldap://hostA", SearchRequest("o=xyz", Scope.SUB))
        assert not result.complete
        assert result.unresolved[0].url == "ldap://ghost"

    def test_filter_travels_with_referrals(self, figure2):
        client = LdapClient(figure2.network)
        result = client.search(
            "ldap://hostB", SearchRequest("o=xyz", Scope.SUB, "(cn=Ravi)")
        )
        assert [str(e.dn) for e in result.entries] == ["cn=Ravi,c=in,o=xyz"]

    def test_hop_limit(self, figure2):
        # two servers referring to each other for an unheld name
        loopy = DistributedDirectory()
        loopy.add_server("p", "o=p", default_referral="ldap://q")
        loopy.add_server("q", "o=q", default_referral="ldap://p")
        client = LdapClient(loopy.network, max_hops=10)
        # visited-set breaks the loop before the hop limit fires
        result = client.search("ldap://p", SearchRequest("o=zz", Scope.SUB))
        assert result.entries == []


class TestLoadPartitioned:
    def test_entries_go_to_most_specific_holder(self, figure2):
        extra = [person("cn=Extra,c=in,o=xyz"), person("cn=More,c=us,o=xyz")]
        counts = figure2.load_partitioned(extra)
        assert counts["hostC"] == 1
        assert counts["hostA"] == 1

    def test_unheld_entry_rejected(self, figure2):
        with pytest.raises(ValueError):
            figure2.load_partitioned([person("cn=x,o=nowhere")])


class TestLatencyAccounting:
    def test_elapsed_accumulates(self):
        net = SimulatedNetwork(round_trip_latency_ms=50.0)
        net.charge_round_trip()
        net.charge_round_trip()
        assert net.elapsed_ms == 100.0

    def test_stats_snapshot_and_subtract(self):
        net = SimulatedNetwork()
        net.charge_round_trip()
        before = net.stats.snapshot()
        net.charge_round_trip()
        delta = net.stats - before
        assert delta.round_trips == 1
