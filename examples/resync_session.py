#!/usr/bin/env python3
"""Figure 3 walkthrough: a complete ReSync session, message by message.

Replays the paper's example session — entries E1..E5, update operations
A/M/D/R at the master, a poll → poll → persist sequence at the replica
— and prints the message sequence chart as it happens.

Run:  python examples/resync_session.py
"""

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider, SyncedContent


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "Example"},
    )


def show(label: str, updates) -> None:
    print(f"\n<- {label}")
    for update in updates:
        detail = str(update.dn)
        print(f"     {update.action.value:<7} {detail}")


def main() -> None:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for name in ("E1", "E2", "E3"):
        master.add(person(name))

    S = SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)")
    provider = ResyncProvider(master)
    content = SyncedContent(S)

    print(f"synchronized search S: {S}")

    # ---- request 1: S, (poll, null) ---------------------------------
    print("\n-> S, (poll, null)")
    response = content.poll(provider)
    show("initial content + cookie", response.updates)
    print(f"     cookie: {content.cookie}")

    # ---- updates at the master --------------------------------------
    print("\n[master] A: add E4 | D: delete E1, E2 | M: modify E3")
    master.add(person("E4"))
    master.delete("cn=E1,o=xyz")
    master.delete("cn=E2,o=xyz")
    master.modify("cn=E3,o=xyz", [Modification.replace("title", "modified")])

    # ---- request 2: S, (poll, cookie) -------------------------------
    print("\n-> S, (poll, cookie)")
    response = content.poll(provider)
    show("accumulated session updates + cookie1", response.updates)
    print(f"     cookie: {content.cookie}")

    # ---- request 3: S, (persist, cookie1) ----------------------------
    print("\n-> S, (persist, cookie1)")
    notifications = []
    response, handle = provider.persist(S, notifications.append, cookie=content.cookie)
    for update in response.updates:
        content.apply_notification(update)
    print("<- (connection stays open)")

    # R: modify DN — in-content rename is delete(old) + add(new) (§5.2)
    print("\n[master] R: rename E3 -> E5")
    master.modify_dn("cn=E3,o=xyz", new_rdn="cn=E5")
    show("change notifications", notifications)
    for update in notifications:
        content.apply_notification(update)

    # ---- abandon ------------------------------------------------------
    print("\n-> abandon")
    handle.abandon()
    print(f"<- session closed (active sessions: {provider.active_session_count})")

    ok = content.matches_master(master)
    print(f"\nreplica content: {sorted(str(dn) for dn in content.dns())}")
    print(f"converged with master: {ok}")
    assert ok


if __name__ == "__main__":
    main()
