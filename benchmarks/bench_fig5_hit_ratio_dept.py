"""E5 — Figure 5: hit ratio vs replica size, department query.

Paper: for ``(&(dept=_)(div=_))`` queries, "not all departments in a
division are accessed uniformly": a filter based replica stores only
the beneficial departments while a subtree based replica must take all
or none of a division's departments.  Because the generalized queries
are small, dynamic filter selection (§6.2) applies, and **reducing the
revolution interval R from 10000 to 6000 queries raises the hit
ratio** (faster adaptation).

Scale note: the trace here is 10k queries (vs the paper's multi-day
trace), so R scales down proportionally: R=600 vs R=1000.
"""

from __future__ import annotations

import pytest

from repro.core import FilterSelector, Generalizer, IdentityGeneralization
from repro.metrics import ReplicaDriver
from repro.workload import QueryType

from .common import BenchEnv, report, run_filter_point

DEPT_TEMPLATE = "(&(departmentnumber=_)(divisionnumber=_)(objectclass=department))"


def selector_factory(budget: int, interval: int):
    def make(replica, provider, master):
        return FilterSelector(
            replica,
            Generalizer([IdentityGeneralization(DEPT_TEMPLATE)]),
            ReplicaDriver.size_estimator_for(master),
            budget_entries=budget,
            revolution_interval=interval,
            provider=provider,
        )

    return make


@pytest.fixture(scope="module")
def fig5_rows(env: BenchEnv):
    eval_trace = env.trace.of_type(QueryType.DEPARTMENT)
    rows = []
    for interval, label in ((600, "R=600"), (1000, "R=1000")):
        for budget in (5, 10, 20, 40, 80):
            result, replica = run_filter_point(
                env,
                [],
                eval_trace,
                selector_factory=selector_factory(budget, interval),
            )
            rows.append(
                (
                    f"filter {label}",
                    budget,
                    result.replica_entries,
                    result.hit_ratio,
                )
            )

    # Subtree baseline: whole division subtrees (all-or-none, §7.2(b)),
    # chosen by day-1 popularity.
    div_hits = {}
    for record in env.day(1).of_type(QueryType.DEPARTMENT):
        div = str(record.scoped_request.base)
        div_hits[div] = div_hits.get(div, 0) + 1
    ranked_divisions = sorted(div_hits, key=div_hits.get, reverse=True)

    from repro.core import SubtreeReplica
    from repro.server import SimulatedNetwork
    from repro.sync import ResyncProvider

    for k in (1, 2, 4, 8):
        master = env.fresh_master()
        provider = ResyncProvider(master)
        replica = SubtreeReplica("branch", network=SimulatedNetwork())
        for div_base in ranked_divisions[:k]:
            replica.add_context(div_base)
        replica.sync(provider)
        driver = ReplicaDriver(
            master, replica, provider=provider, use_scoped=True
        )
        result = driver.run(eval_trace)
        rows.append(("subtree (divisions)", k, result.replica_entries, result.hit_ratio))
    return rows


def test_fig5_hit_ratio_vs_replica_size_dept(benchmark, env: BenchEnv, fig5_rows):
    fast = {entries: hit for m, _u, entries, hit in fig5_rows if m == "filter R=600"}
    slow = {entries: hit for m, _u, entries, hit in fig5_rows if m == "filter R=1000"}
    report(
        "fig5",
        "Hit ratio vs replica size — department query (R sweep + subtree)",
        ["model", "units", "entries", "hit ratio"],
        fig5_rows,
        params={"query_type": "department", "revolution_intervals": "600,1000"},
        metrics={
            "r600_best_hit": max(fast.values(), default=0.0),
            "r1000_best_hit": max(slow.values(), default=0.0),
            "points": len(fig5_rows),
        },
        paper_expected={"shape": "smaller R adapts faster at every size"},
    )
    subtree = [(entries, hit) for m, _u, entries, hit in fig5_rows if m.startswith("subtree")]

    # Paper shape: the smaller revolution interval adapts faster and
    # yields the higher hit ratio at (almost) every replica size.
    fast_curve = [hit for _e, hit in sorted(fast.items())]
    slow_curve = [hit for _e, hit in sorted(slow.items())]
    assert sum(fast_curve) > sum(slow_curve), "R=600 must beat R=1000 overall"

    # Filter replicas beat division subtrees at small sizes: the
    # smallest subtree point stores a whole division, the filter point
    # with a similar budget stores only hot departments.
    smallest_subtree_entries, smallest_subtree_hit = min(subtree)
    comparable = [
        hit for entries, hit in fast.items() if entries <= smallest_subtree_entries
    ]
    assert comparable and max(comparable) >= smallest_subtree_hit - 0.02

    # Timed unit: one selector revolution over accumulated candidates.
    from repro.core import FilterReplica
    from repro.server import SimulatedNetwork
    from repro.sync import ResyncProvider

    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica("bench", network=SimulatedNetwork())
    selector = selector_factory(40, 10_000)(replica, provider, master)
    for record in env.day(1).of_type(QueryType.DEPARTMENT)[:300]:
        selector.observe(record.request)
    benchmark(selector.revolution)
