#!/usr/bin/env python3
"""Quickstart: a master directory, a filter based replica, and queries.

Builds a small DIT on a master server, replicates one generalized
filter to a branch replica through the ReSync protocol, and shows the
three outcomes a client can see: a containment hit, a miss (referral to
the master), and staying consistent across master updates.

Run:  python examples/quickstart.py
"""

from repro.core import FilterReplica, query_contained_in
from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider


def build_master() -> DirectoryServer:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    master.add(Entry("c=in,o=xyz", {"objectClass": ["country"], "c": "in"}))
    people = [
        ("Asha Rao", "004201IN", "2406"),
        ("Vikram Iyer", "004202IN", "2406"),
        ("Meera Nair", "004203IN", "2410"),
        ("Rohan Das", "009901IN", "2410"),
    ]
    for cn, serial, dept in people:
        master.add(
            Entry(
                f"cn={cn},c=in,o=xyz",
                {
                    "objectClass": ["inetOrgPerson", "person", "top"],
                    "cn": cn,
                    "sn": cn.split()[-1],
                    "serialNumber": serial,
                    "departmentNumber": dept,
                    "mail": f"{cn.split()[0].lower()}@in.xyz.com",
                },
            )
        )
    return master


def main() -> None:
    master = build_master()
    provider = ResyncProvider(master)

    # Replicate one generalized query: site block 0042, geography IN.
    replica = FilterReplica("branch", master_url="ldap://master")
    stored = SearchRequest("", Scope.SUB, "(serialNumber=0042*IN)")
    replica.add_filter(stored, provider)
    print(f"replica holds {replica.entry_count()} entries for {stored}")

    # A user query contained in the stored filter → answered locally.
    query = SearchRequest("", Scope.SUB, "(serialNumber=004202IN)")
    print(f"\nQC(query, stored) = {query_contained_in(query, stored)}")
    answer = replica.answer(query)
    print(f"{query}\n  -> {answer.status.value}: "
          f"{[e.first('cn') for e in answer.entries]}")

    # A query outside the stored content → referral to the master.
    miss = SearchRequest("", Scope.SUB, "(serialNumber=009901IN)")
    answer = replica.answer(miss)
    print(f"{miss}\n  -> {answer.status.value}: referral to "
          f"{answer.referrals[0].url}")

    # The master changes; one poll brings the replica back in sync.
    master.modify(
        "cn=Asha Rao,c=in,o=xyz",
        [Modification.replace("departmentNumber", "2499")],
    )
    master.add(
        Entry(
            "cn=Kiran Joshi,c=in,o=xyz",
            {
                "objectClass": ["inetOrgPerson", "person", "top"],
                "cn": "Kiran Joshi",
                "sn": "Joshi",
                "serialNumber": "004204IN",
                "departmentNumber": "2406",
            },
        )
    )
    replica.sync(provider)
    answer = replica.answer(SearchRequest("", Scope.SUB, "(serialNumber=0042*IN)"))
    print(f"\nafter sync the replica answers with "
          f"{[e.first('cn') for e in answer.entries]}")
    print(f"hit ratio so far: {replica.stats.hit_ratio:.2f} "
          f"({replica.stats.hits}/{replica.stats.queries})")


if __name__ == "__main__":
    main()
