"""Minimal LDIF (LDAP Data Interchange Format, RFC 2849) support.

Used by the examples, by tests and by the consumer snapshot tier
(:mod:`repro.sync.snapshot`) to dump directory content in a
human-readable, diff-friendly form.  Supports the content subset
(``dn:`` + attribute lines, records separated by blank lines) with
base64 encoding of unsafe values.

Round-trip fidelity is load-bearing: a snapshot-restored replica that
silently differs from what was dumped would diverge *undetectably*
from the master.  The writer therefore base64-encodes any value the
parser could not reproduce byte-for-byte (leading/trailing whitespace,
leading ``:``/``<``, control or non-ASCII characters), and the parser
strips exactly the single separator space — never the value's own
whitespace.  The identity property ``parse_ldif(entries_to_ldif(es))
== es`` is enforced for arbitrary generated entries in
``tests/ldap/test_ldif.py``.
"""

from __future__ import annotations

import base64
import binascii
import re
from typing import Iterable, Iterator, List, TextIO, Tuple

from .entry import Entry

__all__ = ["entry_to_ldif", "entries_to_ldif", "parse_ldif", "write_ldif"]

#: RFC 2849 version-spec line — recognized (and skipped) at the head of
#: a file, so LDIF produced by foreign tools parses.
_VERSION_LINE = re.compile(r"version:\s*\d+\s*$")


def _is_safe(value: str) -> bool:
    """RFC 2849 SAFE-STRING test (conservative).

    Leading *and trailing* whitespace are unsafe: the parser strips one
    separator space after ``:``, so a value that starts with a space
    would lose it, and trailing spaces are invisible in the dump and
    commonly mangled by editors — both are forced through base64 so the
    round-trip is exact.
    """
    if value == "":
        return True
    if value[0] in {" ", ":", "<"}:
        return False
    if value[-1] == " ":
        return False
    return all(32 <= ord(ch) < 127 for ch in value)


def _attr_line(name: str, value: str) -> str:
    if _is_safe(value):
        return f"{name}: {value}"
    encoded = base64.b64encode(value.encode("utf-8")).decode("ascii")
    return f"{name}:: {encoded}"


def entry_to_ldif(entry: Entry) -> str:
    """Render one entry as an LDIF record (no trailing blank line)."""
    lines: List[str] = [_attr_line("dn", str(entry.dn))]
    for name, values in sorted(entry, key=lambda item: item[0].lower()):
        for value in values:
            lines.append(_attr_line(name, value))
    return "\n".join(lines)


def entries_to_ldif(entries: Iterable[Entry]) -> str:
    """Render entries as LDIF, sorted by DN for deterministic diffs."""
    ordered = sorted(entries, key=lambda e: str(e.dn).lower())
    return "\n\n".join(entry_to_ldif(e) for e in ordered) + "\n"


def write_ldif(entries: Iterable[Entry], stream: TextIO) -> None:
    """Write entries to *stream* in LDIF form."""
    stream.write(entries_to_ldif(entries))


def parse_ldif(text: str) -> Iterator[Entry]:
    """Parse LDIF content records back into entries.

    Handles continuation lines (leading space), ``::`` base64 values,
    ``#`` comments and a leading RFC 2849 ``version: 1`` line (skipped).
    Raises :class:`ValueError` on records without a ``dn:`` line, on
    lines without a ``:`` separator, on undecodable base64 values and
    on unsupported ``name:< url`` references — always naming the
    offending line.
    """
    # Unfold continuation lines first.
    unfolded: List[str] = []
    for raw in text.splitlines():
        if raw.startswith(" ") and unfolded:
            unfolded[-1] += raw[1:]
        else:
            unfolded.append(raw)

    record: List[str] = []
    at_head = True  # before the first content line of the file
    for line in unfolded + [""]:
        stripped = line.rstrip("\n")
        if stripped.startswith("#"):
            continue
        if stripped == "":
            if record:
                yield _record_to_entry(record)
                record = []
            continue
        if at_head and _VERSION_LINE.match(stripped):
            at_head = False
            continue
        at_head = False
        record.append(stripped)


def _parse_attr_line(line: str) -> Tuple[str, str]:
    """Split one (unfolded) ``name: value`` line into its parts.

    The three RFC 2849 value forms are told apart by what follows the
    first ``:`` — a second ``:`` (base64), a ``<`` (URL reference,
    unsupported here) or a plain value, from which exactly one
    separator space is stripped.
    """
    name, sep, rest = line.partition(":")
    if not sep:
        raise ValueError(f"LDIF line without a ':' separator: {line!r}")
    name = name.strip()
    if name == "":
        raise ValueError(f"LDIF line without an attribute name: {line!r}")
    if rest.startswith(":"):
        data = rest[1:].strip()
        try:
            value = base64.b64decode(data, validate=True).decode("utf-8")
        except (binascii.Error, UnicodeDecodeError) as exc:
            raise ValueError(
                f"undecodable base64 value in LDIF line {line!r}: {exc}"
            ) from None
        return name, value
    if rest.startswith("<"):
        raise ValueError(f"URL-valued LDIF lines are not supported: {line!r}")
    # Exactly one separator space — the rest of the value, including any
    # further leading/trailing whitespace, belongs to the value itself
    # (though the writer base64-encodes such values; see _is_safe).
    return name, rest[1:] if rest.startswith(" ") else rest


def _record_to_entry(lines: List[str]) -> Entry:
    dn_value = None
    attrs: List[tuple] = []
    for line in lines:
        name, value = _parse_attr_line(line)
        if name.lower() == "dn":
            dn_value = value
        else:
            attrs.append((name, value))
    if dn_value is None:
        raise ValueError(f"LDIF record without dn line: {lines!r}")
    entry = Entry(dn_value)
    # Group values per attribute and install them with put(), which
    # stores raw values verbatim.  add_values() would drop values that
    # are *matching-equivalent* to an earlier one (DIRECTORY_STRING
    # collapses whitespace, so "a b" and "a  b" normalize alike) and
    # break the byte-exact round trip the snapshot tier depends on.
    grouped: dict = {}
    for name, value in attrs:
        grouped.setdefault(name.lower(), (name, []))[1].append(value)
    for canonical, values in grouped.values():
        entry.put(canonical, values)
    return entry
