"""Provider-side durability: session journaling, snapshots, admission.

The §5 ReSync master keeps everything that makes cookies honorable —
session histories, pending queues, generations — in process memory, so
one master crash turns every active replica into a simultaneous full
resync: exactly the traffic blowup the cookie/history design exists to
avoid.  This module gives :class:`~repro.sync.resync.ResyncProvider`
a durable shadow of that state, in the spirit of directory
reconciliation: post-crash cost proportional to the *difference*, not
the content.

Three pieces:

* **Write-ahead journal + snapshots** — every state-changing provider
  event (committed master update, session create, poll, degraded
  resume, session end) is appended to a :class:`JournalBackend` as one
  JSON record; every ``snapshot_interval`` appends the full provider
  state is serialized and the journal truncated (compaction).
  ``ResyncProvider.recover()`` replays snapshot + tail to rebuild the
  exact pre-crash session state, so consumers resume from their
  existing cookies with an incremental delta.  Two backends:
  :class:`MemoryJournal` (replayable in-memory log for tests/benches —
  records are *serialized strings*, so torn tails and corruption are
  honest) and :class:`FileJournal` (``journal.jsonl`` +
  ``snapshot.json`` for the CLI).

* **Bounded histories** — :class:`DurabilityConfig` caps a session's
  pending history by entries and/or bytes; on overflow the session
  degrades to an incomplete-history resume (eq. 3 semantics) instead
  of growing without bound (enforced in
  :class:`~repro.sync.session.Session`).

* **Admission control** — :class:`AdmissionController` is a token
  bucket over full-content rebuilds.  When the bucket is empty the
  provider answers :class:`~repro.server.network.ServerBusy` (a
  transport-level busy with a ``retry_after_ms`` hint), which
  :class:`~repro.sync.resilient.ResilientConsumer` backs off from —
  so a post-crash resync storm is spread out instead of stampeding.
  The bucket refills in *logical* time (a fraction of a token per
  request the provider services), keeping benches deterministic.

Everything is metered under ``sync.durability.*`` / ``sync.admission.*``
(docs/OBSERVABILITY.md §2) and fault-injectable through the journal
damage hooks (``journal_truncate`` / ``journal_corrupt`` kinds in
:class:`~repro.server.faults.FaultSpec`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ldap.controls import SyncAction
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.query import Scope, SearchRequest
from ..obs.registry import MetricsRegistry
from ..server.network import ServerBusy
from ..server.operations import UpdateOp, UpdateRecord
from .protocol import SyncUpdate
from .session import Session

__all__ = [
    "DurabilityConfig",
    "JournalBackend",
    "MemoryJournal",
    "FileJournal",
    "AdmissionController",
]


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs for the durable provider.

    Attributes:
        snapshot_interval: journal appends between snapshots (compaction
            cadence; each snapshot truncates the journal).
        history_max_entries / history_max_bytes: per-session pending
            history caps; ``None`` disables that cap.  A session
            crossing either cap abandons its history and is served an
            incomplete-history resume (eq. 3) on its next poll.
        admission_burst: token-bucket size for concurrent full-content
            rebuilds; ``None`` disables admission control.
        admission_refill: tokens replenished per request the provider
            services (logical-time refill).
        admission_retry_after_ms: the busy response's backoff hint.
    """

    snapshot_interval: int = 256
    history_max_entries: Optional[int] = None
    history_max_bytes: Optional[int] = None
    admission_burst: Optional[int] = None
    admission_refill: float = 0.25
    admission_retry_after_ms: float = 50.0

    def __post_init__(self):
        if self.snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        for name in ("history_max_entries", "history_max_bytes", "admission_burst"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value!r}")
        if self.admission_refill <= 0:
            raise ValueError("admission_refill must be > 0")


# ----------------------------------------------------------------------
# wire serialization (journal records are plain-JSON dicts)
# ----------------------------------------------------------------------
def entry_to_wire(entry: Optional[Entry]) -> Optional[dict]:
    if entry is None:
        return None
    return {
        "dn": str(entry.dn),
        "attrs": {name: list(entry.get(name)) for name in entry.attribute_names()},
    }


def entry_from_wire(wire: Optional[dict]) -> Optional[Entry]:
    if wire is None:
        return None
    return Entry(wire["dn"], wire["attrs"])


def request_to_wire(request: SearchRequest) -> dict:
    return {
        "base": str(request.base),
        "scope": int(request.scope),
        "filter": str(request.filter),
        "attrs": sorted(request.attributes),
    }


def request_from_wire(wire: dict) -> SearchRequest:
    return SearchRequest(
        wire["base"], Scope(wire["scope"]), wire["filter"], wire["attrs"]
    )


def update_to_wire(update: SyncUpdate) -> dict:
    return {
        "action": update.action.value,
        "dn": str(update.dn),
        "entry": entry_to_wire(update.entry),
    }


def update_from_wire(wire: dict) -> SyncUpdate:
    return SyncUpdate(
        SyncAction(wire["action"]),
        DN.parse(wire["dn"]),
        entry_from_wire(wire["entry"]),
    )


def record_to_wire(record: UpdateRecord) -> dict:
    return {
        "csn": record.csn,
        "op": record.op.value,
        "dn": str(record.dn),
        "new_dn": str(record.new_dn) if record.new_dn is not None else None,
        "before": entry_to_wire(record.before),
        "after": entry_to_wire(record.after),
    }


def record_from_wire(wire: dict) -> UpdateRecord:
    return UpdateRecord(
        csn=wire["csn"],
        op=UpdateOp(wire["op"]),
        dn=DN.parse(wire["dn"]),
        before=entry_from_wire(wire["before"]),
        after=entry_from_wire(wire["after"]),
        new_dn=DN.parse(wire["new_dn"]) if wire["new_dn"] is not None else None,
    )


def session_to_wire(session: Session) -> dict:
    """Serialize one session's full resumable state (snapshot format)."""
    return {
        "sid": session.session_id,
        "req": request_to_wire(session.request),
        "pending": [update_to_wire(u) for u in session._pending.values()],
        "unacked": [update_to_wire(u) for u in session._unacked.values()],
        "content": sorted(str(dn) for dn in session.content_dns),
        "delivered": sorted(str(dn) for dn in session._delivered),
        "generation": session.generation,
        "polls": session.polls,
        "tick": session.last_active_tick,
        "persist": session.persist_queue is not None,
        "overflowed": session.history_overflowed,
        "pending_bytes": session.pending_bytes,
        "drain_csn": session.drain_csn,
        "prev_drain_csn": session.prev_drain_csn,
        "degraded_since": session.degraded_since_csn,
    }


def session_from_wire(wire: dict) -> Session:
    session = Session(wire["sid"], request_from_wire(wire["req"]))
    for uw in wire["pending"]:
        update = update_from_wire(uw)
        session._pending[update.dn] = update
    for uw in wire["unacked"]:
        update = update_from_wire(uw)
        session._unacked[update.dn] = update
    session.content_dns = {DN.parse(d) for d in wire["content"]}
    session._delivered = {DN.parse(d) for d in wire["delivered"]}
    session.generation = wire["generation"]
    session.polls = wire["polls"]
    session.last_active_tick = wire["tick"]
    session.persist_queue = [] if wire["persist"] else None
    session.history_overflowed = wire["overflowed"]
    session.pending_bytes = wire["pending_bytes"]
    session.drain_csn = wire["drain_csn"]
    session.prev_drain_csn = wire["prev_drain_csn"]
    session.degraded_since_csn = wire["degraded_since"]
    return session


# ----------------------------------------------------------------------
# journal backends
# ----------------------------------------------------------------------
class JournalBackend:
    """Storage contract for the provider's write-ahead journal.

    One *snapshot* (the serialized provider state at compaction time)
    plus an append-only sequence of JSON *records* after it.  Loading
    is damage-tolerant: a torn or corrupted record ends the readable
    stream there; everything after it is dropped and counted, never
    silently misparsed.  The two ``damage_*`` hooks emulate the crash
    leaving the journal torn/corrupted (driven by
    :class:`~repro.server.faults.FaultyNetwork`).
    """

    def append(self, record: dict) -> None:
        raise NotImplementedError

    def write_snapshot(self, snapshot: dict) -> None:
        """Atomically replace the snapshot and truncate the journal."""
        raise NotImplementedError

    def load(self) -> Tuple[Optional[dict], List[dict], int]:
        """``(snapshot | None, readable records, dropped record count)``.

        A corrupt snapshot voids everything (records after it reference
        state the snapshot held): returns ``(None, [], all dropped)``.
        """
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError

    @property
    def record_count(self) -> int:
        raise NotImplementedError

    def damage_truncate(self, keep_fraction: float) -> None:
        """Tear the journal tail: keep roughly *keep_fraction* of it."""
        raise NotImplementedError

    def damage_corrupt(self, position_fraction: float) -> None:
        """Corrupt one record (or the snapshot when the journal is
        empty) at roughly *position_fraction* through the log."""
        raise NotImplementedError


class MemoryJournal(JournalBackend):
    """In-memory journal for tests and benches.

    Records are held as their *serialized* JSON strings — not live
    objects — so replay genuinely round-trips through the wire format
    and the damage hooks can tear or corrupt real bytes.
    """

    def __init__(self):
        self._snapshot: Optional[str] = None
        self._records: List[str] = []

    def append(self, record: dict) -> None:
        self._records.append(json.dumps(record, sort_keys=True))

    def write_snapshot(self, snapshot: dict) -> None:
        self._snapshot = json.dumps(snapshot, sort_keys=True)
        self._records = []

    def load(self) -> Tuple[Optional[dict], List[dict], int]:
        snapshot: Optional[dict] = None
        if self._snapshot is not None:
            try:
                snapshot = json.loads(self._snapshot)
            except ValueError:
                return None, [], 1 + len(self._records)
        records: List[dict] = []
        dropped = 0
        for i, line in enumerate(self._records):
            try:
                records.append(json.loads(line))
            except ValueError:
                dropped = len(self._records) - i
                break
        return snapshot, records, dropped

    @property
    def size_bytes(self) -> int:
        size = len(self._snapshot) if self._snapshot is not None else 0
        return size + sum(len(line) + 1 for line in self._records)

    @property
    def record_count(self) -> int:
        return len(self._records)

    def damage_truncate(self, keep_fraction: float) -> None:
        keep = int(len(self._records) * keep_fraction)
        del self._records[keep:]

    def damage_corrupt(self, position_fraction: float) -> None:
        if self._records:
            i = min(int(len(self._records) * position_fraction), len(self._records) - 1)
            self._records[i] = self._records[i][: len(self._records[i]) // 2] + "\x00"
        elif self._snapshot is not None:
            self._snapshot = self._snapshot[: len(self._snapshot) // 2] + "\x00"


class FileJournal(JournalBackend):
    """File-backed journal: ``journal.jsonl`` + ``snapshot.json``.

    Appends are flushed per record; snapshots are written to a temp
    file and atomically renamed into place before the journal is
    truncated, so a crash between the two leaves a readable state.
    """

    JOURNAL_NAME = "journal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.journal_path = os.path.join(directory, self.JOURNAL_NAME)
        self.snapshot_path = os.path.join(directory, self.SNAPSHOT_NAME)
        self._fh = None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def append(self, record: dict) -> None:
        if self._fh is None:
            self._fh = open(self.journal_path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def write_snapshot(self, snapshot: dict) -> None:
        tmp = self.snapshot_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, sort_keys=True)
        os.replace(tmp, self.snapshot_path)
        self.close()
        open(self.journal_path, "w", encoding="utf-8").close()

    def _read_lines(self) -> List[str]:
        self.close()
        if not os.path.exists(self.journal_path):
            return []
        with open(self.journal_path, "r", encoding="utf-8") as fh:
            return [line for line in fh.read().splitlines() if line]

    def load(self) -> Tuple[Optional[dict], List[dict], int]:
        lines = self._read_lines()
        snapshot: Optional[dict] = None
        if os.path.exists(self.snapshot_path):
            try:
                with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                    snapshot = json.load(fh)
            except ValueError:
                return None, [], 1 + len(lines)
        records: List[dict] = []
        dropped = 0
        for i, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError:
                dropped = len(lines) - i
                break
        return snapshot, records, dropped

    @property
    def size_bytes(self) -> int:
        size = 0
        for path in (self.journal_path, self.snapshot_path):
            if os.path.exists(path):
                size += os.path.getsize(path)
        return size

    @property
    def record_count(self) -> int:
        return len(self._read_lines())

    def damage_truncate(self, keep_fraction: float) -> None:
        lines = self._read_lines()
        keep = int(len(lines) * keep_fraction)
        with open(self.journal_path, "w", encoding="utf-8") as fh:
            fh.write("".join(line + "\n" for line in lines[:keep]))

    def damage_corrupt(self, position_fraction: float) -> None:
        lines = self._read_lines()
        if lines:
            i = min(int(len(lines) * position_fraction), len(lines) - 1)
            lines[i] = lines[i][: len(lines[i]) // 2] + "\x00"
            with open(self.journal_path, "w", encoding="utf-8") as fh:
                fh.write("".join(line + "\n" for line in lines))
        elif os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                text = fh.read()
            with open(self.snapshot_path, "w", encoding="utf-8") as fh:
                fh.write(text[: len(text) // 2] + "\x00")


# ----------------------------------------------------------------------
# resync-storm admission control
# ----------------------------------------------------------------------
class AdmissionController:
    """Token bucket over full-content rebuilds (resync-storm control).

    One token buys one full-content rebuild (a null-cookie request in
    either mode); the bucket refills by ``refill`` per request the
    provider services — logical time, so a rejected consumer that
    backs off and retries is eventually admitted even when *every*
    consumer needs a rebuild (no wall-clock dependency, deterministic
    in benches).  Empty bucket → :class:`ServerBusy` carrying
    ``retry_after_ms``, the hint
    :class:`~repro.sync.resilient.ResilientConsumer` honors as a
    minimum backoff.
    """

    def __init__(
        self,
        burst: int,
        refill: float,
        retry_after_ms: float,
        registry: MetricsRegistry,
    ):
        self.burst = burst
        self.refill = refill
        self.retry_after_ms = retry_after_ms
        self.tokens = float(burst)
        self._admitted = registry.counter("sync.admission.admitted")
        self._rejected = registry.counter("sync.admission.rejected")
        self._tokens_gauge = registry.gauge("sync.admission.tokens")
        self._tokens_gauge.set(self.tokens)

    def replenish(self) -> None:
        """One serviced request's worth of logical-time refill."""
        self.tokens = min(float(self.burst), self.tokens + self.refill)
        self._tokens_gauge.set(self.tokens)

    def admit(self) -> None:
        """Spend one token on a full-content rebuild, or refuse."""
        self.replenish()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self._tokens_gauge.set(self.tokens)
            self._admitted.inc()
            return
        self._rejected.inc()
        raise ServerBusy(
            "full-content rebuild refused: resync-storm admission control",
            retry_after_ms=self.retry_after_ms,
        )

    def reset(self) -> None:
        """Refill to burst (provider restart/recovery)."""
        self.tokens = float(self.burst)
        self._tokens_gauge.set(self.tokens)
