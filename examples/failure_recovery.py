#!/usr/bin/env python3
"""ReSync failure recovery: lost responses, retries, crash reloads.

Demonstrates the delivery semantics documented in docs/PROTOCOL.md §5:
the master retains each served batch until the replica's next cookie
acknowledges it, so a lost response is recovered by retrying with the
previous cookie — and a crashed replica simply reloads.

Run:  python examples/failure_recovery.py
"""

from repro.ldap import Entry, ReSyncControl, Scope, SearchRequest, SyncMode
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider, SyncedContent


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz", {"objectClass": ["person"], "cn": name, "sn": "X"}
    )


def main() -> None:
    master = DirectoryServer("master")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for name in ("E1", "E2", "E3"):
        master.add(person(name))

    S = SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)")
    provider = ResyncProvider(master)
    content = SyncedContent(S)
    content.poll(provider)
    print(f"initial content: {sorted(str(d) for d in content.dns())}")
    print(f"cookie: {content.cookie}")

    # ------------------------------------------------------------------
    print("\n[master] deletes E1; the replica polls but the response is LOST")
    master.delete("cn=E1,o=xyz")
    provider.handle(S, ReSyncControl(mode=SyncMode.POLL, cookie=content.cookie))
    print(f"replica still holds: {sorted(str(d) for d in content.dns())}")
    print(f"replica still has the old cookie: {content.cookie}")

    print("\n[master] meanwhile also adds E4")
    master.add(person("E4"))

    print("\nreplica retries with its OLD cookie:")
    response = content.poll(provider)
    for update in response.updates:
        print(f"  <- {update.action.value:<7} {update.dn}")
    print(f"converged: {content.matches_master(master)}")

    # ------------------------------------------------------------------
    print("\nreplica crashes (all local state lost); restarts with a null cookie")
    master.modify("cn=E2,o=xyz", [Modification.replace("title", "post-crash")])
    reborn = SyncedContent(S)
    response = reborn.poll(provider)
    print(f"full reload delivered {len(response.updates)} entries")
    print(f"converged: {reborn.matches_master(master)}")

    # ------------------------------------------------------------------
    print("\na cookie two generations old cannot be resumed:")
    stale = reborn.cookie
    master.delete("cn=E4,o=xyz")
    reborn.poll(provider)
    master.modify("cn=E2,o=xyz", [Modification.replace("title", "newer")])
    reborn.poll(provider)
    reborn.cookie = stale
    response = reborn.resilient_poll(provider)  # falls back to a reload
    print(f"resilient poll recovered via reload ({len(response.updates)} entries)")
    print(f"converged: {reborn.matches_master(master)}")


if __name__ == "__main__":
    main()
