"""Cost-based search planning for the entry store.

Directory workloads are read-dominated (§1); the paper's replication
algorithms assume filter evaluation at the master is cheap.  The planner
makes it cheap by choosing, per search filter, *how* to produce the
candidate DN set the server then verifies:

* every leaf predicate gets a **selectivity estimate** — an upper bound
  on its candidate-set size read from index posting sizes without
  materializing any set (``estimate*`` methods in
  :mod:`repro.server.indexes`);
* an AND **intersects multiple indexable conjuncts**, cheapest first,
  stopping when the running set is small enough that further
  intersection costs more than it saves;
* an OR **unions** its children's candidate sets — the union is a scan
  only when some child is itself unplannable;
* NOT (and anything else without a sound index strategy) falls back to
  a **scope scan**;
* a filter whose whole candidate set would approach the store size is
  answered by a scan outright — walking the region beats materializing
  a near-total set and then probing it.

Soundness invariant: a plan's candidate set is always a **superset** of
the entries matching the filter within the store (property-tested).  The
server re-verifies every candidate, so the planner can only cost speed,
never correctness.

Plans carry a ``strategy`` string which the server feeds into the
``server.plan.*`` metrics (docs/PLANNER.md, docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from ..ldap.dn import DN
from ..ldap.filters import (
    And,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Or,
    Predicate,
    Present,
    Substring,
)

__all__ = ["SearchPlan", "SearchPlanner"]


@dataclass
class SearchPlan:
    """Outcome of planning one filter.

    ``candidates`` is None for a scope scan; otherwise it is a sound
    candidate superset.  ``estimate`` is the cost-model upper bound the
    decision was based on (for a scan: the store size).
    """

    strategy: str
    candidates: Optional[Set[DN]]
    estimate: int

    #: strategies a plan can report (the ``strategy`` label values of
    #: the ``server.plan.strategy`` counter).
    STRATEGIES = (
        "scan",        # no index help — walk the scope region
        "equality",    # single equality posting list
        "presence",    # presence index
        "substring",   # n-gram candidate set
        "range",       # ordering-index range scan
        "intersect",   # AND of several indexable conjuncts
        "union",       # OR of indexable children
        "absent",      # predicate over an attribute no entry holds
    )

    @property
    def is_scan(self) -> bool:
        return self.candidates is None


class _NodePlan:
    """Internal per-node plan: an estimate plus a lazy materializer.

    ``materialize`` may return None (e.g. a substring assertion whose
    components all normalize empty); callers treat that as "no candidate
    set from this node".
    """

    __slots__ = ("kind", "estimate", "materialize")

    def __init__(
        self,
        kind: str,
        estimate: int,
        materialize: Callable[[], Optional[Set[DN]]],
    ):
        self.kind = kind
        self.estimate = estimate
        self.materialize = materialize


class SearchPlanner:
    """Plans filters against one :class:`repro.server.backend.EntryStore`.

    The cost model is deliberately simple — posting sizes are exact for
    equality/presence/range and upper bounds for substring — because the
    estimates only need to *rank* strategies, not predict runtimes.
    """

    #: candidate sets at least this fraction of the store degrade to a
    #: scan — probing a near-total set costs more than walking.
    SCAN_FRACTION = 0.5
    #: ...but tiny sets are always worth returning, whatever the ratio.
    MIN_SCAN_SIZE = 16
    #: stop intersecting once the running AND set is this small.
    INTERSECT_STOP = 8
    #: skip a conjunct whose estimate exceeds this multiple of the
    #: running set — materializing a huge posting list to trim an
    #: already-small set is a net loss.
    INTERSECT_BLOWUP = 4

    def __init__(self, store):
        self._store = store

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def plan(self, flt: Filter) -> SearchPlan:
        """The cheapest sound plan for *flt* over the current store."""
        total = len(self._store)
        node = self._plan_node(flt)
        if node is None:
            return SearchPlan("scan", None, total)
        if (
            node.estimate >= total * self.SCAN_FRACTION
            and node.estimate >= self.MIN_SCAN_SIZE
        ):
            return SearchPlan("scan", None, node.estimate)
        candidates = node.materialize()
        if candidates is None:
            return SearchPlan("scan", None, total)
        return SearchPlan(node.kind, candidates, node.estimate)

    # ------------------------------------------------------------------
    # recursive planning
    # ------------------------------------------------------------------
    def _plan_node(self, flt: Filter) -> Optional[_NodePlan]:
        if isinstance(flt, Predicate):
            return self._plan_predicate(flt)
        if isinstance(flt, And):
            plans = [self._plan_node(child) for child in flt.children]
            return self._plan_and([p for p in plans if p is not None])
        if isinstance(flt, Or):
            plans = [self._plan_node(child) for child in flt.children]
            if not plans or any(p is None for p in plans):
                return None
            return self._plan_or(plans)
        # NOT (and unknown nodes): the complement of an index lookup is
        # not cheaply available; only a scan is sound.
        return None

    def _plan_and(self, plans: List[_NodePlan]) -> Optional[_NodePlan]:
        if not plans:
            return None
        plans.sort(key=lambda p: p.estimate)

        def materialize() -> Optional[Set[DN]]:
            current: Optional[Set[DN]] = None
            for node in plans:
                if current is not None:
                    if len(current) <= self.INTERSECT_STOP:
                        break
                    if node.estimate > max(
                        len(current) * self.INTERSECT_BLOWUP, 64
                    ):
                        break
                found = node.materialize()
                if found is None:
                    continue
                current = found if current is None else current & found
                if not current:
                    return current
            return current

        kind = "intersect" if len(plans) > 1 else plans[0].kind
        return _NodePlan(kind, plans[0].estimate, materialize)

    def _plan_or(self, plans: List[_NodePlan]) -> _NodePlan:
        estimate = min(sum(p.estimate for p in plans), len(self._store))

        def materialize() -> Optional[Set[DN]]:
            union: Set[DN] = set()
            for node in plans:
                found = node.materialize()
                if found is None:
                    return None
                union |= found
            return union

        return _NodePlan("union", estimate, materialize)

    def _plan_predicate(self, pred: Predicate) -> Optional[_NodePlan]:
        index = self._store.index_for(pred.attr_key)
        if index is None:
            if self._store.indexes_all_attributes:
                # Every attribute ever stored has an index set, so this
                # attribute appears on no entry: a positive assertion on
                # it matches nothing.
                return _NodePlan("absent", 0, set)
            return None
        if isinstance(pred, Present):
            presence = index.presence
            return _NodePlan("presence", len(presence), presence.dns)
        if isinstance(pred, Equality):
            equality, value = index.equality, pred.value
            return _NodePlan(
                "equality", equality.estimate(value), lambda: equality.lookup(value)
            )
        if isinstance(pred, Substring):
            substring, components = index.substring, pred.components
            estimate = substring.estimate(components)
            if estimate is None:
                # Only short components: the gram-vocabulary fallback is
                # sound but its size is unknown; bound by presence.
                estimate = len(index.presence)
            return _NodePlan(
                "substring", estimate, lambda: substring.candidates(components)
            )
        if isinstance(pred, (GreaterOrEqual, LessOrEqual)):
            ordering = index.ordering
            if ordering is None:
                # The attribute's syntax defines no ordering; matching
                # returns False for every entry (see repro.ldap.matching).
                return _NodePlan("absent", 0, set)
            value = pred.value
            if isinstance(pred, GreaterOrEqual):
                return _NodePlan(
                    "range",
                    ordering.estimate_greater_or_equal(value),
                    lambda: ordering.greater_or_equal(value),
                )
            return _NodePlan(
                "range",
                ordering.estimate_less_or_equal(value),
                lambda: ordering.less_or_equal(value),
            )
        # Approx (and future predicate kinds) have no index strategy.
        return None
