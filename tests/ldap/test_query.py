"""Tests for the SearchRequest model and scope semantics."""

import pytest

from repro.ldap import DN, Entry, MATCH_ALL, Scope, SearchRequest
from repro.ldap.query import ALL_ATTRIBUTES


@pytest.fixture()
def entry() -> Entry:
    return Entry(
        "cn=a,ou=r,o=xyz", {"objectClass": ["person"], "cn": "a", "sn": "b"}
    )


class TestConstruction:
    def test_string_base_and_filter(self):
        q = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
        assert q.base == DN.parse("o=xyz")
        assert str(q.filter) == "(sn=Doe)"

    def test_defaults(self):
        q = SearchRequest("o=xyz")
        assert q.scope is Scope.SUB
        assert q.filter == MATCH_ALL
        assert q.attributes == ALL_ATTRIBUTES

    def test_attribute_set_lowercased(self):
        q = SearchRequest("o=xyz", attributes=["Mail", "CN"])
        assert q.attributes == frozenset({"mail", "cn"})

    def test_empty_attributes_means_all(self):
        assert SearchRequest("o=xyz", attributes=[]).wants_all_attributes

    def test_hashable_and_equal(self):
        a = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
        b = SearchRequest("O=XYZ", Scope.SUB, "(sn=Doe)")
        assert a == b
        assert len({a, b}) == 1

    def test_scope_ordering(self):
        assert Scope.BASE < Scope.ONE < Scope.SUB
        assert Scope.BASE == 0 and Scope.SUB == 2


class TestScopeRegions:
    def test_base_scope(self):
        q = SearchRequest("ou=r,o=xyz", Scope.BASE)
        assert q.in_scope(DN.parse("ou=r,o=xyz"))
        assert not q.in_scope(DN.parse("cn=a,ou=r,o=xyz"))

    def test_one_scope(self):
        q = SearchRequest("ou=r,o=xyz", Scope.ONE)
        assert q.in_scope(DN.parse("cn=a,ou=r,o=xyz"))
        assert not q.in_scope(DN.parse("ou=r,o=xyz"))
        assert not q.in_scope(DN.parse("cn=b,cn=a,ou=r,o=xyz"))

    def test_sub_scope(self):
        q = SearchRequest("ou=r,o=xyz", Scope.SUB)
        assert q.in_scope(DN.parse("ou=r,o=xyz"))
        assert q.in_scope(DN.parse("cn=b,cn=a,ou=r,o=xyz"))
        assert not q.in_scope(DN.parse("o=xyz"))

    def test_root_base_sub_covers_all(self):
        q = SearchRequest("", Scope.SUB)
        assert q.in_scope(DN.parse("cn=deep,ou=r,o=xyz"))


class TestSelectsAndProject:
    def test_selects(self, entry):
        assert SearchRequest("o=xyz", Scope.SUB, "(sn=b)").selects(entry)
        assert not SearchRequest("o=abc", Scope.SUB, "(sn=b)").selects(entry)
        assert not SearchRequest("o=xyz", Scope.SUB, "(sn=z)").selects(entry)

    def test_project_all(self, entry):
        q = SearchRequest("o=xyz")
        assert q.project(entry).has_attribute("sn")

    def test_project_subset(self, entry):
        q = SearchRequest("o=xyz", attributes=["cn"])
        projected = q.project(entry)
        assert projected.has_attribute("cn")
        assert not projected.has_attribute("sn")


class TestDerived:
    def test_with_base(self):
        q = SearchRequest("o=xyz", Scope.ONE, "(a=1)", ["cn"])
        r = q.with_base("c=us,o=xyz")
        assert r.base == DN.parse("c=us,o=xyz")
        assert r.scope is Scope.ONE
        assert r.filter == q.filter
        assert r.attributes == q.attributes

    def test_with_filter(self):
        q = SearchRequest("o=xyz")
        r = q.with_filter("(sn=x)")
        assert str(r.filter) == "(sn=x)"
        assert r.base == q.base

    def test_template_property(self):
        q = SearchRequest("o=xyz", Scope.SUB, "(&(sn=Doe)(givenName=J))")
        assert q.template == "(&(givenname=_)(sn=_))"

    def test_str_renders_root_base(self):
        text = str(SearchRequest("", Scope.SUB, "(a=1)"))
        assert 'base=""' in text
