"""Tests for server-side session state and action coalescing."""

import pytest

from repro.ldap import DN, Entry, Scope, SearchRequest, SyncAction
from repro.sync import Session, SessionStore, SyncProtocolError


def entry(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


@pytest.fixture()
def session() -> Session:
    return Session("s1", SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)"))


def dn(name: str) -> DN:
    return DN.parse(f"cn={name},o=xyz")


class TestObserve:
    def test_move_in_is_add(self, session):
        session.observe(False, True, dn("a"), dn("a"), entry("a"))
        updates = session.drain()
        assert [u.action for u in updates] == [SyncAction.ADD]

    def test_move_out_is_delete(self, session):
        session.observe(True, False, dn("a"), dn("a"), None)
        assert [u.action for u in session.drain()] == [SyncAction.DELETE]

    def test_stay_in_is_modify(self, session):
        session.observe(True, True, dn("a"), dn("a"), entry("a"))
        assert [u.action for u in session.drain()] == [SyncAction.MODIFY]

    def test_rename_in_content_is_delete_plus_add(self, session):
        """Figure 3: E3 renamed to E5 — delete old DN, add new DN."""
        session.observe(True, True, dn("e3"), dn("e5"), entry("e5"))
        updates = session.drain()
        assert [(u.action, str(u.dn)) for u in updates] == [
            (SyncAction.DELETE, "cn=e3,o=xyz"),
            (SyncAction.ADD, "cn=e5,o=xyz"),
        ]

    def test_never_in_content_ignored(self, session):
        session.observe(False, False, dn("a"), dn("a"), entry("a"))
        assert session.drain() == []


class TestCoalescing:
    def test_add_then_modify_is_add(self, session):
        session.observe(False, True, dn("a"), dn("a"), entry("a"))
        session.observe(True, True, dn("a"), dn("a"), entry("a", "42"))
        updates = session.drain()
        assert [u.action for u in updates] == [SyncAction.ADD]

    def test_add_then_delete_vanishes(self, session):
        session.observe(False, True, dn("a"), dn("a"), entry("a"))
        session.observe(True, False, dn("a"), dn("a"), None)
        assert session.drain() == []

    def test_delivered_entry_leaving_and_reentering_keeps_delete(self, session):
        """Regression: delete+add+delete of a *delivered* entry must net
        to a DELETE, not vanish.

        The ADD+DELETE→nothing rule only holds for entries the consumer
        never saw.  An entry from the initial content that leaves the
        filtered content, re-enters (DELETE coalesced with ADD → ADD)
        and leaves again must still emit a DELETE, or the replica keeps
        a stale copy forever.
        """
        session.seed_content([entry("a")])
        session.observe(True, False, dn("a"), dn("a"), None)  # leaves
        session.observe(False, True, dn("a"), dn("a"), entry("a"))  # re-enters
        session.observe(True, False, dn("a"), dn("a"), None)  # leaves again
        assert [u.action for u in session.drain()] == [SyncAction.DELETE]

    def test_undelivered_entry_entering_and_leaving_still_vanishes(self, session):
        """The counterpart: an entry the consumer never received that
        enters and leaves between polls generates no traffic at all."""
        session.seed_content([entry("b")])
        session.observe(False, True, dn("a"), dn("a"), entry("a"))
        session.observe(True, False, dn("a"), dn("a"), None)
        assert session.drain() == []

    def test_modify_then_delete_is_delete(self, session):
        session.observe(True, True, dn("a"), dn("a"), entry("a"))
        session.observe(True, False, dn("a"), dn("a"), None)
        assert [u.action for u in session.drain()] == [SyncAction.DELETE]

    def test_delete_then_add_is_add(self, session):
        session.observe(True, False, dn("a"), dn("a"), None)
        session.observe(False, True, dn("a"), dn("a"), entry("a"))
        updates = session.drain()
        assert [u.action for u in updates] == [SyncAction.ADD]

    def test_modify_then_modify_keeps_latest(self, session):
        first = entry("a")
        second = entry("a")
        second.put("title", "latest")
        session.observe(True, True, dn("a"), dn("a"), first)
        session.observe(True, True, dn("a"), dn("a"), second)
        updates = session.drain()
        assert updates[0].entry.first("title") == "latest"

    def test_drain_clears_pending(self, session):
        session.observe(False, True, dn("a"), dn("a"), entry("a"))
        session.drain()
        assert session.drain() == []
        assert session.pending_count == 0

    def test_deletes_ordered_before_adds(self, session):
        session.observe(False, True, dn("b"), dn("b"), entry("b"))
        session.observe(True, False, dn("a"), dn("a"), None)
        actions = [u.action for u in session.drain()]
        assert actions == [SyncAction.DELETE, SyncAction.ADD]


class TestContentTracking:
    def test_seed_and_track(self, session):
        session.seed_content([entry("a"), entry("b")])
        assert session.content_dns == {dn("a"), dn("b")}
        session.observe(True, False, dn("a"), dn("a"), None)
        assert session.content_dns == {dn("b")}
        session.observe(False, True, dn("c"), dn("c"), entry("c"))
        assert dn("c") in session.content_dns


class TestSessionStore:
    def test_create_and_lookup(self):
        store = SessionStore()
        s = store.create(SearchRequest("o=xyz"))
        cookie = store.cookie_for(s)
        assert store.lookup(cookie) is s

    def test_unknown_cookie_rejected(self):
        store = SessionStore()
        with pytest.raises(SyncProtocolError):
            store.lookup("nope:0")

    def test_end_removes(self):
        store = SessionStore()
        s = store.create(SearchRequest("o=xyz"))
        cookie = store.cookie_for(s)
        store.end(cookie)
        with pytest.raises(SyncProtocolError):
            store.lookup(cookie)

    def test_distinct_ids(self):
        store = SessionStore()
        a = store.create(SearchRequest("o=xyz"))
        b = store.create(SearchRequest("o=xyz"))
        assert a.session_id != b.session_id
        assert len(store) == 2

    def test_idle_expiry(self):
        store = SessionStore(idle_limit=3)
        stale = store.create(SearchRequest("o=xyz"))
        active = store.create(SearchRequest("o=abc"))
        stale_cookie = store.cookie_for(stale)
        active_cookie = store.cookie_for(active)
        for _ in range(5):
            store.lookup(active_cookie)
        with pytest.raises(SyncProtocolError):
            store.lookup(stale_cookie)
