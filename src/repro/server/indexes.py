"""Attribute indexes for the in-memory directory backend.

Directory servers are optimized for read access (§1); real servers keep
per-attribute indexes so that equality and substring filters do not scan
the whole database.  The simulated backend does the same:

* :class:`EqualityIndex` — normalized value → set of DNs,
* :class:`PresenceIndex` — DNs holding the attribute at all (refcounted
  over values), answering ``(attr=*)`` and feeding planner estimates,
* :class:`SubstringIndex` — n-gram (trigram by default) posting lists,
  giving candidate sets for substring filters; candidates are verified
  against the real filter by the caller,
* :class:`OrderingIndex` — sorted list of (typed key, DN) pairs
  answering ``>=`` / ``<=`` range scans under the attribute's syntax:
  integer-syntax values compare numerically, not lexicographically.

Indexes return *candidate supersets* (every true match is included, some
non-matches may be); the backend always re-verifies candidates with
:func:`repro.ldap.matching.matches`, so index bugs can cost speed but
never correctness.  Each index also exposes a cheap ``estimate*``
method — an upper bound on its candidate-set size computed without
materializing the set — which the cost-based search planner
(:mod:`repro.server.planner`) uses to rank predicates by selectivity.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ldap.attributes import AttributeRegistry, AttributeType
from ..ldap.dn import DN
from ..ldap.entry import Entry

__all__ = [
    "EqualityIndex",
    "PresenceIndex",
    "SubstringIndex",
    "OrderingIndex",
    "AttributeIndexSet",
    "ContentIndex",
]


class EqualityIndex:
    """Maps normalized attribute values to the DNs holding them."""

    def __init__(self, atype: AttributeType):
        self._atype = atype
        self._postings: Dict[object, Set[DN]] = defaultdict(set)

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            self._postings[self._atype.normalize(value)].add(dn)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            key = self._atype.normalize(value)
            postings = self._postings.get(key)
            if postings is not None:
                postings.discard(dn)
                if not postings:
                    del self._postings[key]

    def lookup(self, value: str) -> Set[DN]:
        """DNs holding *value* (exact, normalized)."""
        return set(self._postings.get(self._atype.normalize(value), ()))

    def estimate(self, value: str) -> int:
        """Posting-list size for *value* without copying the set."""
        return len(self._postings.get(self._atype.normalize(value), ()))

    def __len__(self) -> int:
        return sum(len(p) for p in self._postings.values())


class PresenceIndex:
    """DNs holding at least one value of the attribute (refcounted)."""

    def __init__(self):
        self._counts: Dict[DN, int] = {}

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        n = sum(1 for _ in values)
        if n:
            self._counts[dn] = self._counts.get(dn, 0) + n

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        n = sum(1 for _ in values)
        if not n:
            return
        remaining = self._counts.get(dn, 0) - n
        if remaining > 0:
            self._counts[dn] = remaining
        else:
            self._counts.pop(dn, None)

    def dns(self) -> Set[DN]:
        """All DNs holding the attribute."""
        return set(self._counts)

    def __len__(self) -> int:
        return len(self._counts)


def _ngrams(text: str, n: int) -> Set[str]:
    if len(text) < n:
        return {text} if text else set()
    return {text[i : i + n] for i in range(len(text) - n + 1)}


class SubstringIndex:
    """N-gram index giving candidate DNs for substring assertions."""

    def __init__(self, atype: AttributeType, ngram: int = 3):
        self._atype = atype
        self._ngram = ngram
        self._postings: Dict[str, Set[DN]] = defaultdict(set)

    def _grams_of_value(self, value: str) -> Set[str]:
        return _ngrams(str(self._atype.normalize(value)), self._ngram)

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            for gram in self._grams_of_value(value):
                self._postings[gram].add(dn)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            for gram in self._grams_of_value(value):
                postings = self._postings.get(gram)
                if postings is not None:
                    postings.discard(dn)
                    if not postings:
                        del self._postings[gram]

    def _short_candidates(self, component: str) -> Set[DN]:
        """Candidate DNs for a component shorter than the n-gram size.

        Any value containing the component has some n-gram — or, for
        values shorter than the gram size, its full indexed text —
        containing it, so a scan over the (bounded) gram vocabulary
        unioning matching postings is a sound superset.
        """
        found: Set[DN] = set()
        for gram, postings in self._postings.items():
            if component in gram:
                found |= postings
        return found

    def candidates(self, components: Iterable[str]) -> Optional[Set[DN]]:
        """Candidate DNs for a substring assertion with *components*.

        Long components intersect their n-gram posting lists; short
        components fall back to a gram-vocabulary scan, so even a
        two-letter assertion prunes instead of forcing "scan all".
        Returns None only when every component normalizes to the empty
        string.
        """
        result: Optional[Set[DN]] = None
        usable = False
        for component in components:
            normalized = str(self._atype.normalize(component))
            if not normalized:
                continue
            usable = True
            if len(normalized) < self._ngram:
                postings = self._short_candidates(normalized)
                result = postings if result is None else (result & postings)
                if not result:
                    return set()
                continue
            for gram in _ngrams(normalized, self._ngram):
                postings = self._postings.get(gram, set())
                result = set(postings) if result is None else (result & postings)
                if not result:
                    return set()
        return result if usable else None

    def estimate(self, components: Iterable[str]) -> Optional[int]:
        """Upper bound on the candidate-set size, or None when unknown.

        Long components use their smallest n-gram posting list; short
        components bound their fallback scan by the summed sizes of the
        postings of every vocabulary gram containing them.  Returns None
        only when every component normalizes to the empty string.
        """
        best: Optional[int] = None
        for component in components:
            normalized = str(self._atype.normalize(component))
            if not normalized:
                continue
            if len(normalized) < self._ngram:
                size = sum(
                    len(postings)
                    for gram, postings in self._postings.items()
                    if normalized in gram
                )
            else:
                size = min(
                    len(self._postings.get(gram, ()))
                    for gram in _ngrams(normalized, self._ngram)
                )
            if best is None or size < best:
                best = size
        return best


# Typed sort-key tags: integers order before strings so each segment of
# the sorted key list is internally same-typed (and thus comparable).
_INT_TAG = 0
_STR_TAG = 1


def _typed_key(normalized) -> Tuple[int, object]:
    if isinstance(normalized, int):
        return (_INT_TAG, normalized)
    return (_STR_TAG, str(normalized))


class OrderingIndex:
    """Sorted-value index answering ordering (range) assertions.

    Keys are syntax-aware: an integer-syntax attribute sorts its values
    numerically (``9 < 10``), not by their string form (``"10" < "9"``).
    Values whose normalization degrades to a string (schema-violating
    data under an integer syntax) live in a separate key segment; range
    lookups include the *whole* other segment, because
    :func:`repro.ldap.matching.compare_values` falls back to string
    comparison for mixed types and either side of the range could match.
    With clean data the other segment is empty and lookups are exact.
    """

    def __init__(self, atype: AttributeType):
        self._atype = atype
        # Parallel sorted structures keyed (type tag, value, tiebreak).
        self._keys: List[Tuple[int, object, int]] = []
        self._dns: List[DN] = []
        self._counter = 0

    def _key(self, value: str) -> Tuple[int, object]:
        return _typed_key(self._atype.normalize(value))

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            tag, norm = self._key(value)
            key = (tag, norm, self._counter)
            self._counter += 1
            pos = bisect.bisect_left(self._keys, key)
            self._keys.insert(pos, key)
            self._dns.insert(pos, dn)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            tag, norm = self._key(value)
            pos = bisect.bisect_left(self._keys, (tag, norm, -1))
            while pos < len(self._keys) and self._keys[pos][:2] == (tag, norm):
                if self._dns[pos] == dn:
                    del self._keys[pos]
                    del self._dns[pos]
                    break
                pos += 1

    def _segment(self, tag: int) -> Tuple[int, int]:
        """[start, end) positions of the keys sharing *tag*."""
        start = bisect.bisect_left(self._keys, (tag,))
        end = bisect.bisect_left(self._keys, (tag + 1,))
        return start, end

    def greater_or_equal(self, value: str) -> Set[DN]:
        tag, norm = self._key(value)
        start, _end = self._segment(tag)
        pos = bisect.bisect_left(self._keys, (tag, norm, -1))
        # In-segment range plus every differently-typed key (mixed-type
        # comparisons degrade to strings and may match either way).
        return set(self._dns[:start]) | set(self._dns[pos:])

    def less_or_equal(self, value: str) -> Set[DN]:
        tag, norm = self._key(value)
        _start, end = self._segment(tag)
        pos = bisect.bisect_right(self._keys, (tag, norm, self._counter))
        return set(self._dns[:pos]) | set(self._dns[end:])

    def estimate_greater_or_equal(self, value: str) -> int:
        tag, norm = self._key(value)
        start, _end = self._segment(tag)
        pos = bisect.bisect_left(self._keys, (tag, norm, -1))
        return start + (len(self._keys) - pos)

    def estimate_less_or_equal(self, value: str) -> int:
        tag, norm = self._key(value)
        _start, end = self._segment(tag)
        pos = bisect.bisect_right(self._keys, (tag, norm, self._counter))
        return pos + (len(self._keys) - end)


class AttributeIndexSet:
    """All indexes for one attribute, kept consistent together."""

    def __init__(self, atype: AttributeType, ngram: int = 3):
        self.atype = atype
        self.equality = EqualityIndex(atype)
        self.presence = PresenceIndex()
        self.substring = SubstringIndex(atype, ngram)
        self.ordering = OrderingIndex(atype) if atype.ordered else None

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        values = list(values)
        self.equality.insert(dn, values)
        self.presence.insert(dn, values)
        self.substring.insert(dn, values)
        if self.ordering is not None:
            self.ordering.insert(dn, values)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        values = list(values)
        self.equality.remove(dn, values)
        self.presence.remove(dn, values)
        self.substring.remove(dn, values)
        if self.ordering is not None:
            self.ordering.remove(dn, values)


class ContentIndex:
    """Incremental per-attribute equality + DN indexes over one
    replicated content mapping.

    :class:`repro.sync.consumer.SyncedContent` (and anything else that
    owns a ``Dict[DN, Entry]`` it mutates through a funnel) attaches one
    of these so replica-local evaluation intersects candidate sets
    instead of scanning the whole content (docs/ROUTING.md §3).

    * equality indexes are built **lazily per attribute** on the first
      query that constrains it, then maintained incrementally by
      :meth:`upsert`/:meth:`discard`;
    * a sorted ``reversed_key`` list answers BASE/ONE/SUB region probes
      (the same subtree-range trick as :class:`repro.server.backend.
      EntryStore`);
    * an insertion-sequence map preserves the content dict's iteration
      order, so index-pruned evaluation returns entries in exactly the
      order a linear scan of the dict would.

    Candidate sets are supersets; callers re-verify every candidate
    against the real filter and scope, so staleness bugs can cost speed
    but never correctness.

    With ``amq=True`` an :class:`~repro.core.amq.AdaptiveQuotientFilter`
    summarizes the built equality keys and the DN-region prefixes, so a
    definitely-absent equality value or base DN short-circuits before
    the posting/range lookup (docs/ROUTING.md §10).  The summary has no
    false negatives; deletions leave stale "maybe" entries and trigger
    a rebuild once staleness reaches the content size, so candidate
    sets are identical with the prescreen on or off.
    """

    def __init__(
        self,
        entries: Dict[DN, "Entry"],
        registry: Optional["AttributeRegistry"] = None,
        amq: bool = True,
    ):
        from ..ldap.attributes import DEFAULT_REGISTRY

        self._entries = entries
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._eq: Dict[str, EqualityIndex] = {}
        self._seq: Dict[DN, int] = {}
        self._next_seq = 0
        self._rk: List[Tuple[Tuple, DN]] = []
        self._amq_enabled = amq
        self._amq = None  # built with the first equality index
        self._amq_stale = 0
        for dn in entries:
            self._admit(dn)
        self._rk.sort()

    def _admit(self, dn: DN) -> None:
        self._seq[dn] = self._next_seq
        self._next_seq += 1
        self._rk.append((dn.reversed_key(), dn))
        if self._amq is not None:
            self._amq_add_dn(dn)

    # ------------------------------------------------------------------
    # AMQ prescreen maintenance
    # ------------------------------------------------------------------
    @property
    def amq(self):
        """The live equality/DN summary (None until an index builds)."""
        return self._amq

    def _amq_add_dn(self, dn: DN) -> None:
        rk = dn.reversed_key()
        amq = self._amq
        for i in range(1, len(rk) + 1):
            amq.add(("rk", rk[:i]))

    def _amq_add_values(self, attr_key: str, atype, values: Iterable[str]) -> None:
        amq = self._amq
        for value in values:
            amq.add(("eq", attr_key, atype.normalize(value)))

    def _build_amq(self) -> None:
        """(Re)build the summary from every built structure."""
        from ..core.amq import AdaptiveQuotientFilter

        self._amq = AdaptiveQuotientFilter(
            expected_items=max(64, 4 * len(self._seq))
        )
        self._amq_stale = 0
        for _rk, dn in self._rk:
            self._amq_add_dn(dn)
        for attr_key, index in self._eq.items():
            for norm in index._postings:
                self._amq.add(("eq", attr_key, norm))

    # ------------------------------------------------------------------
    # incremental maintenance (owner's mutation funnel)
    # ------------------------------------------------------------------
    def upsert(self, dn: DN, old: Optional["Entry"], new: "Entry") -> None:
        """Fold one add/modify into every built structure."""
        if dn not in self._seq:
            self._seq[dn] = self._next_seq
            self._next_seq += 1
            bisect.insort(self._rk, (dn.reversed_key(), dn))
            if self._amq is not None:
                self._amq_add_dn(dn)
        for attr, index in self._eq.items():
            if old is not None:
                index.remove(dn, old.get(attr))
            index.insert(dn, new.get(attr))
            if self._amq is not None:
                self._amq_add_values(attr, index._atype, new.get(attr))

    def discard(self, dn: DN, old: "Entry") -> None:
        """Fold one delete into every built structure.

        The AMQ keeps the removed keys as stale "maybe" entries (sound
        — a stale maybe only re-admits the exact lookup) and is rebuilt
        once staleness reaches the content size.
        """
        if self._seq.pop(dn, None) is None:
            return
        key = (dn.reversed_key(), dn)
        pos = bisect.bisect_left(self._rk, key)
        if pos < len(self._rk) and self._rk[pos] == key:
            del self._rk[pos]
        for attr, index in self._eq.items():
            index.remove(dn, old.get(attr))
        if self._amq is not None:
            self._amq_stale += 1
            if self._amq_stale > max(64, len(self._seq)):
                self._build_amq()

    def seq_of(self, dn: DN) -> int:
        """Insertion rank of *dn* (stable across upserts of the same
        DN, advanced on re-insertion — dict-order semantics)."""
        return self._seq.get(dn, 1 << 62)

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    def _ensure_eq(self, attr: str) -> EqualityIndex:
        key = attr.lower()
        index = self._eq.get(key)
        if index is None:
            index = EqualityIndex(self._registry.get(attr))
            for dn, entry in self._entries.items():
                index.insert(dn, entry.get(attr))
            self._eq[key] = index
            if self._amq_enabled:
                if self._amq is None:
                    self._build_amq()  # folds this index in too
                else:
                    for norm in index._postings:
                        self._amq.add(("eq", key, norm))
        return index

    def region(self, base: DN) -> Set[DN]:
        """DNs at or under *base* (SUB superset; ONE/BASE re-verify)."""
        rk = base.reversed_key()
        if rk and self._amq is not None and ("rk", rk) not in self._amq:
            return set()  # definitely no DN at or under *base*
        found: Set[DN] = set()
        pos = bisect.bisect_left(self._rk, (rk,))
        depth = len(rk)
        while pos < len(self._rk):
            key, dn = self._rk[pos]
            if key[:depth] != rk:
                break
            found.add(dn)
            pos += 1
        return found

    def candidates(self, request) -> Optional[Set[DN]]:
        """Candidate DN superset for *request*, or None meaning "scan".

        Intersects the equality posting lists of top-level equality
        conjuncts; with no usable conjunct, falls back to the region
        range when the base is below the content root.
        """
        from ..ldap.filters import And, Equality, simplify
        from ..ldap.query import Scope

        flt = simplify(request.filter)
        conjuncts = flt.children if isinstance(flt, And) else (flt,)
        best: Optional[Set[DN]] = None
        amq = self._amq
        for node in conjuncts:
            if isinstance(node, Equality):
                key = node.attr_key
                if amq is not None and key in self._eq:
                    # Prescreen already-built attributes: a definitely-
                    # absent value cannot match, exactly as the posting
                    # lookup below would conclude.
                    norm = self._eq[key]._atype.normalize(node.value)
                    if ("eq", key, norm) not in amq:
                        return set()
                postings = self._ensure_eq(node.attr).lookup(node.value)
                best = postings if best is None else best & postings
                if not best:
                    return best
        if request.scope is Scope.BASE:
            base_hit = {request.base} if request.base in self._seq else set()
            return base_hit if best is None else best & base_hit
        if best is None and len(request.base.reversed_key()) > 0:
            return self.region(request.base)
        return best
