"""LDAP query containment — the ``QC`` algorithm of §4.

A query ``Q`` is semantically contained in a stored query ``Qs`` when:

(i)   the region defined by Q's base and scope falls completely inside
      the corresponding region of Qs,
(ii)  Q's requested attributes are a subset of Qs's, and
(iii) Q's filter is more restrictive than Qs's filter.

Scope values are the integers BASE=0, SINGLE LEVEL=1, SUBTREE=2, as the
paper's pseudocode assumes.  Region containment enumerates the three
ways Qs's region can cover Q's:

* same base, Qs's scope at least as deep,
* Qs is a SUBTREE search over an ancestor(-or-self) of Q's base,
* Qs is a SINGLE LEVEL search on the parent of a BASE search's target.

Condition (iii) delegates to
:func:`repro.core.filter_containment.filter_contained_in` — sound and
template-friendly — so ``query_contained_in(Q, Qs) == True`` guarantees
``answer(Q) ⊆ answer(Qs)`` on every directory (property-tested).

Default-registry checks are memoized in a process-global ``lru_cache``
whose hit/miss/eviction statistics are exported as the
``core.qc.cache.*`` metrics via :func:`observe_containment_cache`
(docs/OBSERVABILITY.md §3 has the worked hit-ratio example).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

from ..ldap.attributes import AttributeRegistry
from ..ldap.query import Scope, SearchRequest
from .filter_containment import filter_contained_in

__all__ = [
    "region_contained_in",
    "attributes_contained_in",
    "query_contained_in",
    "containment_cache_info",
    "containment_cache_metrics",
    "observe_containment_cache",
    "clear_containment_cache",
]

#: Capacity of the default-registry QC memo (``core.qc.cache.capacity``).
QC_CACHE_MAXSIZE = 262_144


def region_contained_in(q: SearchRequest, qs: SearchRequest) -> bool:
    """True when (base, scope) of *q* lies inside the region of *qs*.

    Transcription of the region part of the paper's ``QC`` pseudocode::

        if (bS = b & sS >= s)            -> NEXT
        else if (!issuffix(bS, b))       -> FALSE
        if (sS = SUBTREE)                -> NEXT
        else if ((sS > s) & isparent(bS, b)) -> NEXT
        FALSE

    Deviation from the paper (found by property testing): with equal
    bases the paper's ``sS >= s`` admits BASE ⊆ SINGLE LEVEL, but a
    single-level search does *not* return the base entry itself
    (RFC 2251 §4.5.1), so region(BASE) ⊄ region(ONE).  The correct
    same-base rule is ``sS == s or sS == SUBTREE``.
    """
    b, s = q.base, q.scope
    bs, ss = qs.base, qs.scope
    if bs == b:
        return ss == s or ss is Scope.SUB
    if not bs.is_suffix_of(b):
        return False
    if ss is Scope.SUB:
        return True
    return ss > s and bs.is_parent_of(b)


def attributes_contained_in(q: SearchRequest, qs: SearchRequest) -> bool:
    """Condition (ii): A ⊆ As, with ``*`` meaning all user attributes."""
    if qs.wants_all_attributes:
        return True
    if q.wants_all_attributes:
        return False
    return q.attributes <= qs.attributes


def query_contained_in(
    q: SearchRequest,
    qs: SearchRequest,
    registry: Optional[AttributeRegistry] = None,
) -> bool:
    """The full ``QC(Q, Qs)`` check: region, attributes and filter.

    Results under the default attribute registry are memoized — queries
    and requests are immutable, and temporal locality in workloads makes
    repeat checks the common case.
    """
    if registry is None:
        return _query_contained_in_cached(q, qs)
    if not region_contained_in(q, qs):
        return False
    if not attributes_contained_in(q, qs):
        return False
    return filter_contained_in(q.filter, qs.filter, registry)


@lru_cache(maxsize=QC_CACHE_MAXSIZE)
def _query_contained_in_cached(q: SearchRequest, qs: SearchRequest) -> bool:
    if not region_contained_in(q, qs):
        return False
    if not attributes_contained_in(q, qs):
        return False
    return filter_contained_in(q.filter, qs.filter, None)


# ----------------------------------------------------------------------
# QC cache observability (docs/OBSERVABILITY.md §3, ``core.qc.cache.*``)
#
# The memo above is the hottest structure in the whole repository, so it
# is instrumented *by export, not by interception*: ``lru_cache`` keeps
# its own hit/miss/size statistics for free, and these helpers translate
# them into registry metrics on demand — zero added cost per lookup.
# ----------------------------------------------------------------------
def containment_cache_info():
    """The raw ``functools.lru_cache`` statistics of the QC memo."""
    return _query_contained_in_cached.cache_info()


def containment_cache_metrics() -> Dict[str, int]:
    """QC memo statistics under their registry metric names.

    ``evictions`` is derived: every miss inserts one key and only
    evictions remove them (short of an explicit clear), so
    ``evictions = misses - currsize``.
    """
    info = containment_cache_info()
    return {
        "core.qc.cache.hits": info.hits,
        "core.qc.cache.misses": info.misses,
        "core.qc.cache.evictions": info.misses - info.currsize,
        "core.qc.cache.size": info.currsize,
        "core.qc.cache.capacity": info.maxsize,
    }


def observe_containment_cache(registry) -> Dict[str, int]:
    """Sync the QC memo statistics into *registry* and return them.

    Hits/misses/evictions become counters (set to the memo's absolute
    count — the memo is process-global, so the counters are too), size
    and capacity become gauges.
    """
    metrics = containment_cache_metrics()
    for name in ("core.qc.cache.hits", "core.qc.cache.misses", "core.qc.cache.evictions"):
        registry.counter(name).set(metrics[name])
    for name in ("core.qc.cache.size", "core.qc.cache.capacity"):
        registry.gauge(name).set(metrics[name])
    return metrics


def clear_containment_cache() -> None:
    """Drop the QC memo (tests and long-lived processes)."""
    _query_contained_in_cached.cache_clear()
