"""Sketch-based anti-entropy reconciliation (recovery tier 2).

When a consumer's cookie is gone *and* its session went through a
history overflow (a ``:h`` cookie, docs/PROTOCOL.md §10.4), the honest
options used to be a full content rebuild — O(content) traffic for what
is usually an O(delta) divergence.  Following the set-reconciliation
construction of *Directory Reconciliation* (Mitzenmacher & Morgan,
PAPERS.md), this module recovers the symmetric difference between the
master's content and the replica's from an **invertible sketch** whose
wire size tracks the divergence, not the directory:

* every entry is reduced to a 64-bit DN key (:func:`entry_key`) plus a
  64-bit content fingerprint (:func:`entry_fingerprint`) over its
  normalized attributes;
* an :class:`EntrySketch` is a fixed array of cells, each holding a
  signed count and the XORs of the keys, fingerprints and per-item
  checksums hashed into it (an IBLT); each item lands in one cell of
  each of ``hash_count`` equal partitions, so its positions are
  distinct by construction;
* subtracting the replica's sketch from the master's leaves a sketch of
  the symmetric difference alone, decodable by peeling **pure** cells
  (count ±1 with a matching checksum) as long as the difference is
  small enough for the cell count — ``+1`` items exist only at the
  master (fetch them), ``-1`` items only at the replica (modified or
  deleted there);
* decode is *verified*: it succeeds only if peeling empties the sketch,
  and every peeled item carries a checksum over (key, fingerprint), so
  a corrupted or undersized sketch yields a detected failure — the
  caller doubles the cell count and retries (bounded by
  :class:`ReconcileConfig`), never applies garbage.

The orchestration (who asks for a sketch when, how failures ladder into
a paced full rebuild) lives in :class:`~repro.sync.resilient
.ResilientConsumer`; the provider-side scan in
:meth:`~repro.sync.resync.ResyncProvider.reconcile`.  Wire framing is
specified in docs/PROTOCOL.md §11 and docs/RECOVERY.md tier 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry

__all__ = [
    "ReconcileConfig",
    "EntrySketch",
    "entry_key",
    "entry_fingerprint",
    "build_sketch",
    "cells_for_divergence",
    "corrupt_cell",
]

def _h64(*parts) -> int:
    """64-bit hash of the ``\\x1f``-joined string forms of *parts*."""
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest(), "big")


def entry_key(dn: DN) -> int:
    """64-bit identity of a DN — the unit the fetch phase addresses."""
    return _h64("key", str(dn))


def entry_fingerprint(entry: Entry) -> int:
    """64-bit digest of an entry's DN plus normalized attributes.

    Two entries that are :meth:`~repro.ldap.entry.Entry.semantically_equal`
    fingerprint identically (names case-folded, values normalized and
    order-independent), so a replica holding a semantically equal copy
    contributes the same sketch item as the master and cancels out.
    """
    parts: List[str] = ["fp", str(entry.dn)]
    for name in sorted(n.lower() for n in entry.attribute_names()):
        parts.append(name)
        parts.extend(sorted(str(v) for v in entry.normalized_values(name)))
    return _h64(*parts)


def _check(key: int, fp: int) -> int:
    """Per-item checksum guarding pure-cell detection during peeling."""
    return _h64("chk", key, fp)


def cells_for_divergence(divergence: int, hash_count: int = 3, floor: int = 24) -> int:
    """Cell count for an estimated symmetric difference of *divergence*.

    Peeling an IBLT with ``hash_count`` ≥ 3 succeeds with high
    probability above ~1.3 cells per item; 2× leaves margin for an
    estimate that is only a hint.  Rounded up to a multiple of
    *hash_count* so the partitions divide evenly.
    """
    need = max(floor, 2 * max(1, divergence))
    return ((need + hash_count - 1) // hash_count) * hash_count


@dataclass(frozen=True)
class ReconcileConfig:
    """Consumer-side sizing policy for the reconcile ladder.

    Attributes:
        initial_divergence: divergence hint for the first sketch request
            when the consumer has nothing better (the provider sizes the
            sketch from it, :func:`cells_for_divergence`).
        max_cells: give up (fall back to a full rebuild) once a doubling
            retry would exceed this many cells.
        hash_count: hash partitions per sketch (the IBLT ``k``).
    """

    initial_divergence: int = 8
    max_cells: int = 4096
    hash_count: int = 3


class EntrySketch:
    """An invertible (IBLT-style) sketch of a set of entry digests.

    ``size`` cells split into ``hash_count`` equal partitions; an item
    ``(key, fp)`` occupies exactly one cell per partition, positioned by
    a salted hash.  Cells hold ``(count, key_xor, fp_xor, check_xor)``.
    Two sketches built with identical ``(size, salt, hash_count)`` are
    compatible for :meth:`subtract`.
    """

    def __init__(self, size: int, salt: int = 0, hash_count: int = 3):
        if hash_count < 2:
            raise ValueError("hash_count must be >= 2")
        if size < hash_count:
            raise ValueError("size must be >= hash_count")
        self.size = size - size % hash_count  # partitions divide evenly
        self.salt = salt
        self.hash_count = hash_count
        self.counts = [0] * self.size
        self.key_xor = [0] * self.size
        self.fp_xor = [0] * self.size
        self.check_xor = [0] * self.size

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _positions(self, key: int, fp: int) -> List[int]:
        width = self.size // self.hash_count
        return [
            i * width + _h64("pos", self.salt, i, key, fp) % width
            for i in range(self.hash_count)
        ]

    def insert(self, key: int, fp: int, sign: int = 1) -> None:
        check = _check(key, fp)
        for i in self._positions(key, fp):
            self.counts[i] += sign
            self.key_xor[i] ^= key
            self.fp_xor[i] ^= fp
            self.check_xor[i] ^= check

    def subtract(self, other: "EntrySketch") -> "EntrySketch":
        """Cell-wise difference ``self - other``; both sketches must
        share size, salt and hash count (enforced)."""
        if (self.size, self.salt, self.hash_count) != (
            other.size,
            other.salt,
            other.hash_count,
        ):
            raise ValueError("sketches are not compatible for subtraction")
        diff = EntrySketch(self.size, self.salt, self.hash_count)
        for i in range(self.size):
            diff.counts[i] = self.counts[i] - other.counts[i]
            diff.key_xor[i] = self.key_xor[i] ^ other.key_xor[i]
            diff.fp_xor[i] = self.fp_xor[i] ^ other.fp_xor[i]
            diff.check_xor[i] = self.check_xor[i] ^ other.check_xor[i]
        return diff

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _pure(self, i: int) -> bool:
        return self.counts[i] in (1, -1) and self.check_xor[i] == _check(
            self.key_xor[i], self.fp_xor[i]
        )

    def decode(
        self,
    ) -> Optional[Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]]:
        """Peel the sketch into ``(positive, negative)`` item lists.

        For a difference sketch (master minus replica), positive items
        exist only at the master and negative items only at the replica.
        Returns None when peeling stalls or leaves residue — an
        undersized or corrupted sketch — in which case nothing decoded
        here may be trusted.  Destructive: decode on a copy-free basis
        is fine because callers only decode difference sketches they
        own.
        """
        positive: List[Tuple[int, int]] = []
        negative: List[Tuple[int, int]] = []
        stack = [i for i in range(self.size) if self._pure(i)]
        while stack:
            i = stack.pop()
            if not self._pure(i):
                continue  # became impure (or zero) since it was queued
            sign = self.counts[i]
            key, fp = self.key_xor[i], self.fp_xor[i]
            (positive if sign > 0 else negative).append((key, fp))
            check = _check(key, fp)
            for j in self._positions(key, fp):
                self.counts[j] -= sign
                self.key_xor[j] ^= key
                self.fp_xor[j] ^= fp
                self.check_xor[j] ^= check
                if self._pure(j):
                    stack.append(j)
        if (
            any(self.counts)
            or any(self.key_xor)
            or any(self.fp_xor)
            or any(self.check_xor)
        ):
            return None
        return positive, negative

    # ------------------------------------------------------------------
    # wire size
    # ------------------------------------------------------------------
    def encoded_bytes(self) -> bytes:
        """RFC 2251-style BER encoding of the sketch (the measured wire
        form: a SEQUENCE of per-cell SEQUENCEs plus the parameters)."""
        from ..ldap import ber

        cells = b"".join(
            ber.encode_sequence(
                ber.encode_integer(self.counts[i]),
                ber.encode_integer(self.key_xor[i]),
                ber.encode_integer(self.fp_xor[i]),
                ber.encode_integer(self.check_xor[i]),
            )
            for i in range(self.size)
        )
        return ber.encode_sequence(
            ber.encode_integer(self.size),
            ber.encode_integer(self.salt),
            ber.encode_integer(self.hash_count),
            ber.encode_sequence(cells),
        )

    def encoded_size(self) -> int:
        """Wire bytes of :meth:`encoded_bytes` (charged to the network's
        ``bytes_sent`` by the reconcile exchange)."""
        return len(self.encoded_bytes())


def build_sketch(
    entries: Iterable[Entry], size: int, salt: int = 0, hash_count: int = 3
) -> EntrySketch:
    """Sketch the digest set of *entries* (every item inserted ``+1``)."""
    sketch = EntrySketch(size, salt=salt, hash_count=hash_count)
    for entry in entries:
        sketch.insert(entry_key(entry.dn), entry_fingerprint(entry))
    return sketch


def corrupt_cell(sketch: EntrySketch, position: float) -> int:
    """Deterministically damage one cell of *sketch* (fault injection).

    *position* in ``[0, 1)`` selects the cell; its fingerprint XOR is
    flipped so peeling either stalls on it or unmasks the damage through
    the checksum — a decode failure, never silent garbage.  Returns the
    damaged cell index.
    """
    i = min(int(position * sketch.size), sketch.size - 1)
    sketch.fp_xor[i] ^= _h64("corrupt", sketch.salt, i) or 1
    return i
