"""Tests for BER encoding of LDAP protocol elements."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import Entry, Scope, SearchRequest, parse_filter
from repro.ldap.ber import (
    BerError,
    decode_filter,
    decode_integer,
    decode_search_request,
    decode_search_result_entry,
    decode_tlv,
    encode_filter,
    encode_integer,
    encode_octet_string,
    encode_search_request,
    encode_search_result_entry,
    encoded_dn_size,
    encoded_entry_size,
    iter_tlvs,
)
from repro.ldap.dn import DN


class TestTlv:
    def test_short_length(self):
        data = encode_octet_string("abc")
        tag, value, end = decode_tlv(data)
        assert tag == 0x04 and value == b"abc" and end == len(data)

    def test_long_length(self):
        text = "x" * 300
        data = encode_octet_string(text)
        assert data[1] == 0x82  # two length bytes
        _tag, value, _end = decode_tlv(data)
        assert value == text.encode()

    def test_truncated_rejected(self):
        with pytest.raises(BerError):
            decode_tlv(b"\x04")
        with pytest.raises(BerError):
            decode_tlv(b"\x04\x05abc")

    def test_iter_tlvs(self):
        data = encode_octet_string("a") + encode_octet_string("b")
        assert [v for _t, v in iter_tlvs(data)] == [b"a", b"b"]


class TestInteger:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 256, 65535, -1, -128, -129])
    def test_roundtrip(self, value):
        data = encode_integer(value)
        _tag, body, _ = decode_tlv(data)
        assert decode_integer(body) == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        _tag, body, _ = decode_tlv(encode_integer(value))
        assert decode_integer(body) == value

    def test_minimal_encoding(self):
        assert encode_integer(127)[1] == 1  # one content byte
        assert encode_integer(128)[1] == 2  # needs sign-bit headroom


class TestFilterEncoding:
    @pytest.mark.parametrize(
        "text",
        [
            "(sn=Doe)",
            "(age>=30)",
            "(age<=30)",
            "(sn~=doe)",
            "(objectClass=*)",
            "(sn=smi*)",
            "(sn=*th)",
            "(sn=a*b*c)",
            "(&(sn=Doe)(givenName=John))",
            "(|(a=1)(b=2)(c=3))",
            "(!(a=1))",
            "(&(|(a=1)(!(b=2)))(c>=3))",
        ],
    )
    def test_roundtrip(self, text):
        flt = parse_filter(text)
        decoded, end = decode_filter(encode_filter(flt))
        assert decoded == flt
        assert end == len(encode_filter(flt))

    def test_unknown_tag_rejected(self):
        with pytest.raises(BerError):
            decode_filter(b"\xbf\x01\x00")


class TestSearchRequest:
    def test_roundtrip(self):
        request = SearchRequest(
            "ou=research,c=us,o=xyz", Scope.ONE, "(&(sn=Doe)(age>=30))", ["cn", "mail"]
        )
        message_id, decoded = decode_search_request(encode_search_request(request, 7))
        assert message_id == 7
        assert decoded == request

    def test_star_attributes_roundtrip_as_all(self):
        request = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
        _mid, decoded = decode_search_request(encode_search_request(request))
        assert decoded.wants_all_attributes

    def test_root_base(self):
        request = SearchRequest("", Scope.SUB, "(sn=Doe)")
        _mid, decoded = decode_search_request(encode_search_request(request))
        assert decoded.base.is_root


class TestSearchResultEntry:
    def test_roundtrip(self):
        entry = Entry(
            "cn=John Doe,o=xyz",
            {
                "objectClass": ["inetOrgPerson", "top"],
                "cn": ["John Doe", "Johnny"],
                "sn": "Doe",
                "serialNumber": "004217IN",
            },
        )
        message_id, decoded = decode_search_result_entry(
            encode_search_result_entry(entry, 3)
        )
        assert message_id == 3
        assert decoded == entry

    def test_unicode_values(self):
        entry = Entry("cn=café,o=xyz", {"cn": "café", "description": "naïve"})
        _mid, decoded = decode_search_result_entry(encode_search_result_entry(entry))
        assert decoded == entry


class TestSizes:
    def test_entry_size_positive_and_plausible(self):
        entry = Entry("cn=a,o=xyz", {"cn": "a", "sn": "b"})
        size = encoded_entry_size(entry)
        assert 20 < size < 200

    def test_dn_size(self):
        assert encoded_dn_size(DN.parse("cn=a,o=xyz")) == len("cn=a,o=xyz") + 2

    def test_bigger_entries_encode_bigger(self):
        small = Entry("cn=a,o=xyz", {"cn": "a"})
        big = Entry("cn=a,o=xyz", {"cn": "a", "description": "x" * 500})
        assert encoded_entry_size(big) > encoded_entry_size(small) + 500


# property: random entries roundtrip
_values = st.lists(
    st.text(min_size=1, max_size=12).filter(lambda s: s == s.strip() and s.strip()),
    min_size=1,
    max_size=3,
)


@given(
    st.dictionaries(
        st.sampled_from(["cn", "sn", "mail", "description"]), _values, min_size=1, max_size=4
    )
)
def test_entry_roundtrip_property(attrs):
    attrs.setdefault("cn", ["probe"])
    entry = Entry("cn=probe,o=xyz", attrs)
    _mid, decoded = decode_search_result_entry(encode_search_result_entry(entry))
    assert decoded == entry
