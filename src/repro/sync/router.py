"""Routed ReSync update fan-out (provider side).

``ResyncProvider.on_update`` must decide, for every committed master
update, which active sessions to notify.  The seed implementation
evaluates every session's filter against the update's before/after
entries — linear in the session count, twice per update, interpreted.
The :class:`SessionRouter` keeps per-session routing summaries so only
sessions that *can* be affected are visited:

* **holders** — a ``DN → sessions`` map mirroring each session's
  master-side content (``Session.content_dns``), seeded from the
  initial content and advanced by :meth:`note_delivery` after every
  notification.  Any update whose entry was in a session's content
  (``in_before``) must route through this map.
* **attribute fingerprints** — ``attributes_of(filter)`` posting lists.
  An in-place MODIFY can only change a filter's verdict when some
  *changed* attribute occurs in the filter, so non-holders are visited
  only when the changed-attribute set intersects their fingerprint.
* **anchors** — a set of attributes such that any entry matching the
  filter holds at least one of them (:func:`anchor_attrs`).  An ADD (or
  the new position of a rename) routes to sessions whose anchor set
  intersects the entry's attributes; filters without derivable anchors
  (NOT shapes) are visited for every add in region.
* **regions** — sessions bucketed by ``base.reversed_key()``; a DN can
  only be in a session's scope when the session base's key prefixes
  the DN's, probed like the replica-side
  :class:`~repro.core.routing.ContainmentIndex`.

Soundness (property-tested in ``tests/sync/test_router.py``): routing
never skips a session the linear scan would notify — skipped sessions
provably have ``in_before == in_after == False``.  Visited candidates
re-evaluate exactly the linear predicate (scope + compiled filter), in
session-creation order, so the notification streams are byte-identical
to the seed fan-out's.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filters import And, Filter, Not, Or, Predicate, attributes_of, simplify
from ..ldap.matching import compile_filter_cached
from ..server.operations import UpdateRecord
from .session import Session

__all__ = ["SessionRouter", "RoutedSession", "anchor_attrs"]

_EMPTY: FrozenSet["RoutedSession"] = frozenset()

# Pre-resolved membership verdicts (see SessionRouter.route_verdicts).
_VERDICT_STAYS: Tuple[bool, bool] = (True, True)
_VERDICT_GONE: Tuple[bool, bool] = (True, False)


def anchor_attrs(flt: Filter) -> Optional[FrozenSet[str]]:
    """Attributes of which any entry matching *flt* must hold one.

    ``None`` means no such set is derivable (the filter may match
    entries lacking any particular attribute — NOT shapes), so the
    session must see every add.  Derivation: a predicate anchors on its
    own attribute (matching requires it present); an AND anchors on any
    one child's anchors (the smallest is kept); an OR needs anchors from
    *every* child and takes the union.
    """
    flt = simplify(flt)
    return _anchors(flt)


def _anchors(flt: Filter) -> Optional[FrozenSet[str]]:
    if isinstance(flt, Predicate):
        return frozenset((flt.attr_key,))
    if isinstance(flt, And):
        best: Optional[FrozenSet[str]] = None
        for child in flt.children:
            found = _anchors(child)
            if found is not None and (best is None or len(found) < len(best)):
                best = found
        return best
    if isinstance(flt, Or):
        merged: Set[str] = set()
        for child in flt.children:
            found = _anchors(child)
            if found is None:
                return None
            merged |= found
        return frozenset(merged)
    if isinstance(flt, Not):
        return None
    return None  # pragma: no cover - all node kinds handled


class RoutedSession:
    """One registered session plus its routing summary."""

    __slots__ = (
        "session_id",
        "serial",
        "request",
        "compiled",
        "fingerprint",
        "anchors",
        "region",
        "held",
    )

    def __init__(self, session: Session, serial: int):
        self.session_id = session.session_id
        self.serial = serial
        self.request = session.request
        self.compiled = compile_filter_cached(session.request.filter)
        self.fingerprint = attributes_of(session.request.filter)
        self.anchors = anchor_attrs(session.request.filter)
        self.region = session.request.base.reversed_key()
        self.held: Set[DN] = set()

    def selects(self, entry: Entry) -> bool:
        """Exactly ``request.selects`` with the compiled filter."""
        return self.request.in_scope(entry.dn) and self.compiled(entry)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"RoutedSession({self.session_id})"


class SessionRouter:
    """Attribute/region/holder routing over a provider's sessions."""

    def __init__(self):
        self._serials = itertools.count(1)
        self._sessions: Dict[str, RoutedSession] = {}
        self._by_attr: Dict[str, Set[RoutedSession]] = {}
        self._by_region: Dict[Tuple, Set[RoutedSession]] = {}
        self._anchored: Dict[str, Set[RoutedSession]] = {}
        self._unanchored: Set[RoutedSession] = set()
        self._holders: Dict[DN, Set[RoutedSession]] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, session: Session) -> RoutedSession:
        """Register *session* (called when the provider creates it)."""
        self.unregister(session.session_id)
        rs = RoutedSession(session, next(self._serials))
        self._sessions[rs.session_id] = rs
        for attr in rs.fingerprint:
            self._by_attr.setdefault(attr, set()).add(rs)
        self._by_region.setdefault(rs.region, set()).add(rs)
        if rs.anchors is None:
            self._unanchored.add(rs)
        else:
            for attr in rs.anchors:
                self._anchored.setdefault(attr, set()).add(rs)
        return rs

    def seed(self, session: Session, dns) -> None:
        """Mirror the initial content delivered to *session*."""
        rs = self._sessions.get(session.session_id)
        if rs is None:
            return
        for dn in dns:
            self._hold(rs, dn)

    def reregister(self, session: Session, dns) -> RoutedSession:
        """(Re-)enter *session* with *dns* as its held content in one
        step — the lazy re-registration a recovered provider performs on
        a session's first post-crash poll, after which routed fan-out
        replaces the linear fallback (docs/PROTOCOL.md §10).  Any stale
        registration (and its holder state) is replaced wholesale."""
        rs = self.register(session)
        self.seed(session, dns)
        return rs

    def unregister(self, session_id: str) -> None:
        rs = self._sessions.pop(session_id, None)
        if rs is None:
            return
        for attr in rs.fingerprint:
            self._drop(self._by_attr, attr, rs)
        self._drop(self._by_region, rs.region, rs)
        if rs.anchors is None:
            self._unanchored.discard(rs)
        else:
            for attr in rs.anchors:
                self._drop(self._anchored, attr, rs)
        for dn in list(rs.held):
            self._drop(self._holders, dn, rs)

    def reset(self) -> None:
        """Forget every session (provider restart)."""
        self._sessions.clear()
        self._by_attr.clear()
        self._by_region.clear()
        self._anchored.clear()
        self._unanchored.clear()
        self._holders.clear()

    @staticmethod
    def _drop(postings: Dict, key, rs: "RoutedSession") -> None:
        bucket = postings.get(key)
        if bucket is not None:
            bucket.discard(rs)
            if not bucket:
                del postings[key]

    # ------------------------------------------------------------------
    # holder tracking (mirrors Session._track_content)
    # ------------------------------------------------------------------
    def _hold(self, rs: RoutedSession, dn: DN) -> None:
        rs.held.add(dn)
        self._holders.setdefault(dn, set()).add(rs)

    def _unhold(self, rs: RoutedSession, dn: DN) -> None:
        rs.held.discard(dn)
        self._drop(self._holders, dn, rs)

    def note_delivery(
        self,
        rs: RoutedSession,
        in_before: bool,
        in_after: bool,
        old_dn: DN,
        new_dn: DN,
    ) -> None:
        """Advance *rs*'s holder state after one notification — the same
        transitions ``Session.observe`` applies to ``content_dns``."""
        if in_before and not in_after:
            self._unhold(rs, old_dn)
        elif in_after and not in_before:
            self._hold(rs, new_dn)
        elif in_before and in_after:
            if old_dn != new_dn:
                self._unhold(rs, old_dn)
            self._hold(rs, new_dn)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _region_candidates(self, dn: DN) -> Set[RoutedSession]:
        rk = dn.reversed_key()
        found: Set[RoutedSession] = set()
        for i in range(len(rk) + 1):
            bucket = self._by_region.get(rk[:i])
            if bucket:
                found |= bucket
        return found

    @staticmethod
    def _changed_attrs(before: Entry, after: Entry) -> Set[str]:
        """Attributes whose raw value lists differ (a superset of the
        semantically changed set, which is all soundness needs)."""
        names = {n.lower() for n in before.attribute_names()}
        names |= {n.lower() for n in after.attribute_names()}
        return {
            name
            for name in names
            if sorted(before.get(name)) != sorted(after.get(name))
        }

    def route(self, record: UpdateRecord) -> List[RoutedSession]:
        """Sessions that may be affected by *record*, in creation order.

        A superset of ``{s : in_before(s) or in_after(s)}`` — the
        guarantee the equivalence property tests.  The caller still
        evaluates the exact predicate per candidate.
        """
        return [rs for rs, _ in self.route_verdicts(record)]

    def route_verdicts(
        self, record: UpdateRecord
    ) -> List[Tuple[RoutedSession, Optional[Tuple[bool, bool]]]]:
        """Route *record* and pre-resolve ``(in_before, in_after)`` for
        the candidates whose verdict the holder index already knows.

        Holder state mirrors each session's content exactly — seeded
        from the initial search, advanced with the exact verdict on
        every delivery — so two cases need no filter evaluation:

        * **DELETE**: every candidate is a holder of the deleted DN, so
          the verdict is ``(True, False)``.
        * **in-place MODIFY** where the changed attributes miss a
          holder's filter fingerprint: the compiled verdict cannot flip
          (``_changed_attrs`` over-approximates the semantic change) and
          the scope verdict is fixed by the unchanged DN, so the verdict
          stays ``(True, True)``.

        Every other candidate (adds, renames, holders whose fingerprint
        meets the changed set, non-holders) carries ``None`` and keeps
        the caller's exact ``selects`` evaluation.  This is the fan-out
        fast path: at high session counts most candidates are holders
        untouched by the changed attributes, and their two filter
        evaluations per notification disappear.
        """
        candidates: Set[RoutedSession] = set()
        old_dn = record.dn
        new_dn = record.effective_dn
        holders = (
            self._holders.get(old_dn, _EMPTY)
            if record.before is not None
            else _EMPTY
        )
        candidates |= holders
        changed: Optional[Set[str]] = None
        if record.after is not None:
            if record.before is not None and old_dn == new_dn:
                # In-place MODIFY: a non-holder's verdict can only flip
                # when a changed attribute occurs in its filter.
                changed = self._changed_attrs(record.before, record.after)
                touched: Set[RoutedSession] = set()
                for attr in changed:
                    bucket = self._by_attr.get(attr)
                    if bucket:
                        touched |= bucket
                if touched:
                    candidates |= touched & self._region_candidates(new_dn)
            else:
                # ADD, or the new position of a rename: an entry can
                # only enter a session whose region covers the DN and
                # whose filter's anchors intersect the entry.
                present = {n.lower() for n in record.after.attribute_names()}
                for rs in self._region_candidates(new_dn):
                    if rs.anchors is None or rs.anchors & present:
                        candidates.add(rs)
        ordered = sorted(candidates, key=lambda rs: rs.serial)
        if record.after is None:
            return [(rs, _VERDICT_GONE) for rs in ordered]
        if changed is not None:
            return [
                (
                    rs,
                    _VERDICT_STAYS
                    if rs in holders and changed.isdisjoint(rs.fingerprint)
                    else None,
                )
                for rs in ordered
            ]
        return [(rs, None) for rs in ordered]
