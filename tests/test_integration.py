"""End-to-end integration: the §7 case study at test scale.

One test spans the whole stack — directory generation, workload, a
filter replica with generalized filters + location tree + query cache,
ReSync consistency under a live update stream, and the experiment
driver — and checks the paper's qualitative claims all at once.
"""

import pytest

from repro.core import FilterReplica, SubtreeReplica
from repro.ldap import Scope, SearchRequest
from repro.metrics import ReplicaDriver
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import (
    QueryType,
    WorkloadConfig,
    WorkloadGenerator,
    generate_directory,
    DirectoryConfig,
)
from repro.workload.updates import UpdateGenerator


@pytest.fixture(scope="module")
def scenario():
    directory = generate_directory(
        DirectoryConfig(employees=1500, locations=40, seed=123)
    )
    trace = WorkloadGenerator(directory, WorkloadConfig(seed=5)).generate(
        3000, days=2
    )
    return directory, trace


def fresh_master(directory) -> DirectoryServer:
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    return master


def hot_blocks(trace, k):
    counts = {}
    for record in trace.day(1).of_type(QueryType.SERIAL):
        value = str(record.request.filter)[len("(serialNumber=") : -1]
        counts[(value[:4], value[6:])] = counts.get((value[:4], value[6:]), 0) + 1
    ranked = sorted(counts, key=counts.get, reverse=True)
    return ranked[:k]


class TestCaseStudy:
    def test_filter_replica_beats_subtree_on_faithful_workload(self, scenario):
        directory, trace = scenario
        day2 = trace.day(2)

        # Filter replica: hot blocks + location tree + cache.
        master = fresh_master(directory)
        provider = ResyncProvider(master)
        replica = FilterReplica(
            "branch", network=SimulatedNetwork(), cache_capacity=50
        )
        for block, cc in hot_blocks(trace, 15):
            replica.add_filter(
                SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})"),
                provider,
            )
        replica.add_filter(
            SearchRequest("", Scope.SUB, "(objectClass=location)"), provider
        )
        filter_result = ReplicaDriver(master, replica, provider=provider).run(day2)

        # Subtree replica answering the same faithful root-based trace.
        master = fresh_master(directory)
        provider = ResyncProvider(master)
        subtree = SubtreeReplica("branch", network=SimulatedNetwork())
        for cc in directory.geography_countries("AP"):
            subtree.add_context(f"c={cc},o=xyz")
        subtree.sync(provider)
        subtree_result = ReplicaDriver(master, subtree, provider=provider).run(day2)

        # §3.1.1: root-based queries cannot be answered by subtrees.
        assert subtree_result.hits == 0
        assert filter_result.hit_ratio > 0.4
        # §7.2(c): the replicated location tree answers everything.
        assert filter_result.hit_ratio_by_type["location"] == 1.0
        # Replica stays small.
        assert filter_result.replica_entries < 0.5 * len(directory.entries)

    def test_consistency_under_live_updates(self, scenario):
        directory, trace = scenario
        master = fresh_master(directory)
        provider = ResyncProvider(master)
        replica = FilterReplica("branch", network=SimulatedNetwork())
        stored = [
            SearchRequest("", Scope.SUB, f"(serialNumber={b}*{cc})")
            for b, cc in hot_blocks(trace, 10)
        ]
        for request in stored:
            replica.add_filter(request, provider)

        updates = UpdateGenerator(directory, master)
        for _round in range(5):
            updates.apply(200)
            replica.sync(provider)

        # After the final sync every stored filter's content equals the
        # master's ground truth (the §5 convergence guarantee).
        for stored_filter in replica.stored_filters():
            assert stored_filter.content.matches_master(master)

    def test_hits_return_master_identical_entries(self, scenario):
        """Answers served by the replica must equal the master's, up to
        the staleness window of the last sync (here: fully synced)."""
        directory, trace = scenario
        master = fresh_master(directory)
        provider = ResyncProvider(master)
        replica = FilterReplica("branch", network=SimulatedNetwork())
        for block, cc in hot_blocks(trace, 10):
            replica.add_filter(
                SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})"),
                provider,
            )
        checked = 0
        for record in trace.day(2).of_type(QueryType.SERIAL)[:300]:
            answer = replica.answer(record.request)
            if not answer.is_hit:
                continue
            truth = master.search(record.request).entries
            assert {str(e.dn) for e in answer.entries} == {
                str(e.dn) for e in truth
            }
            checked += 1
        assert checked > 20, "the scenario must produce real hits to compare"
