"""E14 — §5.2 ablation: mode of update — persist vs poll.

Paper: "While persistent search can provide strong consistency for
filter based replicas, it requires a TCP connection per replicated
filter which might not scale for large replicas.  Polling is a better
mode of update for information typically stored in directories."

The bench quantifies the trade-off on one replica with N stored
filters under a master update stream:

* **persist** — zero staleness, but N standing connections;
* **poll every k queries** — zero standing connections, staleness
  bounded by the poll interval (measured as the fraction of hits served
  from content the master had already changed).
"""

from __future__ import annotations

import pytest

from repro.core import FilterReplica
from repro.server import SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import QueryType
from repro.workload.updates import UpdateGenerator

from .common import BenchEnv, block_filter, hot_blocks, report

N_FILTERS = 20
N_QUERIES = 1500


def _stale_fraction(env, mode: str, poll_interval: int) -> tuple:
    master = env.fresh_master()
    provider = ResyncProvider(master)
    network = SimulatedNetwork()
    replica = FilterReplica("branch", network=network)
    for block, cc, _h in hot_blocks(env)[:N_FILTERS]:
        replica.add_filter(block_filter(block, cc), provider)
    if mode == "persist":
        replica.subscribe_persist(provider)
    updates = UpdateGenerator(env.directory, master)

    stale = hits = 0
    eval_trace = env.day(2).of_type(QueryType.SERIAL)[:N_QUERIES]
    for index, record in enumerate(eval_trace):
        updates.apply(1)
        answer = replica.answer(record.request)
        if answer.is_hit:
            hits += 1
            truth = {str(e.dn) for e in master.search(record.request).entries}
            got = {str(e.dn) for e in answer.entries}
            if got != truth:
                stale += 1
        if mode == "poll" and (index + 1) % poll_interval == 0:
            replica.sync(provider)
    connections = network.open_connections
    replica.unsubscribe_persist()
    return hits, stale, connections


@pytest.fixture(scope="module")
def mode_rows(env: BenchEnv):
    rows = []
    for mode, interval in (("persist", 0), ("poll", 50), ("poll", 250), ("poll", 1000)):
        hits, stale, connections = _stale_fraction(env, mode, interval)
        label = mode if mode == "persist" else f"poll/{interval}"
        rows.append(
            (
                label,
                connections,
                hits,
                stale,
                stale / hits if hits else 0.0,
            )
        )
    return rows


def test_sync_mode_tradeoff(benchmark, env: BenchEnv, mode_rows):
    by_label = {row[0]: row for row in mode_rows}
    report(
        "sync_modes",
        f"Persist vs poll for {N_FILTERS} stored filters under churn",
        ["mode", "connections", "hits", "stale hits", "stale frac"],
        mode_rows,
        params={"stored_filters": N_FILTERS, "queries": N_QUERIES},
        metrics={
            "persist_connections": by_label["persist"][1],
            "persist_stale_hits": by_label["persist"][3],
            "poll50_stale_frac": by_label["poll/50"][4],
            "poll1000_stale_frac": by_label["poll/1000"][4],
        },
        paper_expected={
            "persist_connections": N_FILTERS,
            "shape": "polling trades bounded staleness for zero connections",
        },
    )

    # Persist: strong consistency, but one connection per filter.
    assert by_label["persist"][1] == N_FILTERS
    assert by_label["persist"][3] == 0

    # Poll: no standing connections; staleness grows with the interval.
    for label in ("poll/50", "poll/250", "poll/1000"):
        assert by_label[label][1] == 0
    assert by_label["poll/50"][4] <= by_label["poll/1000"][4]

    # Timed unit: a persist-mode notification delivery.
    master = env.fresh_master()
    provider = ResyncProvider(master)
    replica = FilterReplica("bench", network=SimulatedNetwork())
    block, cc, _h = hot_blocks(env)[0]
    replica.add_filter(block_filter(block, cc), provider)
    replica.subscribe_persist(provider)
    updates = UpdateGenerator(env.directory, master)
    benchmark(lambda: updates.apply(1))
    replica.unsubscribe_persist()
