"""Attribute indexes for the in-memory directory backend.

Directory servers are optimized for read access (§1); real servers keep
per-attribute indexes so that equality and substring filters do not scan
the whole database.  The simulated backend does the same:

* :class:`EqualityIndex` — normalized value → set of DNs,
* :class:`SubstringIndex` — n-gram (trigram by default) posting lists,
  giving candidate sets for substring filters; candidates are verified
  against the real filter by the caller,
* :class:`OrderingIndex` — sorted list of (normalized value, DN) pairs
  answering ``>=`` / ``<=`` range scans.

Indexes return *candidate supersets* (every true match is included, some
non-matches may be); the backend always re-verifies candidates with
:func:`repro.ldap.matching.matches`, so index bugs can cost speed but
never correctness.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ldap.attributes import AttributeType
from ..ldap.dn import DN

__all__ = ["EqualityIndex", "SubstringIndex", "OrderingIndex", "AttributeIndexSet"]


class EqualityIndex:
    """Maps normalized attribute values to the DNs holding them."""

    def __init__(self, atype: AttributeType):
        self._atype = atype
        self._postings: Dict[object, Set[DN]] = defaultdict(set)

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            self._postings[self._atype.normalize(value)].add(dn)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            key = self._atype.normalize(value)
            postings = self._postings.get(key)
            if postings is not None:
                postings.discard(dn)
                if not postings:
                    del self._postings[key]

    def lookup(self, value: str) -> Set[DN]:
        """DNs holding *value* (exact, normalized)."""
        return set(self._postings.get(self._atype.normalize(value), ()))

    def __len__(self) -> int:
        return sum(len(p) for p in self._postings.values())


def _ngrams(text: str, n: int) -> Set[str]:
    if len(text) < n:
        return {text} if text else set()
    return {text[i : i + n] for i in range(len(text) - n + 1)}


class SubstringIndex:
    """N-gram index giving candidate DNs for substring assertions."""

    def __init__(self, atype: AttributeType, ngram: int = 3):
        self._atype = atype
        self._ngram = ngram
        self._postings: Dict[str, Set[DN]] = defaultdict(set)

    def _grams_of_value(self, value: str) -> Set[str]:
        return _ngrams(str(self._atype.normalize(value)), self._ngram)

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            for gram in self._grams_of_value(value):
                self._postings[gram].add(dn)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            for gram in self._grams_of_value(value):
                postings = self._postings.get(gram)
                if postings is not None:
                    postings.discard(dn)
                    if not postings:
                        del self._postings[gram]

    def candidates(self, components: Iterable[str]) -> Optional[Set[DN]]:
        """Candidate DNs for a substring assertion with *components*.

        Returns None when no component yields a usable n-gram (the
        assertion is too short to index), meaning "scan everything".
        """
        result: Optional[Set[DN]] = None
        usable = False
        for component in components:
            normalized = str(self._atype.normalize(component))
            if len(normalized) < self._ngram:
                continue
            usable = True
            for gram in _ngrams(normalized, self._ngram):
                postings = self._postings.get(gram, set())
                result = set(postings) if result is None else (result & postings)
                if not result:
                    return set()
        return result if usable else None


class OrderingIndex:
    """Sorted-value index answering ordering (range) assertions."""

    def __init__(self, atype: AttributeType):
        self._atype = atype
        # Parallel sorted structures; values stringified so mixed
        # normalizations stay comparable.
        self._keys: List[Tuple[str, int]] = []
        self._dns: List[DN] = []
        self._counter = 0

    def _key(self, value: str) -> str:
        return str(self._atype.normalize(value))

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            key = (self._key(value), self._counter)
            self._counter += 1
            pos = bisect.bisect_left(self._keys, key)
            self._keys.insert(pos, key)
            self._dns.insert(pos, dn)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        for value in values:
            target = self._key(value)
            pos = bisect.bisect_left(self._keys, (target, -1))
            while pos < len(self._keys) and self._keys[pos][0] == target:
                if self._dns[pos] == dn:
                    del self._keys[pos]
                    del self._dns[pos]
                    break
                pos += 1

    def greater_or_equal(self, value: str) -> Set[DN]:
        pos = bisect.bisect_left(self._keys, (self._key(value), -1))
        return set(self._dns[pos:])

    def less_or_equal(self, value: str) -> Set[DN]:
        pos = bisect.bisect_right(self._keys, (self._key(value), 1 << 62))
        return set(self._dns[:pos])


class AttributeIndexSet:
    """All indexes for one attribute, kept consistent together."""

    def __init__(self, atype: AttributeType, ngram: int = 3):
        self.atype = atype
        self.equality = EqualityIndex(atype)
        self.substring = SubstringIndex(atype, ngram)
        self.ordering = OrderingIndex(atype) if atype.ordered else None

    def insert(self, dn: DN, values: Iterable[str]) -> None:
        values = list(values)
        self.equality.insert(dn, values)
        self.substring.insert(dn, values)
        if self.ordering is not None:
            self.ordering.insert(dn, values)

    def remove(self, dn: DN, values: Iterable[str]) -> None:
        values = list(values)
        self.equality.remove(dn, values)
        self.substring.remove(dn, values)
        if self.ordering is not None:
            self.ordering.remove(dn, values)
