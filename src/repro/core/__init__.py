"""The paper's contribution: containment, templates, replicas, selection.

* :mod:`repro.core.containment` / :mod:`repro.core.filter_containment` —
  the ``QC`` algorithm and Propositions 1–3 (§4);
* :mod:`repro.core.templates` — LDAP templates (§3.4.2);
* :mod:`repro.core.subtree_replica` — the baseline model (§3.4.1);
* :mod:`repro.core.filter_replica` — filter based replication (§3, §7);
* :mod:`repro.core.generalization` / :mod:`repro.core.selection` —
  replica content determination (§6);
* :mod:`repro.core.query_cache` — recent-user-query window (§7.4);
* :mod:`repro.core.routing` — sublinear candidate routing for the
  containment scans (docs/ROUTING.md).
"""

from .amq import AdaptiveQuotientFilter
from .containment import (
    attributes_contained_in,
    query_contained_in,
    region_contained_in,
)
from .filter_containment import (
    filter_contained_in,
    general_contained_in,
    predicate_contained_in,
    prefix_upper_bound,
)
from .filter_replica import FilterReplica, StoredFilter
from .frontend import ReplicaFrontend
from .generalization import (
    Generalizer,
    HierarchyGeneralization,
    IdentityGeneralization,
    PrefixGeneralization,
    PrefixSuffixGeneralization,
    SuffixGeneralization,
)
from .query_cache import CachedQuery, NegativeResultCache, RecentQueryCache
from .replica import AnswerStatus, HitStats, ReplicaAnswer
from .routing import ContainmentIndex, guard_atoms, probe_atoms
from .selection import CandidateStats, FilterSelector, SelectionReport
from .subtree_replica import ReplicationContext, SubtreeReplica
from .templates import Template, TemplateRegistry, template_key

__all__ = [
    "query_contained_in",
    "region_contained_in",
    "attributes_contained_in",
    "filter_contained_in",
    "general_contained_in",
    "predicate_contained_in",
    "prefix_upper_bound",
    "Template",
    "TemplateRegistry",
    "template_key",
    "AnswerStatus",
    "ReplicaAnswer",
    "HitStats",
    "SubtreeReplica",
    "ReplicationContext",
    "FilterReplica",
    "StoredFilter",
    "ReplicaFrontend",
    "RecentQueryCache",
    "CachedQuery",
    "NegativeResultCache",
    "AdaptiveQuotientFilter",
    "ContainmentIndex",
    "guard_atoms",
    "probe_atoms",
    "Generalizer",
    "IdentityGeneralization",
    "PrefixGeneralization",
    "PrefixSuffixGeneralization",
    "SuffixGeneralization",
    "HierarchyGeneralization",
    "FilterSelector",
    "CandidateStats",
    "SelectionReport",
]
