"""The consumer health state machine: terminal states, quarantine
re-probes, breaker half-open behavior (docs/FAULTS.md §4).

Every test drives a :class:`ResilientConsumer` built with a
:class:`HealthPolicy` against an explicitly partitioned provider — the
cleanest sustained-fault source: every attempt raises
``NetworkPartitioned``, costs one round trip and nothing else.  The
load-bearing properties:

* budget exhaustion lands terminally in ``gave_up`` with the final
  ``sync.health.state`` sample at the gave_up index — and *stays* there
  without busy-looping (zero further round trips, zero clock drift);
* a quarantined consumer re-probes only on the configured virtual-clock
  interval, never in a tight loop;
* an open breaker sleeps out its cooldown, probes half-open with a
  single attempt, and either closes (success) or re-trips (failure).
"""

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, FaultyNetwork
from repro.sync import (
    HEALTH_STATES,
    DurabilityConfig,
    HealthPolicy,
    MemoryJournal,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
)

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")

POLICY = RetryPolicy(
    max_attempts=2, base_backoff_ms=10.0, max_backoff_ms=100.0, degraded_after=2
)


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": "42"},
    )


def build_master(n: int = 4) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i}"))
    return master


def build_cell(health: HealthPolicy, name: str = "cell", mode: str = "poll"):
    """(master, provider, net, consumer) with one clean initial sync,
    then the provider partitioned away."""
    master = build_master()
    provider = ResyncProvider(master)
    net = FaultyNetwork()
    consumer = ResilientConsumer(
        REQUEST,
        provider,
        network=net,
        seed=1,
        mode=mode,
        policy=POLICY,
        health=health,
        name=name,
    )
    assert consumer.sync_once() is not None
    assert consumer.health_state == "healthy"
    net.partition(provider)
    return master, provider, net, consumer


def state_gauge(net: FaultyNetwork, name: str) -> float:
    return net.registry.gauge("sync.health.state").labels(consumer=name).value


class TestTerminalGaveUp:
    def test_attempt_budget_exhaustion_lands_in_gave_up(self):
        health = HealthPolicy(
            max_total_attempts=6,
            breaker_threshold=100,  # keep the breaker out of the way
            quarantine_after=100,
        )
        _, _, net, consumer = build_cell(health, name="budget")
        for _ in range(10):
            consumer.sync_once()
            if consumer.health_state == "gave_up":
                break
        assert consumer.health_state == "gave_up"
        snap = consumer.health_snapshot()
        assert snap["attempts_spent"] == health.max_total_attempts
        # The final state sample is the terminal index.
        assert state_gauge(net, "budget") == HEALTH_STATES.index("gave_up")
        assert net.registry.counter("sync.health.gave_up").value == 1
        # gave_up reads are stale by definition: degraded, never fresh.
        assert consumer.degraded

    def test_backoff_budget_exhaustion_also_gives_up(self):
        health = HealthPolicy(
            max_total_attempts=10_000,
            max_total_backoff_ms=30.0,  # a handful of 10ms-scale waits
            breaker_threshold=100,
            quarantine_after=100,
        )
        _, _, _, consumer = build_cell(health, name="wallclock")
        for _ in range(20):
            consumer.sync_once()
            if consumer.health_state == "gave_up":
                break
        assert consumer.health_state == "gave_up"
        snap = consumer.health_snapshot()
        assert snap["backoff_budget_ms"] >= health.max_total_backoff_ms

    def test_gave_up_is_terminal_and_never_busy_loops(self):
        health = HealthPolicy(
            max_total_attempts=4, breaker_threshold=100, quarantine_after=100
        )
        _, _, net, consumer = build_cell(health, name="terminal")
        while consumer.health_state != "gave_up":
            consumer.sync_once()
        trips = net.stats.round_trips
        clock = net.elapsed_ms + net.scheduler.now
        for _ in range(50):
            assert consumer.sync_once() is None
        # Zero further provider contact, zero virtual-clock drift: the
        # terminal state costs nothing, forever.
        assert net.stats.round_trips == trips
        assert net.elapsed_ms + net.scheduler.now == clock
        assert consumer.health_state == "gave_up"


class TestQuarantineReprobe:
    HEALTH = HealthPolicy(
        max_total_attempts=10_000,
        max_total_backoff_ms=10_000_000.0,
        breaker_threshold=2,
        breaker_cooldown_ms=500.0,
        quarantine_after=1,  # first trip escalates straight to quarantine
        quarantine_probe_ms=5_000.0,
    )

    def test_quarantined_reprobes_on_the_configured_interval(self):
        _, _, net, consumer = build_cell(self.HEALTH, name="parked")
        consumer.sync_once()  # 2 faults -> breaker trip -> quarantine
        assert consumer.health_state == "quarantined"
        for _ in range(3):
            before = net.stats.round_trips
            clock = net.elapsed_ms + net.scheduler.now
            consumer.sync_once()  # sleeps the interval, probes once
            assert net.stats.round_trips == before + 1  # single attempt
            waited = (net.elapsed_ms + net.scheduler.now) - clock
            assert waited >= self.HEALTH.quarantine_probe_ms
            assert consumer.health_state == "quarantined"  # re-benched
        assert net.registry.counter("sync.health.probes").value == 3

    def test_quarantine_parks_the_poll_session(self):
        # Parking is the durable provider's eq.-3 retain tier; a
        # provider without a journal refuses (best-effort relief).
        master = build_master()
        provider = ResyncProvider(
            master, durability=DurabilityConfig(), journal=MemoryJournal()
        )
        net = FaultyNetwork()
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            seed=1,
            policy=POLICY,
            health=self.HEALTH,
            name="eq3",
        )
        assert consumer.sync_once() is not None
        net.partition(provider)
        assert consumer.content.cookie is not None
        consumer.sync_once()
        assert consumer.health_state == "quarantined"
        # The provider stopped accumulating per-session history: the
        # session was parked at the eq.-3 retain tier.
        assert net.registry.counter("sync.health.parked").value == 1
        assert (
            provider.server.metrics.counter("sync.durability.parked_sessions").value
            == 1
        )

    def test_successful_probe_leaves_quarantine_with_clean_slate(self):
        master, _, net, consumer = build_cell(self.HEALTH, name="comeback")
        consumer.sync_once()
        assert consumer.health_state == "quarantined"
        master.add(person("E9"))
        net.heal_partition()
        assert consumer.sync_once() is not None  # the probe succeeds
        assert consumer.health_state == "healthy"
        assert consumer.breaker_state == "closed"
        # The trip history that benched us is spent: the next fault
        # storm gets the full escalation ladder again.
        assert consumer.health_snapshot()["breaker_trips"] == 0
        assert not consumer.degraded
        assert consumer.content.matches_master(master)


class TestBreakerHalfOpen:
    HEALTH = HealthPolicy(
        max_total_attempts=10_000,
        max_total_backoff_ms=10_000_000.0,
        breaker_threshold=2,
        breaker_cooldown_ms=500.0,
        quarantine_after=10,
        quarantine_probe_ms=5_000.0,
    )

    def test_open_breaker_cools_down_then_probes_half_open(self):
        _, _, net, consumer = build_cell(self.HEALTH, name="breaker")
        consumer.sync_once()  # 2 consecutive faults trip the breaker
        assert consumer.breaker_state == "open"
        clock = net.elapsed_ms + net.scheduler.now
        before = net.stats.round_trips
        consumer.sync_once()  # cooldown sleep + single half-open probe
        assert (net.elapsed_ms + net.scheduler.now) - clock >= (
            self.HEALTH.breaker_cooldown_ms
        )
        assert net.stats.round_trips == before + 1
        # The failed probe re-tripped the breaker open.
        assert consumer.breaker_state == "open"
        assert consumer.health_snapshot()["breaker_trips"] == 2

    def test_successful_half_open_probe_closes_the_breaker(self):
        master, _, net, consumer = build_cell(self.HEALTH, name="closer")
        consumer.sync_once()
        assert consumer.breaker_state == "open"
        master.add(person("E9"))
        net.heal_partition()
        assert consumer.sync_once() is not None
        assert consumer.breaker_state == "closed"
        assert consumer.health_state == "healthy"
        assert consumer.content.matches_master(master)


class TestPersistModeHealth:
    def test_gave_up_persist_consumer_tears_down_its_subscription(self):
        health = HealthPolicy(
            max_total_attempts=4, breaker_threshold=100, quarantine_after=100
        )
        master = build_master()
        provider = ResyncProvider(master)
        net = FaultyNetwork()
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            seed=2,
            mode="persist",
            policy=POLICY,
            health=health,
            name="persist-giveup",
        )
        assert consumer.sync_once() is not None
        net.partition(provider)
        while consumer.health_state != "gave_up":
            consumer.sync_once()
        # No orphaned subscription keeps charging the provider.
        assert consumer._handle is None
        trips = net.stats.round_trips
        for _ in range(20):
            assert consumer.sync_once() is None
        assert net.stats.round_trips == trips
