"""Metrics and experiment harness shared by tests, examples and benches."""

from .experiment import ExperimentResult, ReplicaDriver

__all__ = ["ExperimentResult", "ReplicaDriver"]
