"""Shared fixtures: a small master directory and canonical objects."""

from __future__ import annotations

import pytest

from repro.ldap import Entry, SearchRequest, Scope
from repro.server import DirectoryServer
from repro.workload import DirectoryConfig, EnterpriseDirectory, generate_directory


@pytest.fixture(scope="session")
def small_directory() -> EnterpriseDirectory:
    """A tiny deterministic enterprise directory (session-cached)."""
    return generate_directory(
        DirectoryConfig(
            employees=600,
            divisions=4,
            departments_per_division=10,
            locations=20,
            employees_per_block=20,
            seed=99,
        )
    )


@pytest.fixture()
def master(small_directory: EnterpriseDirectory) -> DirectoryServer:
    """A fresh master server loaded with the small directory."""
    server = DirectoryServer("master")
    server.add_naming_context(small_directory.suffix)
    server.load(small_directory.entries)
    return server


@pytest.fixture()
def tiny_master() -> DirectoryServer:
    """A five-entry master for fine-grained sync/update tests."""
    server = DirectoryServer("master")
    server.add_naming_context("o=xyz")
    server.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    server.add(Entry("c=us,o=xyz", {"objectClass": ["country"], "c": "us"}))
    for i in range(1, 4):
        server.add(
            Entry(
                f"cn=E{i},c=us,o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"E{i}",
                    "sn": "Test",
                    "departmentNumber": "42",
                },
            )
        )
    return server


@pytest.fixture()
def dept42() -> SearchRequest:
    """The query whose content the sync tests track."""
    return SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")
