"""E12 — §3.4.2 / §4.1 ablation: template vs general containment cost.

Paper: general LDAP query containment is NP-complete [11]; templates
reduce it to (i) pruning impossible template pairs a priori, (ii)
precomputed cross-template value comparisons, (iii) O(n) predicate-wise
comparison within a template — versus the O(mn)-comparison /
exponential-DNF general check of Proposition 1.

The bench times the three regimes on the same query/stored-filter pairs
and verifies the verdicts agree wherever both methods prove
containment.
"""

from __future__ import annotations

import pytest

from repro.core import (
    TemplateRegistry,
    filter_contained_in,
    general_contained_in,
    template_key,
)

from .common import BenchEnv, block_filter, hot_blocks, report

TEMPLATES = TemplateRegistry.from_strings(
    "(serialnumber=_)",
    "(serialnumber=_*_)",
    "(mail=_)",
    "(&(departmentnumber=_)(divisionnumber=_)(objectclass=department))",
)


@pytest.fixture(scope="module")
def pairs(env: BenchEnv):
    """(query filter, stored filter) pairs drawn from the workload."""
    stored = [block_filter(b, cc).filter for b, cc, _h in hot_blocks(env)[:50]]
    queries = [
        record.request.filter
        for record in env.day(2)[:200]
    ]
    product = [(q, s) for q in queries for s in stored]
    # Stride-sample so every slice of the pair list mixes query types.
    stride = max(1, len(product) // 4000)
    return product[::stride]


def test_containment_verdicts_agree(benchmark, env: BenchEnv, pairs):
    """Both methods are sound, so wherever the structural check proves
    containment over this workload the general check must not be able
    to produce a counterexample-backed refutation — spot-verified here
    by running both over the same pairs and reporting the verdicts."""

    def check():
        structural_hits = 0
        general_hits = 0
        both = 0
        for q, s in pairs[:1000]:
            structural = filter_contained_in(q, s)
            general = general_contained_in(q, s, max_terms=512)
            structural_hits += structural
            general_hits += general
            both += structural and general
        return structural_hits, general_hits, both

    structural_hits, general_hits, both = benchmark.pedantic(
        check, rounds=1, iterations=1
    )
    assert structural_hits > 0, "the workload must exercise real containments"

    rows = [
        ("pairs checked", 1000),
        ("structural True", structural_hits),
        ("general True", general_hits),
        ("agree True", both),
    ]
    report(
        "containment_cost_agreement",
        "Verdict agreement",
        ["metric", "value"],
        rows,
        params={"pairs": 1000, "general_max_terms": 512},
        metrics={
            "structural_true": structural_hits,
            "general_true": general_hits,
            "agree_true": both,
        },
        paper_expected={"shape": "both sound methods agree on proven containments"},
    )


@pytest.mark.parametrize("method", ["template_pruned", "structural", "general"])
def test_containment_cost(benchmark, env: BenchEnv, pairs, method):
    sample = pairs[:500]

    if method == "template_pruned":
        # The full §3.4.2 pipeline: prune by template-pair compatibility
        # first, run the structural check only on survivors.
        keys = [(template_key(q), template_key(s)) for q, s in sample]

        def run():
            verdicts = 0
            for (q, s), (qk, sk) in zip(sample, keys):
                if not TEMPLATES.may_answer(sk, qk):
                    continue
                if filter_contained_in(q, s):
                    verdicts += 1
            return verdicts

    elif method == "structural":

        def run():
            return sum(1 for q, s in sample if filter_contained_in(q, s))

    else:

        def run():
            verdicts = 0
            for q, s in sample:
                try:
                    if general_contained_in(q, s, max_terms=512):
                        verdicts += 1
                except OverflowError:
                    pass
            return verdicts

    benchmark(run)


def test_template_pruning_skips_most_pairs(benchmark, env: BenchEnv, pairs):
    """The a-priori compatibility matrix eliminates the bulk of the
    cross-template checks (the paper's first simplification)."""
    sample = pairs[:2000]
    pruned = benchmark.pedantic(
        lambda: sum(
            1
            for q, s in sample
            if not TEMPLATES.may_answer(template_key(s), template_key(q))
        ),
        rounds=1,
        iterations=1,
    )
    fraction = pruned / len(sample)
    report(
        "containment_cost_pruning",
        "Template pruning effectiveness",
        ["metric", "value"],
        [("pairs", len(sample)), ("pruned", pruned), ("fraction", fraction)],
        params={"pairs": len(sample)},
        metrics={"pruned": pruned, "pruned_fraction": fraction},
        paper_expected={"pruned_fraction_min": 0.3},
    )
    # serialNumber queries are 58% of the trace; everything else is
    # prunable against serialNumber block filters.
    assert fraction >= 0.3
