"""Exhaustive containment check over a tiny closed world.

Sampling-based soundness lives in test_containment_property; this file
*enumerates* every entry over a small value domain, making the
containment comparison exact on the fragment it covers:

* for equality/range/presence leaf pairs the checker must be **sound
  and complete** (it equals semantic containment);
* for substring pairs it must be sound (semantic containment whenever
  it says True) — completeness is not promised there.
"""

import itertools


from repro.core import filter_contained_in, predicate_contained_in
from repro.ldap import (
    Entry,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Present,
    Substring,
    matches,
)

DOMAIN = ["a", "ab", "b", "ba", "c"]

# Every entry shape over the domain: no sn at all, or 1–2 values.
ENTRIES = [Entry("cn=e,o=xyz", {"cn": "e"})] + [
    Entry("cn=e,o=xyz", {"cn": "e", "sn": list(values)})
    for size in (1, 2)
    for values in itertools.combinations(DOMAIN, size)
]


def semantic_contained(p1, p2) -> bool:
    return all(matches(p2, e) for e in ENTRIES if matches(p1, e))


def eq_range_predicates():
    preds = [Present("sn")]
    for value in DOMAIN:
        preds.append(Equality("sn", value))
        preds.append(GreaterOrEqual("sn", value))
        preds.append(LessOrEqual("sn", value))
    return preds


def substring_predicates():
    preds = []
    for value in DOMAIN:
        preds.append(Substring("sn", initial=value))
        preds.append(Substring("sn", final=value))
        preds.append(Substring("sn", any_parts=(value,)))
    preds.append(Substring("sn", initial="a", final="b"))
    preds.append(Substring("sn", initial="b", final="a"))
    return preds


class TestExhaustive:
    def test_eq_range_fragment_sound(self):
        """Exhaustive soundness: checker True ⇒ no counterexample
        entry exists.  (The converse cannot be asserted on a finite
        domain: e.g. ``(sn>=a) ⊆ (sn<=c)`` holds over this five-value
        world only because 'c' happens to be its maximum — over the
        unbounded string space the checker rightly answers False.)"""
        preds = eq_range_predicates()
        unsound = []
        for p1 in preds:
            for p2 in preds:
                if predicate_contained_in(p1, p2) and not semantic_contained(p1, p2):
                    unsound.append((str(p1), str(p2)))
        assert not unsound, unsound[:10]

    def test_eq_range_fragment_complete_where_domain_independent(self):
        """Completeness on the sub-relations whose truth does not depend
        on the value domain: same-shape pairs and equality-vs-range."""
        for v1 in DOMAIN:
            for v2 in DOMAIN:
                assert predicate_contained_in(
                    Equality("sn", v1), Equality("sn", v2)
                ) == (v1 == v2)
                assert predicate_contained_in(
                    Equality("sn", v1), GreaterOrEqual("sn", v2)
                ) == (v1 >= v2)
                assert predicate_contained_in(
                    Equality("sn", v1), LessOrEqual("sn", v2)
                ) == (v1 <= v2)
                assert predicate_contained_in(
                    GreaterOrEqual("sn", v1), GreaterOrEqual("sn", v2)
                ) == (v1 >= v2)
                assert predicate_contained_in(
                    LessOrEqual("sn", v1), LessOrEqual("sn", v2)
                ) == (v1 <= v2)
        for value in DOMAIN:
            for pred in (
                Equality("sn", value),
                GreaterOrEqual("sn", value),
                LessOrEqual("sn", value),
            ):
                assert predicate_contained_in(pred, Present("sn"))

    def test_substring_fragment_sound(self):
        preds = substring_predicates() + eq_range_predicates()
        unsound = []
        for p1 in preds:
            for p2 in preds:
                if predicate_contained_in(p1, p2) and not semantic_contained(p1, p2):
                    unsound.append((str(p1), str(p2)))
        assert not unsound, unsound[:10]

    def test_conjunction_fragment_sound(self):
        """Two-predicate conjunctions against single predicates."""
        leaves = eq_range_predicates()
        from repro.ldap import And

        conjunctions = [
            And((a, b)) for a, b in itertools.combinations(leaves[:8], 2)
        ]
        unsound = []
        for f1 in conjunctions:
            for f2 in leaves:
                if filter_contained_in(f1, f2) and not all(
                    matches(f2, e) for e in ENTRIES if matches(f1, e)
                ):
                    unsound.append((str(f1), str(f2)))
        assert not unsound, unsound[:10]

    def test_disjunction_or_left_rule_exact(self):
        """(|(p)(q)) ⊆ r iff p ⊆ r and q ⊆ r — the checker's Or-left
        rule must agree with the checker's own leaf verdicts exactly,
        and never contradict semantics."""
        from repro.ldap import Or

        leaves = eq_range_predicates()
        for p, q in itertools.combinations(leaves[:8], 2):
            union = Or((p, q))
            for r in leaves:
                checker = filter_contained_in(union, r)
                leafwise = predicate_contained_in(p, r) and predicate_contained_in(q, r)
                assert checker == leafwise, (str(union), str(r))
                if checker:
                    assert all(
                        matches(r, e) for e in ENTRIES if matches(union, e)
                    )
