"""Consumer snapshots: warm starts, damage detection, ladder fall-through.

The fault-matrix cells at the bottom are seeded from ``RECOVERY_SEEDS``
(CI's crash-recovery matrix), so each matrix cell exercises a different
deterministic damage schedule.
"""

import os

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
)
from repro.sync import (
    FileSnapshotStore,
    MemorySnapshotStore,
    ResilientConsumer,
    ResyncProvider,
    SnapshotError,
    SnapshotRecoverer,
    SyncedContent,
)
from repro.sync.snapshot import decode_snapshot, encode_snapshot

SEEDS = [int(s) for s in os.environ.get("RECOVERY_SEEDS", "101,202,303").split(",")]

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")


def person(name: str) -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": "42"},
    )


def build_master(n: int = 30) -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(n):
        master.add(person(f"E{i}"))
    return master


def entries(n: int = 5):
    return [person(f"E{i}") for i in range(n)]


# ----------------------------------------------------------------------
# document format
# ----------------------------------------------------------------------
class TestDocument:
    def test_roundtrip(self):
        text = encode_snapshot(entries(), "s1:4")
        doc = decode_snapshot(text)
        assert doc.cookie == "s1:4"
        assert len(doc.entries) == 5
        assert doc.size_bytes == len(text.encode("utf-8"))

    def test_none_cookie_roundtrip(self):
        doc = decode_snapshot(encode_snapshot(entries(), None))
        assert doc.cookie is None

    def test_entries_roundtrip_values(self):
        original = person("E0")
        doc = decode_snapshot(encode_snapshot([original], "s1:0"))
        restored = doc.entries[original.dn]
        for name in original.attribute_names():
            assert restored.get(name) == original.get(name)

    def test_foreign_text_rejected(self):
        with pytest.raises(SnapshotError, match="repro-snapshot"):
            decode_snapshot("dn: cn=a,o=xyz\ncn: a\n")

    def test_truncation_detected(self):
        text = encode_snapshot(entries(), "s1:4")
        with pytest.raises(SnapshotError, match="checksum"):
            decode_snapshot(text[: len(text) - 20])

    def test_corruption_detected(self):
        text = encode_snapshot(entries(), "s1:4")
        damaged = text[:-10] + "X" + text[-9:]
        with pytest.raises(SnapshotError):
            decode_snapshot(damaged)


# ----------------------------------------------------------------------
# stores
# ----------------------------------------------------------------------
@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemorySnapshotStore()
    return FileSnapshotStore(str(tmp_path / "replica"))


class TestStore:
    def test_empty_load(self, store):
        assert store.load() is None
        assert store.size_bytes == 0

    def test_save_load(self, store):
        size = store.save(entries(), "s1:2")
        assert size == store.size_bytes > 0
        doc = decode_snapshot(store.load())
        assert doc.cookie == "s1:2"
        assert len(doc.entries) == 5

    def test_save_replaces(self, store):
        store.save(entries(5), "s1:1")
        store.save(entries(2), "s1:9")
        doc = decode_snapshot(store.load())
        assert doc.cookie == "s1:9"
        assert len(doc.entries) == 2

    def test_discard(self, store):
        store.save(entries(), "s1:1")
        store.discard()
        assert store.load() is None
        store.discard()  # idempotent

    def test_damage_truncate_detected(self, store):
        store.save(entries(), "s1:1")
        store.damage_truncate(0.6)
        with pytest.raises(SnapshotError):
            decode_snapshot(store.load())

    def test_damage_corrupt_detected(self, store):
        store.save(entries(), "s1:1")
        store.damage_corrupt(0.7)
        with pytest.raises(SnapshotError):
            decode_snapshot(store.load())

    def test_damage_stale_cookie_stays_valid(self, store):
        store.save(entries(), "s1:1")
        store.damage_stale_cookie()
        doc = decode_snapshot(store.load())  # content still verifies
        assert doc.cookie == "stale-snapshot-cookie:0"
        assert len(doc.entries) == 5

    def test_file_save_is_atomic_replace(self, tmp_path):
        fstore = FileSnapshotStore(str(tmp_path / "replica"))
        fstore.save(entries(), "s1:1")
        assert not os.path.exists(fstore.path + ".tmp")
        # A second save goes through the temp file again and never
        # leaves it behind.
        fstore.save(entries(2), "s1:2")
        assert not os.path.exists(fstore.path + ".tmp")
        assert decode_snapshot(fstore.load()).cookie == "s1:2"


# ----------------------------------------------------------------------
# staged recoverer
# ----------------------------------------------------------------------
class TestRecoverer:
    def make(self, store):
        content = SyncedContent(REQUEST)
        return SnapshotRecoverer(store, content), content

    def test_miss_stays_idle(self):
        recoverer, content = self.make(MemorySnapshotStore())
        assert recoverer.warm_start() is False
        assert recoverer.stage == "idle"
        assert len(content) == 0

    def test_warm_start_installs(self):
        store = MemorySnapshotStore()
        store.save(entries(4), "s7:3")
        recoverer, content = self.make(store)
        assert recoverer.warm_start() is True
        assert recoverer.stage == "resuming"
        assert len(content) == 4
        assert content.cookie == "s7:3"
        recoverer.mark_live()
        assert recoverer.stage == "live"

    def test_damaged_snapshot_never_applied(self):
        store = MemorySnapshotStore()
        store.save(entries(4), "s7:3")
        store.damage_corrupt(0.8)
        recoverer, content = self.make(store)
        assert recoverer.warm_start() is False
        assert recoverer.stage == "discarded"
        assert len(content) == 0 and content.cookie is None
        # Consulted exactly once: the damaged dump is gone.
        assert store.load() is None

    def test_save_dumps_content(self):
        store = MemorySnapshotStore()
        recoverer, content = self.make(store)
        content.entries = {e.dn: e for e in entries(3)}
        content.cookie = "s2:5"
        size = recoverer.save()
        assert size == store.size_bytes > 0
        doc = decode_snapshot(store.load())
        assert doc.cookie == "s2:5" and len(doc.entries) == 3


# ----------------------------------------------------------------------
# consumer integration: the ladder's first rung
# ----------------------------------------------------------------------
def run_session(provider, store, master, cycles: int = 1):
    """One replica lifetime: sync *cycles* times, snapshotting."""
    net = FaultyNetwork()
    consumer = ResilientConsumer(
        REQUEST, provider, network=net, snapshot_store=store
    )
    for _ in range(cycles):
        consumer.sync_once()
    assert consumer.content.matches_master(master)
    return consumer, net


class TestConsumerWarmStart:
    def test_restart_resumes_in_o_delta(self):
        master = build_master(40)
        provider = ResyncProvider(master)
        store = MemorySnapshotStore()
        run_session(provider, store, master)

        for i in range(3):
            master.add(person(f"N{i}"))

        warm_net = FaultyNetwork()
        restarted = ResilientConsumer(
            REQUEST, provider, network=warm_net, snapshot_store=store
        )
        assert restarted.warm_started
        assert len(restarted.content) == 40  # restored before any poll
        restarted.sync_once()
        assert restarted.content.matches_master(master)

        cold_net = FaultyNetwork()
        cold = ResilientConsumer(REQUEST, provider, network=cold_net)
        cold.sync_once()
        assert cold.content.matches_master(master)

        # The warm start paid for the 3 new entries, not the 43.
        assert warm_net.stats.bytes_sent * 5 <= cold_net.stats.bytes_sent
        stage = warm_net.registry.gauge("sync.snapshot.stage")
        assert stage.value == 4  # live

    def test_snapshot_saved_every_interval(self):
        master = build_master(10)
        provider = ResyncProvider(master)
        store = MemorySnapshotStore()
        net = FaultyNetwork()
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, snapshot_store=store,
            snapshot_interval=3,
        )
        for _ in range(6):
            consumer.sync_once()
        assert net.registry.counter("sync.snapshot.saves").value == 2

    def test_corrupt_snapshot_falls_through_to_rebuild(self):
        master = build_master(20)
        provider = ResyncProvider(master)
        store = MemorySnapshotStore()
        run_session(provider, store, master)
        store.damage_corrupt(0.5)

        net = FaultyNetwork()
        restarted = ResilientConsumer(
            REQUEST, provider, network=net, snapshot_store=store
        )
        assert not restarted.warm_started
        assert restarted.snapshot_recoverer.stage == "discarded"
        assert len(restarted.content) == 0  # never applied
        restarted.sync_once()
        assert restarted.content.matches_master(master)
        assert net.registry.counter("sync.snapshot.discarded").value == 1

    def test_stale_cookie_enters_reconcile_tier(self):
        master = build_master(30)
        provider = ResyncProvider(master)
        store = MemorySnapshotStore()
        run_session(provider, store, master)
        store.damage_stale_cookie()
        master.add(person("Z0"))

        net = FaultyNetwork()
        restarted = ResilientConsumer(
            REQUEST, provider, network=net, snapshot_store=store
        )
        assert restarted.warm_started
        restarted.sync_once()
        assert restarted.content.matches_master(master)
        # Content restored + refused cookie → the sketch tier ran
        # instead of a full reload (O(delta), docs/RECOVERY.md).
        assert net.registry.counter("sync.reconcile.attempts").value == 1
        assert net.registry.counter("sync.resilient.reloads").value == 0

    def test_stale_cookie_without_reconcile_reloads(self):
        master = build_master(10)
        provider = ResyncProvider(master)
        store = MemorySnapshotStore()
        run_session(provider, store, master)
        store.damage_stale_cookie()

        net = FaultyNetwork()
        restarted = ResilientConsumer(
            REQUEST, provider, network=net, snapshot_store=store,
            reconcile_config=None,
        )
        restarted.sync_once()
        assert restarted.content.matches_master(master)
        assert net.registry.counter("sync.resilient.reloads").value == 1

    def test_snapshot_exemption_ends_after_first_success(self):
        master = build_master(10)
        provider = ResyncProvider(master)
        store = MemorySnapshotStore()
        run_session(provider, store, master)

        net = FaultyNetwork()
        restarted = ResilientConsumer(
            REQUEST, provider, network=net, snapshot_store=store
        )
        restarted.sync_once()  # live again
        # A later dead cookie is a plain-cookie case: reload, no sketch.
        provider.invalidate_cookie(restarted.content.cookie)
        restarted.sync_once()
        assert restarted.content.matches_master(master)
        assert net.registry.counter("sync.reconcile.attempts").value == 0
        assert net.registry.counter("sync.resilient.reloads").value == 1


# ----------------------------------------------------------------------
# fault plan: the :s decision stream
# ----------------------------------------------------------------------
class TestSnapshotFaultPlan:
    def test_deterministic(self):
        spec = FaultSpec(snapshot_truncate=0.5, snapshot_corrupt=0.5, snapshot_stale=0.5)
        a = [FaultPlan(spec, seed=7).next_snapshot() for _ in range(1)][0]
        b = [FaultPlan(spec, seed=7).next_snapshot() for _ in range(1)][0]
        assert a == b

    def test_own_stream_leaves_exchanges_unchanged(self):
        # Adding snapshot fault rates must not perturb the exchange
        # schedule for a seed (the :s stream is independent).
        base = FaultPlan(FaultSpec.uniform(0.2), seed=11)
        snap = FaultPlan(
            FaultSpec.uniform(0.2, snapshot_truncate=1.0, snapshot_corrupt=1.0),
            seed=11,
        )
        snap.next_snapshot()
        assert [base.next_exchange() for _ in range(8)] == [
            snap.next_exchange() for _ in range(8)
        ]

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(snapshot_corrupt=1.5)


# ----------------------------------------------------------------------
# fault-matrix cells (seeded from RECOVERY_SEEDS, like CI's matrix)
# ----------------------------------------------------------------------
DAMAGE_KINDS = ("snapshot_truncate", "snapshot_corrupt", "snapshot_stale")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", DAMAGE_KINDS)
def test_damaged_restart_converges(kind, seed):
    """Whatever the damage, a restarted replica falls through the
    ladder and still converges — and detectable damage (truncation,
    corruption) is never applied."""
    master = build_master(25)
    provider = ResyncProvider(master)
    store = MemorySnapshotStore()
    run_session(provider, store, master)
    master.add(person(f"after-{seed}"))

    net = FaultyNetwork(FaultPlan(FaultSpec(**{kind: 1.0}), seed=seed))
    net.damage_snapshot(store)
    assert net.fault_counts().get(kind) == 1

    restarted = ResilientConsumer(
        REQUEST, provider, network=net, snapshot_store=store, seed=seed
    )
    if kind == "snapshot_stale":
        assert restarted.warm_started  # intact content restores
    else:
        assert restarted.snapshot_recoverer.stage == "discarded"
        assert len(restarted.content) == 0  # never applied
    assert restarted.converge(master) is not None


@pytest.mark.parametrize("seed", SEEDS)
def test_probabilistic_restart_cycle_converges(seed):
    """Several crash/restart generations under uniform fault rates:
    every generation restarts from whatever the previous one left in
    the store — possibly damaged at restart time — and converges."""
    master = build_master(20)
    provider = ResyncProvider(master)
    store = MemorySnapshotStore()
    plan = FaultPlan(FaultSpec.uniform(0.3), seed=seed)
    net = FaultyNetwork(plan)
    for generation in range(4):
        master.add(person(f"G{generation}-{seed}"))
        net.damage_snapshot(store)
        consumer = ResilientConsumer(
            REQUEST,
            provider,
            network=net,
            snapshot_store=store,
            seed=seed + generation,
        )
        assert consumer.converge(master, max_cycles=64) is not None
