"""Tests for the QC algorithm: region, attribute and full containment."""


from repro.core import (
    attributes_contained_in,
    query_contained_in,
    region_contained_in,
)
from repro.ldap import Scope, SearchRequest


def region(b, s, bs, ss) -> bool:
    return region_contained_in(
        SearchRequest(b, s, "(a=1)"), SearchRequest(bs, ss, "(a=1)")
    )


class TestRegionSameBase:
    def test_equal_scope(self):
        for s in Scope:
            assert region("o=xyz", s, "o=xyz", s)

    def test_subtree_contains_narrower(self):
        assert region("o=xyz", Scope.BASE, "o=xyz", Scope.SUB)
        assert region("o=xyz", Scope.ONE, "o=xyz", Scope.SUB)

    def test_narrower_scope_does_not_contain_wider(self):
        assert not region("o=xyz", Scope.SUB, "o=xyz", Scope.ONE)
        assert not region("o=xyz", Scope.ONE, "o=xyz", Scope.BASE)

    def test_base_not_in_one_level(self):
        """Documented deviation from the paper's pseudocode: a ONE
        search excludes the base entry, so BASE ⊄ ONE at equal bases."""
        assert not region("o=xyz", Scope.BASE, "o=xyz", Scope.ONE)


class TestRegionAncestorBase:
    def test_subtree_over_descendant(self):
        for s in Scope:
            assert region("c=us,o=xyz", s, "o=xyz", Scope.SUB)

    def test_one_level_over_child_base(self):
        assert region("c=us,o=xyz", Scope.BASE, "o=xyz", Scope.ONE)

    def test_one_level_not_over_grandchild(self):
        assert not region("cn=a,c=us,o=xyz", Scope.BASE, "o=xyz", Scope.ONE)

    def test_one_level_not_over_child_subtree(self):
        assert not region("c=us,o=xyz", Scope.SUB, "o=xyz", Scope.ONE)
        assert not region("c=us,o=xyz", Scope.ONE, "o=xyz", Scope.ONE)

    def test_base_scope_stored_covers_nothing_below(self):
        assert not region("c=us,o=xyz", Scope.BASE, "o=xyz", Scope.BASE)

    def test_unrelated_bases(self):
        assert not region("c=us,o=abc", Scope.BASE, "o=xyz", Scope.SUB)

    def test_descendant_does_not_cover_ancestor(self):
        assert not region("o=xyz", Scope.SUB, "c=us,o=xyz", Scope.SUB)

    def test_root_subtree_covers_everything(self):
        assert region("cn=deep,c=us,o=xyz", Scope.SUB, "", Scope.SUB)


class TestAttributeContainment:
    def test_star_contains_all(self):
        q = SearchRequest("o=xyz", attributes=["mail"])
        qs = SearchRequest("o=xyz")
        assert attributes_contained_in(q, qs)

    def test_all_not_in_subset(self):
        q = SearchRequest("o=xyz")
        qs = SearchRequest("o=xyz", attributes=["mail"])
        assert not attributes_contained_in(q, qs)

    def test_subset(self):
        q = SearchRequest("o=xyz", attributes=["mail"])
        qs = SearchRequest("o=xyz", attributes=["mail", "cn"])
        assert attributes_contained_in(q, qs)
        assert not attributes_contained_in(qs, q)

    def test_case_insensitive(self):
        q = SearchRequest("o=xyz", attributes=["MAIL"])
        qs = SearchRequest("o=xyz", attributes=["mail"])
        assert attributes_contained_in(q, qs)


class TestFullQc:
    def test_all_three_conditions(self):
        q = SearchRequest(
            "c=us,o=xyz", Scope.SUB, "(&(sn=Doe)(givenName=J))", ["mail"]
        )
        qs = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)", ["mail", "cn"])
        assert query_contained_in(q, qs)

    def test_region_failure(self):
        q = SearchRequest("o=abc", Scope.SUB, "(sn=Doe)")
        qs = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
        assert not query_contained_in(q, qs)

    def test_attribute_failure(self):
        q = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)", ["mail", "cn"])
        qs = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)", ["mail"])
        assert not query_contained_in(q, qs)

    def test_filter_failure(self):
        q = SearchRequest("o=xyz", Scope.SUB, "(sn=Smith)")
        qs = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
        assert not query_contained_in(q, qs)

    def test_null_based_query_in_null_based_stored(self):
        """§3.1.1: filter replicas answer null-based queries."""
        q = SearchRequest("", Scope.SUB, "(serialNumber=004217IN)")
        qs = SearchRequest("", Scope.SUB, "(serialNumber=0042*IN)")
        assert query_contained_in(q, qs)

    def test_memoized_path_consistent(self):
        q = SearchRequest("o=xyz", Scope.SUB, "(sn=Doe)")
        qs = SearchRequest("o=xyz", Scope.SUB, "(sn=*)")
        assert query_contained_in(q, qs)
        assert query_contained_in(q, qs)  # cached second call

    def test_custom_registry_path(self):
        from repro.ldap import AttributeRegistry, AttributeType, Syntax

        reg = AttributeRegistry([AttributeType("age", syntax=Syntax.INTEGER)])
        q = SearchRequest("o=xyz", Scope.SUB, "(age=9)")
        qs = SearchRequest("o=xyz", Scope.SUB, "(age<=30)")
        assert query_contained_in(q, qs, registry=reg)
