"""LDAP templates — query prototypes (§3.4.2).

Typical directory applications generate query filters from a finite set
of prototypes.  A *template* is a filter with assertion values replaced
by ``_``: ``(&(cn=_)(ou=research))``, ``(uid=_)``, ``(sn=_*)``.  Note
that a template may keep some values fixed (``ou=research`` above).

Templates make containment tractable three ways (§3.4.2):

1. **Candidate pruning** — containment checks against templates that
   cannot possibly answer the query are skipped.
   :meth:`TemplateRegistry.may_answer` precomputes, per template pair,
   whether a stored query of one template can contain a query of the
   other (by predicate-shape compatibility).
2. **A-priori cross-template conditions** — for the remaining pairs,
   the containment check reduces to assertion-value comparisons
   (Proposition 2), implemented in
   :mod:`repro.core.filter_containment`.
3. **Same-template fast path** — filters of the same template need only
   predicate-wise value comparison (Proposition 3).

In template-based containment, only queries belonging to a configured
template set are replicated and answered; everything else is referred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Type

from ..ldap.filter_parser import parse_filter
from ..ldap.filters import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Predicate,
    Present,
    Substring,
    simplify,
    template_of,
)

__all__ = ["Template", "TemplateRegistry", "template_key"]

WILDCARD = "_"


def template_key(flt: Filter) -> str:
    """Canonical fully-blanked template string of *flt* (grouping key)."""
    return template_of(flt)


# Which stored-predicate shapes can contain a query predicate of a given
# shape (the static part of Proposition 2's a-priori conditions).
_CONTAINABLE_BY: Dict[Type[Predicate], Tuple[Type[Predicate], ...]] = {
    Equality: (Equality, GreaterOrEqual, LessOrEqual, Substring, Present),
    GreaterOrEqual: (GreaterOrEqual, Present),
    LessOrEqual: (LessOrEqual, Present),
    Substring: (Substring, GreaterOrEqual, LessOrEqual, Present),
    Present: (Present,),
    Approx: (Approx, Present),
}


@dataclass(frozen=True)
class Template:
    """One query prototype.

    Attributes:
        text: the template's source text, e.g. ``(&(sn=_)(givenName=_))``.
        pattern: parsed filter AST in which assertion value ``_`` (or a
            substring component ``_``) means "any value here".
    """

    text: str
    pattern: Filter

    @classmethod
    def parse(cls, text: str) -> "Template":
        """Parse template *text* (RFC 2254 syntax with ``_`` wildcards)."""
        return cls(text=text, pattern=simplify(parse_filter(text)))

    @property
    def key(self) -> str:
        """Fully-blanked canonical key (what §7's workload types use)."""
        return template_of(self.pattern)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def matches(self, flt: Filter) -> bool:
        """True when *flt* is an instance of this template."""
        return self._match_node(self.pattern, simplify(flt))

    def _match_node(self, pattern: Filter, node: Filter) -> bool:
        if isinstance(pattern, (And, Or)):
            if type(pattern) is not type(node):
                return False
            if len(pattern.children) != len(node.children):
                return False
            # Children are matched canonically: sort both sides by their
            # blanked template string, then greedily pair within groups.
            return self._match_children(list(pattern.children), list(node.children))
        if isinstance(pattern, Not):
            return isinstance(node, Not) and self._match_node(pattern.child, node.child)
        if isinstance(pattern, Predicate):
            return isinstance(node, Predicate) and self._match_predicate(pattern, node)
        return False  # pragma: no cover - all node kinds handled

    def _match_children(self, pats: List[Filter], nodes: List[Filter]) -> bool:
        remaining = list(nodes)
        # Most-constrained patterns first: fixed values before wildcards.
        for pat in sorted(pats, key=_pattern_specificity, reverse=True):
            for candidate in remaining:
                if self._match_node(pat, candidate):
                    remaining.remove(candidate)
                    break
            else:
                return False
        return True

    def _match_predicate(self, pattern: Predicate, node: Predicate) -> bool:
        if pattern.attr_key != node.attr_key:
            return False
        if isinstance(pattern, Present):
            return isinstance(node, Present)
        if isinstance(pattern, Substring):
            if not isinstance(node, Substring):
                return False
            return self._match_substring(pattern, node)
        if type(pattern) is not type(node):
            return False
        return pattern.value == WILDCARD or pattern.value == node.value  # type: ignore[attr-defined]

    @staticmethod
    def _match_substring(pattern: Substring, node: Substring) -> bool:
        pcomp, ncomp = pattern.components, node.components
        if len(pcomp) != len(ncomp):
            return False
        for p, n in zip(pcomp, ncomp):
            if p == WILDCARD:
                if not n:
                    return False
            elif p != n:
                return False
        return True

    def __str__(self) -> str:
        return self.text


def _pattern_specificity(pattern: Filter) -> int:
    """Fixed-value predicates outrank wildcards when pairing children."""
    if isinstance(pattern, Predicate):
        value = getattr(pattern, "value", WILDCARD)
        return 1 if value != WILDCARD else 0
    return 2


class TemplateRegistry:
    """The configured template set plus the pair-compatibility matrix."""

    def __init__(self, templates: Iterable[Template] = ()):
        self._templates: List[Template] = []
        self._may_answer: Dict[Tuple[str, str], bool] = {}
        for template in templates:
            self.add(template)

    @classmethod
    def from_strings(cls, *texts: str) -> "TemplateRegistry":
        return cls(Template.parse(t) for t in texts)

    def add(self, template: Template) -> None:
        """Register *template*, extending the compatibility matrix."""
        self._templates.append(template)
        for other in self._templates:
            self._may_answer[(template.key, other.key)] = _shape_compatible(
                template.pattern, other.pattern
            )
            self._may_answer[(other.key, template.key)] = _shape_compatible(
                other.pattern, template.pattern
            )

    @property
    def templates(self) -> Tuple[Template, ...]:
        return tuple(self._templates)

    def classify(self, flt: Filter) -> Optional[Template]:
        """The first registered template *flt* belongs to, or None."""
        for template in self._templates:
            if template.matches(flt):
                return template
        return None

    def may_answer(self, stored_key: str, query_key: str) -> bool:
        """Precomputed: can a stored query of *stored_key* possibly
        contain a query of *query_key*?

        Unknown template keys fall back to True (the full containment
        check still guards correctness; the matrix only prunes).
        """
        return self._may_answer.get((stored_key, query_key), True)

    def __len__(self) -> int:
        return len(self._templates)


def _shape_compatible(stored: Filter, query: Filter) -> bool:
    """Static shape test: could *stored* contain some query of *query*'s
    template?  Conservative — True unless provably impossible.

    For positive conjunctive shapes: every conjunct of *stored* needs a
    query predicate on the same attribute whose shape it can contain
    (containment demands q ⊆ every conjunct of s, and a conjunctive q
    is contained in a predicate iff one of its predicates is).
    """
    stored_preds = _conjunctive_predicates(stored)
    query_preds = _conjunctive_predicates(query)
    if stored_preds is None or query_preds is None:
        return True  # non-conjunctive template: no pruning
    for ps in stored_preds:
        compatible = any(
            pq.attr_key == ps.attr_key
            and type(ps) in _CONTAINABLE_BY.get(type(pq), ())
            for pq in query_preds
        )
        if not compatible:
            return False
    return True


def _conjunctive_predicates(flt: Filter) -> Optional[List[Predicate]]:
    """Predicates of a positive conjunction, or None for other shapes."""
    if isinstance(flt, Predicate):
        return [flt]
    if isinstance(flt, And):
        preds: List[Predicate] = []
        for child in flt.children:
            if not isinstance(child, Predicate):
                return None
            preds.append(child)
        return preds
    return None
