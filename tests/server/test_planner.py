"""Tests for the cost-based search planner (docs/PLANNER.md)."""

import pytest

from repro.ldap import DN, Entry, Scope, SearchRequest, matches, parse_filter
from repro.server import DirectoryServer, EntryStore, SearchPlan


def build_server(n: int = 40) -> DirectoryServer:
    """A master with *n* people across 4 departments, numeric ages."""
    server = DirectoryServer("master")
    server.add_naming_context("o=xyz")
    server.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    server.add(
        Entry(
            "ou=people,o=xyz",
            {"objectClass": ["organizationalUnit"], "ou": "people"},
        )
    )
    for i in range(n):
        server.add(
            Entry(
                f"cn=p{i},ou=people,o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"p{i}",
                    "sn": f"Name{i:03d}",
                    "age": str(i + 5),
                    "departmentNumber": str(2000 + i % 4),
                },
            )
        )
    return server


@pytest.fixture()
def server() -> DirectoryServer:
    return build_server()


@pytest.fixture()
def store(server) -> EntryStore:
    return server.store


def plan(store, text) -> SearchPlan:
    return store.plan_for(parse_filter(text))


def brute(store, text):
    flt = parse_filter(text)
    return {e.dn for e in store.all_entries() if matches(flt, e)}


class TestStrategies:
    def test_equality(self, store):
        p = plan(store, "(cn=p7)")
        assert p.strategy == "equality"
        assert p.candidates == {DN.parse("cn=p7,ou=people,o=xyz")}

    def test_and_intersects_multiple_conjuncts(self, store):
        p = plan(store, "(&(departmentNumber=2001)(age>=20)(age<=25))")
        assert p.strategy == "intersect"
        # All three conjuncts were intersected: the set is strictly
        # smaller than any single conjunct's result.
        dept = plan(store, "(departmentNumber=2001)").candidates
        assert p.candidates < dept
        assert brute(store, "(&(departmentNumber=2001)(age>=20)(age<=25))") <= p.candidates

    def test_or_unions_children(self, store):
        p = plan(store, "(|(cn=p1)(cn=p2)(departmentNumber=2003))")
        assert p.strategy == "union"
        assert brute(store, "(|(cn=p1)(cn=p2)(departmentNumber=2003))") <= p.candidates

    def test_or_with_unindexable_child_scans(self, store):
        p = plan(store, "(|(cn=p1)(!(cn=p2)))")
        assert p.is_scan

    def test_not_scans(self, store):
        assert plan(store, "(!(cn=p1))").is_scan

    def test_broad_presence_degrades_to_scan(self, store):
        # (objectClass=*) selects everything; probing a near-total
        # candidate set is worse than walking the region.
        p = plan(store, "(objectClass=*)")
        assert p.is_scan
        assert p.estimate >= len(store)

    def test_missing_attribute_is_absent(self, store):
        p = plan(store, "(nosuchattr=x)")
        assert p.strategy == "absent"
        assert p.candidates == set()

    def test_unordered_attribute_range_is_absent(self, store):
        # objectClass has no ordering; matching returns False for every
        # entry, so the planner proves an empty candidate set.
        p = plan(store, "(objectClass>=person)")
        assert p.candidates == set()
        assert brute(store, "(objectClass>=person)") == set()

    def test_substring_with_short_component_still_prunes(self, store):
        p = plan(store, "(cn=*p1*)")
        assert p.candidates is not None
        assert brute(store, "(cn=*p1*)") <= p.candidates

    def test_missing_index_without_index_all_scans(self):
        store = EntryStore(indexed_attributes=("sn",), index_all=False)
        root = DN.parse("o=xyz")
        store.register_root(root)
        store.put(Entry(root, {"objectClass": ["organization"], "o": "xyz"}))
        store.put(
            Entry("cn=a,o=xyz", {"objectClass": ["person"], "cn": "a", "sn": "x"})
        )
        # cn is unindexed and the store cannot prove absence — scan.
        assert store.plan_for(parse_filter("(cn=a)")).is_scan
        assert store.plan_for(parse_filter("(sn=x)")).strategy == "equality"


class TestCostModel:
    def test_estimates_rank_conjuncts(self, store):
        planner = store._planner
        eq = planner._plan_predicate(parse_filter("(cn=p1)"))
        dept = planner._plan_predicate(parse_filter("(departmentNumber=2001)"))
        assert eq.estimate < dept.estimate

    def test_range_estimates_match_result_sizes(self, store):
        index = store.index_for("age")
        assert index.ordering.estimate_greater_or_equal("20") == len(
            index.ordering.greater_or_equal("20")
        )
        assert index.ordering.estimate_less_or_equal("20") == len(
            index.ordering.less_or_equal("20")
        )

    def test_empty_intersection_short_circuits(self, store):
        # Two department posting lists are disjoint and both large
        # enough to be intersected (not skipped by INTERSECT_STOP).
        p = plan(store, "(&(departmentNumber=2001)(departmentNumber=2002))")
        assert p.candidates == set()

    def test_tiny_first_conjunct_stops_intersecting(self, store):
        # One candidate left: verifying it beats materializing another
        # posting list, so the planner stops (still a sound superset).
        p = plan(store, "(&(cn=p1)(departmentNumber=2001))")
        assert p.candidates == {DN.parse("cn=p1,ou=people,o=xyz")}


class TestNumericRangeRegression:
    """End-to-end regression for the lexicographic OrderingIndex bug.

    Ages run 5..44; under string ordering "9" >= "10" but 9 < 10, so the
    old index produced wrong-shaped candidate sets for numeric ranges
    (e.g. (age>=10) lost ages 100+ and kept single digits).
    """

    def test_numeric_range_search_results(self, server):
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(age>=40)")
        )
        ages = sorted(int(e.first("age")) for e in result.entries)
        assert ages == [40, 41, 42, 43, 44]

    def test_two_sided_range(self, server):
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(&(age>=9)(age<=11))")
        )
        assert sorted(int(e.first("age")) for e in result.entries) == [9, 10, 11]

    def test_lexicographic_shape_would_fail(self, server):
        # "9" > "10" lexicographically: a string-ordered index would
        # exclude the age-10 entry from (age<=9)'s complement checks.
        low = server.search(SearchRequest("o=xyz", Scope.SUB, "(age<=9)"))
        assert sorted(int(e.first("age")) for e in low.entries) == [5, 6, 7, 8, 9]


class TestServerWiring:
    def test_plan_metrics_recorded(self, server):
        server.search(SearchRequest("o=xyz", Scope.SUB, "(cn=p1)"))
        server.search(SearchRequest("o=xyz", Scope.SUB, "(!(cn=p1))"))
        metrics = server.metrics.to_dict()
        assert metrics['server.plan.strategy{strategy="equality"}'] == 1
        assert metrics['server.plan.strategy{strategy="scan"}'] == 1
        assert metrics["server.plan.matched"] >= 1
        assert metrics["server.plan.examined"] >= metrics["server.plan.matched"]

    def test_range_scan_region_path(self, server):
        # Force the sorted-range intersection path for SUB candidate sets.
        server.RANGE_SCAN_THRESHOLD = 1
        result = server.search(
            SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=2001)")
        )
        assert len(result.entries) == 10
        scoped = server.search(
            SearchRequest("ou=people,o=xyz", Scope.ONE, "(departmentNumber=2001)")
        )
        assert len(scoped.entries) == 10

    def test_search_results_identical_across_paths(self, server):
        narrow = build_server()
        narrow.RANGE_SCAN_THRESHOLD = 0
        for text in ("(departmentNumber=2002)", "(age>=12)", "(cn=*p3*)"):
            a = server.search(SearchRequest("o=xyz", Scope.SUB, text))
            b = narrow.search(SearchRequest("o=xyz", Scope.SUB, text))
            assert {str(e.dn) for e in a.entries} == {str(e.dn) for e in b.entries}


class TestSubtreeRangeIndex:
    def test_region_matches_walk(self, store):
        base = DN.parse("ou=people,o=xyz")
        region = store.subtree_region(base)
        walked = {e.dn for e in store.iter_scope(base, Scope.SUB)}
        assert set(region) == walked
        assert region[0] == base  # parents sort first

    def test_region_survives_mutation(self, store):
        base = DN.parse("ou=people,o=xyz")
        before = len(store.subtree_region(base))
        store.delete(DN.parse("cn=p0,ou=people,o=xyz"))
        assert len(store.subtree_region(base)) == before - 1
        store.put(
            Entry(
                "cn=zz,ou=people,o=xyz",
                {"objectClass": ["person"], "cn": "zz", "sn": "Z"},
            )
        )
        assert len(store.subtree_region(base)) == before

    def test_sibling_prefix_not_included(self, store):
        # "ou=people" must not capture a sibling "ou=people2" subtree.
        store.register_root(DN.parse("o=xyz"))
        store.put(
            Entry(
                "ou=people2,o=xyz",
                {"objectClass": ["organizationalUnit"], "ou": "people2"},
            )
        )
        store.put(
            Entry(
                "cn=q,ou=people2,o=xyz",
                {"objectClass": ["person"], "cn": "q", "sn": "Q"},
            )
        )
        region = set(store.subtree_region(DN.parse("ou=people,o=xyz")))
        assert DN.parse("cn=q,ou=people2,o=xyz") not in region
        assert DN.parse("ou=people2,o=xyz") not in region
