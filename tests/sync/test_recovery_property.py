"""Crash-recovery properties: the journal replay oracle and convergence.

Two claims about the durable provider (docs/PROTOCOL.md §10):

* **Replay oracle** — a provider that crashes, replays its journal and
  resumes is *observationally identical* to one that never crashed: the
  notification streams served to the same consumers afterwards are
  byte-identical (same updates, same order, same PDU sizes, same
  cookies).  Checked by driving two mirrored masters through one
  deterministic schedule and crashing only one provider.
* **Convergence** — for any seeded schedule of mutations, crashes and
  journal damage (truncation/corruption), every
  :class:`ResilientConsumer` reconverges to the master's content once
  the network heals, in both poll and persist modes.

Like the fault matrix, the fixed cells are selectable through
``RECOVERY_SEEDS`` / ``FAULT_MODES`` so the CI ``crash-recovery`` job
can shard one (seed, mode) cell per matrix entry and any cell can be
replayed locally verbatim:
``RECOVERY_SEEDS=202 FAULT_MODES=persist pytest
tests/sync/test_recovery_property.py``.
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    Modification,
)
from repro.sync import (
    DurabilityConfig,
    MemoryJournal,
    ResilientConsumer,
    ResyncProvider,
    RetryPolicy,
    SyncedContent,
)
from repro.sync.durability import update_to_wire

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")
NAMES = [f"P{i}" for i in range(8)]

SEEDS = [int(s) for s in os.environ.get("RECOVERY_SEEDS", "101,202,303").split(",")]
MODES = [m.strip() for m in os.environ.get("FAULT_MODES", "poll,persist").split(",")]


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i, name in enumerate(NAMES):
        master.add(person(name, dept="42" if i % 2 == 0 else "99"))
    return master


def mutate(master: DirectoryServer, step: int) -> None:
    """One deterministic master update, cycling through all kinds."""
    name = NAMES[step % len(NAMES)]
    dn = f"cn={name},o=xyz"
    kind = step % 5
    if kind == 0:
        master.modify(dn, [Modification.replace("sn", f"S{step}")])
    elif kind == 1:
        master.modify(dn, [Modification.replace("departmentNumber", "42")])
    elif kind == 2:
        master.modify(dn, [Modification.replace("departmentNumber", "99")])
    elif kind == 3:
        master.delete(dn)
        master.add(person(name))
    else:
        master.add(person(f"X{step}"))


def durable(master: DirectoryServer, snapshot_interval: int = 8) -> ResyncProvider:
    return ResyncProvider(
        master,
        durability=DurabilityConfig(snapshot_interval=snapshot_interval),
        journal=MemoryJournal(),
    )


def response_signature(response):
    """Everything a consumer can observe about one response."""
    return (
        [update_to_wire(u) for u in response.updates],
        [u.pdu_bytes for u in response.updates],
        response.cookie,
        response.initial,
        response.uses_retain,
    )


# ----------------------------------------------------------------------
# the journal replay oracle
# ----------------------------------------------------------------------
def run_oracle(seed: int, steps: int, snapshot_interval: int) -> None:
    """Mirror one schedule onto two masters; crash only one provider.

    After every post-crash poll the crashed-and-recovered provider must
    serve byte-identical responses to the never-crashed one.
    """
    crashed_master, clean_master = build_master(), build_master()
    crashed = durable(crashed_master, snapshot_interval)
    clean = durable(clean_master, snapshot_interval)

    rng = random.Random(seed)
    requests = [REQUEST, SearchRequest("o=xyz", Scope.SUB, "(sn=T)")]
    pairs = [
        (SyncedContent(r), SyncedContent(r)) for r in requests
    ]  # (vs crashed, vs clean)
    for against_crashed, against_clean in pairs:
        a = response_signature(against_crashed.poll(crashed))
        b = response_signature(against_clean.poll(clean))
        assert a == b

    crash_at = rng.randrange(steps) if steps else 0
    for step in range(steps):
        mutate(crashed_master, step)
        mutate(clean_master, step)
        if step == crash_at:
            crashed.restart()
            crashed.recover()
        if rng.random() < 0.5:
            against_crashed, against_clean = pairs[step % len(pairs)]
            a = response_signature(against_crashed.poll(crashed))
            b = response_signature(against_clean.poll(clean))
            assert a == b, f"streams diverged at step {step} (seed={seed})"

    for against_crashed, against_clean in pairs:
        assert response_signature(against_crashed.poll(crashed)) == (
            response_signature(against_clean.poll(clean))
        )
        assert against_crashed.matches_master(crashed_master)
        assert against_clean.matches_master(clean_master)


@pytest.mark.parametrize("seed", SEEDS)
class TestReplayOracle:
    def test_recovered_stream_is_byte_identical(self, seed):
        run_oracle(seed, steps=14, snapshot_interval=8)

    def test_oracle_holds_without_snapshots(self, seed):
        run_oracle(seed, steps=10, snapshot_interval=10_000)

    def test_oracle_holds_under_repeated_crashes(self, seed):
        crashed_master, clean_master = build_master(), build_master()
        crashed, clean = durable(crashed_master, 4), durable(clean_master, 4)
        a, b = SyncedContent(REQUEST), SyncedContent(REQUEST)
        assert response_signature(a.poll(crashed)) == response_signature(b.poll(clean))
        for step in range(12):
            mutate(crashed_master, step)
            mutate(clean_master, step)
            crashed.restart()
            crashed.recover()  # crash between every single poll
            assert response_signature(a.poll(crashed)) == (
                response_signature(b.poll(clean))
            ), f"diverged at step {step} (seed={seed})"
        assert a.matches_master(crashed_master)


# ----------------------------------------------------------------------
# post-recovery traffic is O(delta)
# ----------------------------------------------------------------------
def test_post_recovery_poll_is_delta_sized():
    master = build_master()
    provider = durable(master)
    content = SyncedContent(REQUEST)
    initial = sum(u.pdu_bytes for u in content.poll(provider).updates)
    master.modify(f"cn={NAMES[0]},o=xyz", [Modification.replace("sn", "Z")])
    provider.restart()
    provider.recover()
    response = content.poll(provider)
    delta = sum(u.pdu_bytes for u in response.updates)
    assert len(response.updates) == 1  # just the touched entry...
    assert 0 < delta <= initial / 4  # ...one of four matching: not a reload


# ----------------------------------------------------------------------
# crash-recover-resume convergence under seeded faults
# ----------------------------------------------------------------------
def run_crash_scenario(
    seed: int, mode: str, rate: float = 0.3, steps: int = 12
) -> None:
    """Faulty phase with mid-schedule crashes (journal damage seeded by
    the plan), heal, converge, check."""
    master = build_master()
    provider = durable(master)
    net = FaultyNetwork(FaultPlan(FaultSpec.uniform(rate), seed=seed))
    consumer = ResilientConsumer(
        REQUEST,
        provider,
        network=net,
        seed=seed,
        mode=mode,
        policy=RetryPolicy(max_attempts=4, jitter=0.25, persist_refresh_interval=3),
    )
    crash_rng = random.Random(f"{seed}:crashes")
    for step in range(steps):
        mutate(master, step)
        if crash_rng.random() < 0.25:
            net.crash(provider)  # restart + journal damage + recover
        consumer.sync_once()
    net.heal()
    cycles = consumer.converge(master, max_cycles=16)
    assert cycles is not None, (
        f"no convergence within 16 clean cycles (seed={seed}, mode={mode}, "
        f"rate={rate}, faults={net.fault_counts()})"
    )
    assert consumer.content.matches_master(master)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", MODES)
class TestCrashRecoveryMatrix:
    """The CI crash-recovery matrix cells: fixed seeds × modes."""

    def test_converges_after_crashes(self, seed, mode):
        run_crash_scenario(seed, mode)

    def test_converges_with_hostile_journal(self, seed, mode):
        """Every crash damages the journal."""
        master = build_master()
        provider = durable(master)
        spec = FaultSpec(journal_truncate=0.5, journal_corrupt=0.5)
        net = FaultyNetwork(FaultPlan(spec, seed=seed))
        consumer = ResilientConsumer(
            REQUEST, provider, network=net, seed=seed, mode=mode
        )
        consumer.sync_once()
        for step in range(8):
            mutate(master, step)
            if step % 3 == 0:
                net.crash(provider)
            consumer.sync_once()
        net.heal()
        assert consumer.converge(master, max_cycles=16) is not None
        assert consumer.content.matches_master(master)

    def test_crash_replay_is_deterministic(self, seed, mode):
        """The same seed injects the same crashes and journal damage."""

        def run():
            master = build_master()
            provider = durable(master)
            net = FaultyNetwork(FaultPlan(FaultSpec.uniform(0.4), seed=seed))
            consumer = ResilientConsumer(
                REQUEST, provider, network=net, seed=seed, mode=mode
            )
            crash_rng = random.Random(f"{seed}:crashes")
            for step in range(8):
                mutate(master, step)
                if crash_rng.random() < 0.25:
                    net.crash(provider)
                consumer.sync_once()
            registry = master.metrics
            return (
                net.fault_counts(),
                net.stats.round_trips,
                registry.counter("sync.durability.recoveries").value,
                registry.counter("sync.durability.replayed_records").value,
            )

        assert run() == run()


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rate=st.floats(min_value=0.0, max_value=0.5),
    steps=st.integers(min_value=1, max_value=10),
    mode=st.sampled_from(MODES),
)
@settings(max_examples=30, deadline=None)
def test_any_crash_schedule_converges(seed, rate, steps, mode):
    run_crash_scenario(seed, mode, rate=rate, steps=steps)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    steps=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_replay_oracle_property(seed, steps):
    run_oracle(seed, steps=steps, snapshot_interval=4)
