#!/usr/bin/env python
"""Schema-check every ``benchmarks/results/*.json`` export, and
optionally diff the exports against committed baselines.

The bench JSON schema (produced by :func:`benchmarks.common.export_json`,
documented in docs/OBSERVABILITY.md §5):

* top-level keys ``bench`` (str), ``params`` (object of scalars),
  ``metrics`` (object of numbers), ``paper_expected`` (object or null);
  ``title`` (str) and ``table`` ({headers, rows}) are optional extras;
* ``metrics`` must contain at least ``round_trips``, ``bytes_sent``,
  ``qc_cache_hits`` and ``qc_cache_misses``;
* ``bench`` must match the file name stem.

With ``--baselines DIR`` each export is additionally compared against
the same-named JSON under *DIR* (``benchmarks/baselines`` holds the
committed reference run).  Regression-sensitive metrics — round trips,
latencies, byte counts (higher is worse) and throughput rates (lower is
worse) — may not regress by more than ``--tolerance`` (default 20%)
relative to the baseline; wall-time ``*_seconds`` metrics are gated
only by a generous ``SECONDS_SANITY_FACTOR`` (8x) bound that catches
order-of-magnitude measurement artifacts without tripping on normal
runner jitter; anything else is informational.  A bench
present in the baselines but missing from the results is a failure: a
perf regression must not hide by not running.

Exit status 0 when every file validates (and at least one exists when
``--require-any`` is passed) and no baseline regression exceeds the
tolerance; 1 otherwise.  Wired into CI (.github/workflows/ci.yml) after
the bench suite.

Usage::

    python benchmarks/validate_results.py [--dir DIR] [--require-any]
                                          [--baselines DIR] [--tolerance F]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

REQUIRED_METRICS = ("round_trips", "bytes_sent", "qc_cache_hits", "qc_cache_misses")

SCALAR = (str, int, float, bool, type(None))

# Metric-name patterns whose growth is a regression (protocol cost and
# latency)...
_HIGHER_IS_WORSE = ("round_trips", "bytes_sent", "elapsed_s", "_ms")
# ...and whose shrinkage is one (throughput rates).
_LOWER_IS_WORSE = ("_per_s",)
# Wall-time metrics ('*_seconds') stay informational at the normal
# tolerance — they jitter with the runner — but an order-of-magnitude
# jump is a measurement artifact (cold start, loaded machine) that must
# not land silently as the canonical result: gate those at a generous
# sanity multiple of the baseline instead.
_SECONDS_SANITY = ("_seconds",)
SECONDS_SANITY_FACTOR = 8.0


def regression_direction(name: str) -> Optional[str]:
    """'higher' / 'lower' / 'higher-sanity' = which movement of *name*
    is a regression ('higher-sanity' = gated only beyond the generous
    ``SECONDS_SANITY_FACTOR`` multiple of the baseline).

    None for metrics that are not regression-gated (cache statistics,
    hit ratios, plan-strategy counts — informational only).
    """
    for pattern in _HIGHER_IS_WORSE:
        if name.endswith(pattern):
            return "higher"
    for pattern in _LOWER_IS_WORSE:
        if name.endswith(pattern):
            return "lower"
    for pattern in _SECONDS_SANITY:
        if name.endswith(pattern):
            return "higher-sanity"
    return None


def validate_payload(payload: object, stem: str) -> List[str]:
    """All schema violations in one parsed JSON payload (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    for key in ("bench", "params", "metrics"):
        if key not in payload:
            errors.append(f"missing required key {key!r}")
    if "paper_expected" not in payload:
        errors.append("missing required key 'paper_expected'")

    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append("'bench' must be a non-empty string")
    elif bench != stem:
        errors.append(f"'bench' ({bench!r}) does not match file stem ({stem!r})")

    params = payload.get("params")
    if not isinstance(params, dict):
        errors.append("'params' must be an object")
    else:
        for key, value in params.items():
            if not isinstance(value, SCALAR):
                errors.append(f"params[{key!r}] is not a scalar")

    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("'metrics' must be an object")
    else:
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"metrics[{key!r}] is not a number")
        for key in REQUIRED_METRICS:
            if key not in metrics:
                errors.append(f"metrics missing required key {key!r}")

    expected = payload.get("paper_expected", None)
    if expected is not None and not isinstance(expected, dict):
        errors.append("'paper_expected' must be an object or null")

    table = payload.get("table")
    if table is not None:
        if not isinstance(table, dict):
            errors.append("'table' must be an object")
        else:
            if not isinstance(table.get("headers", []), list):
                errors.append("table.headers must be a list")
            if not isinstance(table.get("rows", []), list):
                errors.append("table.rows must be a list")
    return errors


def validate_file(path: str) -> List[str]:
    """Schema violations for one results file (empty list = valid)."""
    stem = os.path.splitext(os.path.basename(path))[0]
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]
    return validate_payload(payload, stem)


def diff_metrics(current: dict, baseline: dict, tolerance: float) -> List[str]:
    """Regressions of *current* vs *baseline* beyond *tolerance*.

    Only metrics present in both runs and carrying a regression
    direction are gated; a baseline value of 0 cannot be expressed as a
    ratio and is skipped (protocol counters start from 0 only in
    degenerate configurations).
    """
    regressions: List[str] = []
    for name in sorted(set(current) & set(baseline)):
        direction = regression_direction(name)
        if direction is None:
            continue
        base, now = baseline[name], current[name]
        if not isinstance(base, (int, float)) or not isinstance(now, (int, float)):
            continue
        if isinstance(base, bool) or isinstance(now, bool) or base == 0:
            continue
        change = (now - base) / abs(base)
        if direction == "higher" and change > tolerance:
            regressions.append(
                f"{name}: {base:g} -> {now:g} (+{change:.1%} > {tolerance:.0%})"
            )
        elif direction == "lower" and change < -tolerance:
            regressions.append(
                f"{name}: {base:g} -> {now:g} ({change:.1%} < -{tolerance:.0%})"
            )
        elif direction == "higher-sanity" and now > SECONDS_SANITY_FACTOR * base:
            regressions.append(
                f"{name}: {base:g} -> {now:g} "
                f"(over the {SECONDS_SANITY_FACTOR:g}x wall-time sanity bound "
                "— measurement artifact?)"
            )
    return regressions


def diff_against_baselines(
    results_dir: str, baselines_dir: str, tolerance: float
) -> int:
    """Compare every baseline bench to its current export; count failures."""
    names = sorted(
        name
        for name in (os.listdir(baselines_dir) if os.path.isdir(baselines_dir) else [])
        if name.endswith(".json")
    )
    if not names:
        print(f"no baselines under {baselines_dir} (nothing to diff)")
        return 0
    failures = 0
    for name in names:
        current_path = os.path.join(results_dir, name)
        if not os.path.exists(current_path):
            failures += 1
            print(f"FAIL {name}: baseline exists but no current result", file=sys.stderr)
            continue
        try:
            with open(os.path.join(baselines_dir, name), encoding="utf-8") as fh:
                baseline = json.load(fh)
            with open(current_path, encoding="utf-8") as fh:
                current = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            failures += 1
            print(f"FAIL {name}: unreadable JSON: {exc}", file=sys.stderr)
            continue
        regressions = diff_metrics(
            current.get("metrics", {}), baseline.get("metrics", {}), tolerance
        )
        if regressions:
            failures += 1
            print(f"FAIL {name}: regression vs baseline", file=sys.stderr)
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
        else:
            print(f"ok   {name} (within {tolerance:.0%} of baseline)")
    if failures:
        print(f"{failures}/{len(names)} benches regressed", file=sys.stderr)
    else:
        print(f"{len(names)} benches within tolerance of baselines")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
        help="results directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--require-any",
        action="store_true",
        help="fail when no *.json results exist at all",
    )
    parser.add_argument(
        "--baselines",
        default=None,
        metavar="DIR",
        help="baseline results to diff against (e.g. benchmarks/baselines); "
        "regression-sensitive metrics may not regress beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative regression vs baselines (default 0.20)",
    )
    args = parser.parse_args(argv)

    paths = sorted(
        os.path.join(args.dir, name)
        for name in (os.listdir(args.dir) if os.path.isdir(args.dir) else [])
        if name.endswith(".json")
    )
    if not paths:
        if args.require_any:
            print(f"FAIL: no JSON results under {args.dir}", file=sys.stderr)
            return 1
        print(f"no JSON results under {args.dir} (nothing to validate)")
        return 0

    failures = 0
    for path in paths:
        errors = validate_file(path)
        if errors:
            failures += 1
            print(f"FAIL {os.path.basename(path)}", file=sys.stderr)
            for error in errors:
                print(f"  - {error}", file=sys.stderr)
        else:
            print(f"ok   {os.path.basename(path)}")
    if failures:
        print(f"{failures}/{len(paths)} files failed validation", file=sys.stderr)
        return 1
    print(f"{len(paths)} result files schema-valid")

    if args.baselines:
        if diff_against_baselines(args.dir, args.baselines, args.tolerance):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
