"""Tests for ReSync wire types."""

import pytest

from repro.ldap import DN, Entry, SyncAction
from repro.sync import SyncProtocolError, SyncResponse, SyncUpdate


def entry() -> Entry:
    return Entry("cn=a,o=xyz", {"objectClass": ["person"], "cn": "a", "sn": "b"})


class TestSyncUpdate:
    def test_add_carries_entry(self):
        u = SyncUpdate.add(entry())
        assert u.action is SyncAction.ADD
        assert u.entry is not None
        assert u.dn == entry().dn

    def test_modify_carries_entry(self):
        assert SyncUpdate.modify(entry()).entry is not None

    def test_delete_dn_only(self):
        u = SyncUpdate.delete(DN.parse("cn=a,o=xyz"))
        assert u.entry is None

    def test_retain_dn_only(self):
        assert SyncUpdate.retain(DN.parse("cn=a,o=xyz")).entry is None

    def test_add_without_entry_rejected(self):
        with pytest.raises(SyncProtocolError):
            SyncUpdate(SyncAction.ADD, DN.parse("cn=a,o=xyz"))

    def test_delete_with_entry_rejected(self):
        with pytest.raises(SyncProtocolError):
            SyncUpdate(SyncAction.DELETE, entry().dn, entry())

    def test_pdu_bytes_entry(self):
        e = entry()
        e.put("entrySizeBytes", "6000")
        assert SyncUpdate.add(e).pdu_bytes == 6000

    def test_pdu_bytes_dn_only(self):
        assert SyncUpdate.delete(DN.parse("cn=a,o=xyz")).pdu_bytes == len("cn=a,o=xyz")

    def test_add_copies_entry(self):
        e = entry()
        u = SyncUpdate.add(e)
        e.put("sn", "changed")
        assert u.entry.first("sn") == "b"


class TestSyncResponse:
    def test_pdu_counts(self):
        r = SyncResponse(
            updates=[
                SyncUpdate.add(entry()),
                SyncUpdate.delete(DN.parse("cn=x,o=xyz")),
                SyncUpdate.retain(DN.parse("cn=y,o=xyz")),
            ]
        )
        assert r.entry_pdus == 1
        assert r.dn_pdus == 2
        assert r.total_bytes > 0

    def test_defaults(self):
        r = SyncResponse()
        assert r.updates == []
        assert r.cookie is None
        assert not r.initial
        assert not r.uses_retain


class TestMeasuredBytes:
    def test_entry_pdu_measured_via_ber(self):
        update = SyncUpdate.add(entry())
        measured = update.measured_bytes()
        assert measured > 20
        from repro.ldap.ber import encoded_entry_size

        assert measured == encoded_entry_size(update.entry)

    def test_dn_pdu_measured_via_ber(self):
        update = SyncUpdate.delete(DN.parse("cn=a,o=xyz"))
        assert update.measured_bytes() == len("cn=a,o=xyz") + 2

    def test_modelled_vs_measured_differ_with_stamp(self):
        stamped = entry()
        stamped.put("entrySizeBytes", "6000")
        update = SyncUpdate.add(stamped)
        assert update.pdu_bytes == 6000
        assert update.measured_bytes() != 6000
