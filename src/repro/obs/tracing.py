"""Lightweight tracing spans for the simulation's phase accounting.

``span("sync.resync.history_scan")`` opens a context manager that — when
a :class:`TraceCollector` is installed — records the block's wall-clock
duration, its nesting path (``parent>child``), and any counts attached
with :meth:`SpanHandle.add`.  With **no collector installed** (the
module-level default) ``span()`` returns a shared no-op handle: one
global read and a constant-returning call, so instrumented hot paths
cost essentially nothing in normal runs (the <5% overhead budget of
ISSUE 1 / docs/OBSERVABILITY.md §4).

Usage::

    from repro.obs import span, TraceCollector, collecting

    with collecting() as trace:          # install for one block
        with span("sync.resync.poll", mode="poll") as sp:
            updates = do_poll()
            sp.add("entries_emitted", len(updates))
    trace.aggregate()                    # {path: {count, total_s, ...}}

Span names follow the same ``layer.component.phase`` convention as
metric names; the full naming table lives in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional

__all__ = [
    "span",
    "SpanRecord",
    "TraceCollector",
    "install_collector",
    "uninstall_collector",
    "get_collector",
    "collecting",
]

_collector: Optional["TraceCollector"] = None


class SpanRecord:
    """One finished span: name, nesting path, duration, attached counts."""

    __slots__ = ("name", "path", "duration_s", "counts", "attrs")

    def __init__(
        self,
        name: str,
        path: str,
        duration_s: float,
        counts: Dict[str, float],
        attrs: Dict[str, str],
    ):
        self.name = name
        self.path = path
        self.duration_s = duration_s
        self.counts = counts
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"SpanRecord({self.path!r}, {self.duration_s * 1e3:.3f}ms)"


class _NullSpan:
    """Shared do-nothing handle returned when no collector is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, _key: str, _amount: float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanHandle:
    """A live span: times its block and carries attached counts."""

    __slots__ = ("_collector", "name", "attrs", "_counts", "_start")

    def __init__(self, collector: "TraceCollector", name: str, attrs: Dict[str, str]):
        self._collector = collector
        self.name = name
        self.attrs = attrs
        self._counts: Dict[str, float] = {}
        self._start = 0.0

    def add(self, key: str, amount: float = 1) -> None:
        """Attach a named count to this span (summed in aggregation)."""
        self._counts[key] = self._counts.get(key, 0) + amount

    def __enter__(self) -> "SpanHandle":
        self._collector._push(self.name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = perf_counter() - self._start
        self._collector._pop(self, duration)
        return False


class TraceCollector:
    """Records finished spans and aggregates them by nesting path.

    The collector keeps an explicit stack (the simulation is
    single-threaded), so a span opened inside another is recorded under
    the composite path ``outer>inner`` — nested durations stay
    attributable to their phase.
    """

    def __init__(self, keep_records: bool = True, max_records: int = 100_000):
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[str] = []
        self._aggregate: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # span lifecycle (driven by SpanHandle)
    # ------------------------------------------------------------------
    def _push(self, name: str) -> None:
        self._stack.append(name)

    def _pop(self, handle: SpanHandle, duration_s: float) -> None:
        path = ">".join(self._stack)
        if self._stack:
            self._stack.pop()
        agg = self._aggregate.get(path)
        if agg is None:
            agg = {"count": 0, "total_s": 0.0, "max_s": 0.0}
            self._aggregate[path] = agg
        agg["count"] += 1
        agg["total_s"] += duration_s
        if duration_s > agg["max_s"]:
            agg["max_s"] = duration_s
        for key, amount in handle._counts.items():
            agg[key] = agg.get(key, 0) + amount
        if self.keep_records:
            if len(self.records) < self.max_records:
                self.records.append(
                    SpanRecord(handle.name, path, duration_s, handle._counts, handle.attrs)
                )
            else:
                self.dropped += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-path totals: count, total_s, max_s plus attached counts."""
        return {path: dict(stats) for path, stats in self._aggregate.items()}

    def paths(self) -> List[str]:
        return sorted(self._aggregate)

    def count(self, path: str) -> int:
        """Finished-span count at *path* (0 when never entered)."""
        return int(self._aggregate.get(path, {}).get("count", 0))

    def total_seconds(self, path: str) -> float:
        return float(self._aggregate.get(path, {}).get("total_s", 0.0))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self._stack.clear()
        self._aggregate.clear()

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return self.aggregate()


def span(name: str, **attrs: str):
    """A context manager timing one named phase.

    No-op (a shared constant handle) unless a collector is installed —
    safe to leave in hot paths.
    """
    collector = _collector
    if collector is None:
        return _NULL_SPAN
    return SpanHandle(collector, name, attrs)


def install_collector(collector: TraceCollector) -> TraceCollector:
    """Make *collector* receive every span until uninstalled."""
    global _collector
    _collector = collector
    return collector


def uninstall_collector() -> None:
    global _collector
    _collector = None


def get_collector() -> Optional[TraceCollector]:
    return _collector


@contextmanager
def collecting(collector: Optional[TraceCollector] = None):
    """Install a collector for one ``with`` block (restores the prior one)."""
    global _collector
    previous = _collector
    active = collector if collector is not None else TraceCollector()
    _collector = active
    try:
        yield active
    finally:
        _collector = previous
