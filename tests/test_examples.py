"""Smoke tests: the example scripts must run and print what they promise.

The heavyweight case-study example (`remote_geography_replica.py`) is
exercised at reduced scale through the CLI's ``case-study`` command in
tests/test_cli.py; the fast walkthroughs run here end to end.
"""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "hit" in out
        assert "referral to ldap://master" in out
        assert "after sync" in out

    def test_resync_session(self):
        out = run_example("resync_session.py")
        assert "S, (poll, null)" in out
        assert "delete  cn=E3,o=xyz" in out
        assert "add     cn=E5,o=xyz" in out
        assert "converged with master: True" in out

    def test_distributed_search(self):
        out = run_example("distributed_search.py")
        assert "total round trips: 4" in out
        assert "1 round trip" in out

    def test_dynamic_filter_selection(self):
        out = run_example("dynamic_filter_selection.py")
        assert "phase 1 (cold start)" in out
        assert "phase 4 (re-warmed)" in out
        assert "divisionNumber=50" in out  # selection followed the shift

    def test_carrier_flat_namespace(self):
        out = run_example("carrier_flat_namespace.py")
        assert "filter replica: 5 exchange filters" in out
        assert "100%" in out

    def test_failure_recovery(self):
        out = run_example("failure_recovery.py")
        assert out.count("converged: True") == 3
        assert "retries with its OLD cookie" in out
