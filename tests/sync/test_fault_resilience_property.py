"""End-to-end resilience property: converge despite any seeded faults.

The convergence claim under test (§5): for *any* deterministic fault
schedule — drops, duplicates, delays, truncations, crash windows,
cookie invalidations — a :class:`ResilientConsumer` driven against a
mutating master ends up with exactly the master's content once the
network heals, in both poll and persist modes.

Two layers:

* **CI fault matrix** — fixed seeds and modes, selectable through the
  ``FAULT_SEEDS`` / ``FAULT_MODES`` environment variables (defaults
  ``101,202,303`` × ``poll,persist,persist-batched``), so the
  workflow's ``faults`` job can shard one (seed, mode) cell per matrix
  entry and any cell can be replayed locally verbatim:
  ``FAULT_SEEDS=202 FAULT_MODES=persist pytest
  tests/sync/test_fault_resilience_property.py``.  The
  ``persist-batched`` cells run the same persist consumer over the
  *pipelined* transport (docs/TRANSPORT.md), adding batch-boundary
  drops/truncations from the ``:b`` decision stream.
* **Hypothesis** — randomized seeds, fault rates and update schedules
  on top of the fixed matrix, shrinking towards small counterexamples.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    DirectoryServer,
    FaultPlan,
    FaultSpec,
    FaultyNetwork,
    Modification,
)
from repro.sync import BatchConfig, ResilientConsumer, ResyncProvider, RetryPolicy

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=42)")
NAMES = [f"P{i}" for i in range(8)]

SEEDS = [int(s) for s in os.environ.get("FAULT_SEEDS", "101,202,303").split(",")]
MODES = [
    m.strip()
    for m in os.environ.get("FAULT_MODES", "poll,persist,persist-batched").split(",")
]


def make_network(seed: int, rate: float, mode: str) -> FaultyNetwork:
    """The matrix network for one cell: ``persist-batched`` runs the
    pipelined transport (batched fan-out + ``:b`` batch faults), the
    other modes the historical synchronous one."""
    kwargs = {}
    if mode == "persist-batched":
        kwargs = dict(
            pipelined=True,
            batch=BatchConfig(max_batch=4, max_age_ms=2.0, high_water=8),
            seed=seed,
        )
    return FaultyNetwork(FaultPlan(FaultSpec.uniform(rate), seed=seed), **kwargs)


def consumer_mode(mode: str) -> str:
    return "persist" if mode.startswith("persist") else mode


def person(name: str, dept: str = "42") -> Entry:
    return Entry(
        f"cn={name},o=xyz",
        {"objectClass": ["person"], "cn": name, "sn": "T", "departmentNumber": dept},
    )


def build_master() -> DirectoryServer:
    master = DirectoryServer("M")
    master.add_naming_context("o=xyz")
    master.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i, name in enumerate(NAMES):
        master.add(person(name, dept="42" if i % 2 == 0 else "99"))
    return master


def mutate(master: DirectoryServer, step: int) -> None:
    """One deterministic master update, cycling through all kinds."""
    name = NAMES[step % len(NAMES)]
    dn = f"cn={name},o=xyz"
    kind = step % 5
    if kind == 0:
        master.modify(dn, [Modification.replace("sn", f"S{step}")])
    elif kind == 1:
        master.modify(dn, [Modification.replace("departmentNumber", "42")])
    elif kind == 2:
        master.modify(dn, [Modification.replace("departmentNumber", "99")])
    elif kind == 3:
        master.delete(dn)
        master.add(person(name))
    else:
        master.add(person(f"X{step}"))


def run_scenario(seed: int, mode: str, rate: float = 0.3, steps: int = 12) -> None:
    """Faulty phase (mutations + sync attempts), heal, converge, check."""
    master = build_master()
    provider = ResyncProvider(master)
    net = make_network(seed, rate, mode)
    consumer = ResilientConsumer(
        REQUEST,
        provider,
        network=net,
        seed=seed,
        mode=consumer_mode(mode),
        policy=RetryPolicy(max_attempts=4, jitter=0.25, persist_refresh_interval=3),
    )
    for step in range(steps):
        mutate(master, step)
        consumer.sync_once()  # may fail wholesale; must never corrupt
    net.heal()
    cycles = consumer.converge(master, max_cycles=16)
    assert cycles is not None, (
        f"no convergence within 16 clean cycles (seed={seed}, mode={mode}, "
        f"rate={rate}, faults={net.fault_counts()})"
    )
    assert consumer.content.matches_master(master)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", MODES)
class TestFaultMatrix:
    """The CI matrix cells: fixed seeds × modes, moderate fault rate."""

    def test_converges_after_heal(self, seed, mode):
        run_scenario(seed, mode)

    def test_high_fault_rate_converges(self, seed, mode):
        run_scenario(seed, mode, rate=0.5, steps=8)

    def test_replay_is_deterministic(self, seed, mode):
        """The same seed must inject the identical fault sequence."""

        def counts():
            master = build_master()
            provider = ResyncProvider(master)
            net = make_network(seed, 0.4, mode)
            consumer = ResilientConsumer(
                REQUEST,
                provider,
                network=net,
                seed=seed,
                mode=consumer_mode(mode),
                policy=RetryPolicy(max_attempts=4, persist_refresh_interval=3),
            )
            for step in range(8):
                mutate(master, step)
                consumer.sync_once()
            net.settle()
            return (
                net.fault_counts(),
                net.stats.round_trips,
                net.scheduler.events_run,
                net.scheduler.now,
            )

        assert counts() == counts()


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rate=st.floats(min_value=0.0, max_value=0.6),
    steps=st.integers(min_value=1, max_value=10),
    mode=st.sampled_from(MODES),
)
@settings(max_examples=40, deadline=None)
def test_any_fault_schedule_converges(seed, rate, steps, mode):
    run_scenario(seed, mode, rate=rate, steps=steps)
