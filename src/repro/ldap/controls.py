"""LDAP controls.

Controls are attached to operations to alter their behaviour (§2.2).
The paper uses two: the server-side sort control of RFC 2891 (only as an
example) and its own **reSyncControl** (§5.2), the heart of the ReSync
filter-synchronization protocol::

    reSyncControl = (mode, cookie)

Update/notification PDUs carry a per-entry control specifying the action
the replica must take: ``add``, ``modify``, ``delete`` or ``retain``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Control", "SortControl", "SyncMode", "ReSyncControl", "SyncAction"]


@dataclass(frozen=True)
class Control:
    """Base class for controls; *criticality* follows RFC 2251 semantics."""

    criticality: bool = False


@dataclass(frozen=True)
class SortControl(Control):
    """RFC 2891 server-side sorting control (mentioned in §2.2)."""

    keys: Tuple[str, ...] = ()
    reverse: bool = False


class SyncMode(enum.Enum):
    """Mode of update in a reSync request (§5.2)."""

    POLL = "poll"
    PERSIST = "persist"
    SYNC_END = "sync_end"


@dataclass(frozen=True)
class ReSyncControl(Control):
    """The paper's resync control attached to a normal search request.

    ``cookie=None`` marks the initial request of an update session: the
    master sends the entire content and (in poll mode) a cookie to resume
    the session.  Subsequent requests present the cookie and receive only
    the updates accumulated since the last request.
    """

    mode: SyncMode = SyncMode.POLL
    cookie: Optional[str] = None


class SyncAction(enum.Enum):
    """Per-entry action carried on a ReSync update PDU (§5.2).

    ``ADD``/``MODIFY`` PDUs carry the complete entry; ``DELETE`` carries
    only the DN; ``RETAIN`` (incomplete-history mode, eq. 3) carries only
    the DN of an entry the replica should keep.
    """

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"
    RETAIN = "retain"
