"""Soundness properties: containment verdicts never admit counterexamples.

If the library proves ``F1 ⊆ F2`` (or ``Q ⊆ Qs``), then no generated
entry may satisfy F1 (be selected by Q) without satisfying F2 (being
selected by Qs).  This is the invariant that makes replica answers
correct; incompleteness (False on true containments) is allowed.
"""

from hypothesis import given, settings, strategies as st

from repro.core import filter_contained_in, general_contained_in, query_contained_in
from repro.ldap import (
    And,
    DN,
    Entry,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Scope,
    SearchRequest,
    Substring,
    matches,
)

# A small closed world of attributes/values so containments and overlaps
# actually occur.
_ATTRS = ["sn", "uid", "l"]
_VALUES = ["a", "ab", "abc", "b", "ba", "c"]

_attr = st.sampled_from(_ATTRS)
_value = st.sampled_from(_VALUES)


def _leaves():
    return st.one_of(
        st.builds(Equality, _attr, _value),
        st.builds(GreaterOrEqual, _attr, _value),
        st.builds(LessOrEqual, _attr, _value),
        st.builds(Present, _attr),
        st.builds(lambda a, v: Substring(a, initial=v), _attr, _value),
        st.builds(lambda a, v: Substring(a, final=v), _attr, _value),
        st.builds(lambda a, v: Substring(a, any_parts=(v,)), _attr, _value),
    )


_filters = st.recursive(
    _leaves(),
    lambda kids: st.one_of(
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        kids.map(Not),
    ),
    max_leaves=6,
)

# Entries: 1-2 values per attribute, drawn from the same closed world.
_entries = st.builds(
    lambda svals, uvals, lvals: Entry(
        "cn=probe,o=xyz",
        {
            "objectClass": ["person"],
            "cn": "probe",
            **({"sn": svals} if svals else {}),
            **({"uid": uvals} if uvals else {}),
            **({"l": lvals} if lvals else {}),
        },
    ),
    st.lists(_value, max_size=2),
    st.lists(_value, max_size=2),
    st.lists(_value, max_size=2),
)


@settings(max_examples=300, deadline=None)
@given(_filters, _filters, st.lists(_entries, min_size=1, max_size=8))
def test_structural_containment_sound(f1, f2, entries):
    if filter_contained_in(f1, f2):
        for entry in entries:
            if matches(f1, entry):
                assert matches(f2, entry), f"{f1} ⊆ {f2} but {entry!r} violates it"


@settings(max_examples=150, deadline=None)
@given(_filters, _filters, st.lists(_entries, min_size=1, max_size=8))
def test_general_containment_sound(f1, f2, entries):
    try:
        verdict = general_contained_in(f1, f2, max_terms=512)
    except OverflowError:
        return
    if verdict:
        for entry in entries:
            if matches(f1, entry):
                assert matches(f2, entry)


@settings(max_examples=150, deadline=None)
@given(_filters, _filters)
def test_structural_implies_general_agreement(f1, f2):
    """Structural True must never contradict semantics that the general
    checker can refute — both are sound, so True∧True or any False mix
    is fine, but we spot-check they never flip on leaf pairs."""
    if filter_contained_in(f1, f2):
        # general may fail to prove it (incomplete), but if it proves the
        # REVERSE strictly while shapes differ that's fine; nothing to assert
        # beyond soundness (covered above).  Here we assert determinism:
        assert filter_contained_in(f1, f2)


_BASES = ["", "o=xyz", "c=us,o=xyz", "cn=probe,c=us,o=xyz"]
_requests = st.builds(
    SearchRequest,
    st.sampled_from(_BASES),
    st.sampled_from(list(Scope)),
    _filters,
)

_DN_POOL = [
    "o=xyz",
    "c=us,o=xyz",
    "cn=probe,c=us,o=xyz",
    "cn=deep,cn=probe,c=us,o=xyz",
    "c=in,o=xyz",
]


@settings(max_examples=300, deadline=None)
@given(
    _requests,
    _requests,
    st.lists(
        st.tuples(st.sampled_from(_DN_POOL), _entries), min_size=1, max_size=6
    ),
)
def test_query_containment_sound(q, qs, placed):
    """QC(Q,Qs) ⇒ answer(Q) ⊆ answer(Qs) entry-wise."""
    if query_contained_in(q, qs):
        for dn_text, proto in placed:
            entry = proto.with_dn(DN.parse(dn_text))
            if q.selects(entry):
                assert qs.selects(entry), f"{q} ⊆ {qs} but {dn_text} violates it"
