"""LDAP protocol substrate: DNs, entries, filters, queries, controls.

This package is the self-contained model of the LDAP v3 concepts
(RFC 2251/2252/2254) that the replication algorithms are built on.  It
performs no I/O; the simulated servers live in :mod:`repro.server`.
"""

from .attributes import AttributeRegistry, AttributeType, DEFAULT_REGISTRY, Syntax
from .controls import Control, ReSyncControl, SortControl, SyncAction, SyncMode
from .dn import DN, DNParseError, RDN, ROOT_DN
from .entry import Entry
from .filter_parser import FilterParseError, parse_filter
from .filters import (
    And,
    Approx,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    MATCH_ALL,
    Not,
    Or,
    Present,
    Substring,
    attributes_of,
    is_positive,
    simplify,
    template_of,
    to_dnf,
    to_nnf,
)
from .ldif import entries_to_ldif, entry_to_ldif, parse_ldif, write_ldif
from .matching import matches, substring_match
from .query import ALL_ATTRIBUTES, Scope, SearchRequest
from .url import LdapUrl, LdapUrlParseError
from .schema import (
    DEFAULT_SCHEMA,
    ObjectClass,
    SchemaRegistry,
    SchemaViolation,
    validate_entry,
)

__all__ = [
    "DN",
    "RDN",
    "ROOT_DN",
    "DNParseError",
    "Entry",
    "AttributeType",
    "AttributeRegistry",
    "DEFAULT_REGISTRY",
    "Syntax",
    "Filter",
    "And",
    "Or",
    "Not",
    "Equality",
    "GreaterOrEqual",
    "LessOrEqual",
    "Approx",
    "Present",
    "Substring",
    "MATCH_ALL",
    "parse_filter",
    "FilterParseError",
    "matches",
    "substring_match",
    "simplify",
    "template_of",
    "to_nnf",
    "to_dnf",
    "attributes_of",
    "is_positive",
    "Scope",
    "SearchRequest",
    "ALL_ATTRIBUTES",
    "LdapUrl",
    "LdapUrlParseError",
    "Control",
    "SortControl",
    "ReSyncControl",
    "SyncMode",
    "SyncAction",
    "ObjectClass",
    "SchemaRegistry",
    "DEFAULT_SCHEMA",
    "SchemaViolation",
    "validate_entry",
    "entry_to_ldif",
    "entries_to_ldif",
    "parse_ldif",
    "write_ldif",
]
