"""Full-deployment integration: clients → replica frontend → master.

Exercises the whole stack the way a deployment would be wired: a
central master, a branch filter replica published on the network, a
referral-chasing client issuing the faithful workload through
connections, with ReSync polling keeping the branch fresh under a
concurrent update stream.
"""

import pytest

from repro.core import FilterReplica, ReplicaFrontend
from repro.ldap import Scope, SearchRequest
from repro.server import DirectoryServer, LdapClient, SimulatedNetwork, connect
from repro.sync import ResyncProvider
from repro.workload import (
    DirectoryConfig,
    QueryType,
    WorkloadConfig,
    WorkloadGenerator,
    generate_directory,
)
from repro.workload.updates import UpdateGenerator


@pytest.fixture(scope="module")
def deployment():
    directory = generate_directory(DirectoryConfig(employees=800, seed=77))
    network = SimulatedNetwork(round_trip_latency_ms=10.0)

    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    network.register(master)

    provider = ResyncProvider(master)
    replica = FilterReplica("branch", master_url="ldap://master", cache_capacity=30)
    trace = WorkloadGenerator(directory, WorkloadConfig(seed=9)).generate(1200, days=2)
    # replicate day-1 hot blocks + the location tree
    counts = {}
    for record in trace.day(1).of_type(QueryType.SERIAL):
        value = str(record.request.filter)[len("(serialNumber=") : -1]
        counts[(value[:4], value[6:])] = counts.get((value[:4], value[6:]), 0) + 1
    for block, cc in sorted(counts, key=counts.get, reverse=True)[:10]:
        replica.add_filter(
            SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})"), provider
        )
    replica.add_filter(SearchRequest("", Scope.SUB, "(objectClass=location)"), provider)
    network.register(ReplicaFrontend("branch", replica))
    return directory, network, master, provider, replica, trace


class TestDeployment:
    def test_every_query_completes_through_the_replica(self, deployment):
        directory, network, master, provider, replica, trace = deployment
        client = LdapClient(network)
        incomplete = 0
        for record in trace.day(2)[:300]:
            result = client.search("ldap://branch", record.request)
            if not result.complete:
                incomplete += 1
        assert incomplete == 0

    def test_results_match_master_ground_truth(self, deployment):
        directory, network, master, provider, replica, trace = deployment
        client = LdapClient(network)
        for record in trace.day(2)[:150]:
            result = client.search("ldap://branch", record.request)
            truth = master.search(record.request).entries
            assert {str(e.dn) for e in result.entries} == {
                str(e.dn) for e in truth
            }, str(record.request)

    def test_hits_save_round_trips(self, deployment):
        directory, network, master, provider, replica, trace = deployment
        client = LdapClient(network)
        trips = []
        for record in trace.day(2)[:300]:
            result = client.search("ldap://branch", record.request)
            trips.append(result.round_trips)
        assert min(trips) == 1  # some local hits
        assert max(trips) == 2  # misses chased once to the master
        assert sum(1 for t in trips if t == 1) > 100

    def test_stays_consistent_under_updates(self, deployment):
        directory, network, master, provider, replica, trace = deployment
        updates = UpdateGenerator(directory, master)
        client = LdapClient(network)
        for round_number in range(5):
            updates.apply(40)
            replica.sync(provider)
            for stored in replica.stored_filters():
                assert stored.content.matches_master(master)
        # and queried through the frontend, answers still match
        for record in trace.day(2).of_type(QueryType.SERIAL)[:60]:
            result = client.search("ldap://branch", record.request)
            truth = master.search(record.request).entries
            assert {str(e.dn) for e in result.entries} == {str(e.dn) for e in truth}

    def test_connection_layer_end_to_end(self, deployment):
        directory, network, master, provider, replica, trace = deployment
        with connect(network, "ldap://master") as conn:
            record = trace.day(2)[0]
            result = conn.search(record.request)
            assert len(result.entries) >= 1
        assert network.open_connections == 0
