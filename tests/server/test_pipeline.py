"""Pipelined requests per connection (docs/TRANSPORT.md §3).

Multiple in-flight operations on one connection, responses strictly in
submission order, latency amortized: n pipelined ops cost one
round-trip latency plus per-op service time on the virtual clock,
against the synchronous path's n full round trips.
"""

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification, SimulatedNetwork, connect
from repro.server.operations import LdapError

REQUEST = SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)")


def build_network(**kwargs):
    net = SimulatedNetwork(pipelined=True, **kwargs)
    server = DirectoryServer("M")
    server.add_naming_context("o=xyz")
    server.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(4):
        server.add(
            Entry(
                f"cn=E{i},o=xyz",
                {"objectClass": ["person"], "cn": f"E{i}", "sn": "T"},
            )
        )
    net.register(server)
    return net, server


class TestOrderedResponses:
    def test_results_in_submission_order(self):
        net, server = build_network()
        conn = connect(net, server.url)
        pipe = conn.pipeline()
        ops = [
            pipe.submit(conn.search, SearchRequest("o=xyz", Scope.SUB, f"(cn=E{i})"))
            for i in range(4)
        ]
        results = [op.result() for op in ops]
        assert [str(r.entries[0].dn) for r in results] == [
            f"cn=E{i},o=xyz" for i in range(4)
        ]

    def test_fifo_survives_tie_break_shuffles(self):
        # All completions land at the same virtual due time (zero rtt,
        # zero service), where the seeded tie-break reorders *events* —
        # responses must still complete in submission order.
        for seed in range(5):
            net, server = build_network(seed=seed)
            conn = connect(net, server.url)
            pipe = conn.pipeline()
            order = []
            ops = [
                pipe.submit(lambda i=i: order.append(i)) for i in range(8)
            ]
            pipe.drain()
            assert order == list(range(8)), f"seed {seed}"

    def test_writes_interleave_with_reads_in_order(self):
        net, server = build_network()
        conn = connect(net, server.url)
        pipe = conn.pipeline()
        pipe.submit(conn.modify, "cn=E0,o=xyz", [Modification.replace("sn", "Z")])
        read = pipe.submit(conn.search, SearchRequest("o=xyz", Scope.SUB, "(cn=E0)"))
        # The read was submitted after the write on the same connection,
        # so it must observe it.
        assert read.result().entries[0].first("sn") == "Z"

    def test_error_delivered_through_result(self):
        net, server = build_network()
        conn = connect(net, server.url)
        pipe = conn.pipeline()
        ok = pipe.submit(conn.search, REQUEST)
        bad = pipe.submit(conn.delete, "cn=missing,o=xyz")
        after = pipe.submit(conn.search, REQUEST)
        assert len(ok.result().entries) == 4
        with pytest.raises(LdapError):
            bad.result()
        # a failed op does not wedge the pipeline
        assert len(after.result().entries) == 4


class TestLatencyAmortization:
    def test_pipeline_costs_one_rtt_plus_service(self):
        net, server = build_network(round_trip_latency_ms=10.0)
        conn = connect(net, server.url)
        pipe = conn.pipeline(service_ms=1.0)
        ops = [pipe.submit(conn.search, REQUEST) for _ in range(5)]
        for op in ops:
            op.result()
        # max(rtt, ...) + 4 × service — not 5 × rtt.
        assert net.scheduler.now == pytest.approx(14.0)

    def test_synchronous_equivalent_traffic_counters(self):
        # Pipelining changes *when* ops run, not what they cost in
        # round trips/PDUs: counters match the synchronous loop.
        net_p, server_p = build_network(round_trip_latency_ms=10.0)
        conn_p = connect(net_p, server_p.url)
        pipe = conn_p.pipeline()
        ops = [pipe.submit(conn_p.search, REQUEST) for _ in range(5)]
        for op in ops:
            op.result()

        net_s = SimulatedNetwork(round_trip_latency_ms=10.0)
        server_s = DirectoryServer("M")
        server_s.add_naming_context("o=xyz")
        server_s.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        for i in range(4):
            server_s.add(
                Entry(
                    f"cn=E{i},o=xyz",
                    {"objectClass": ["person"], "cn": f"E{i}", "sn": "T"},
                )
            )
        net_s.register(server_s)
        conn_s = connect(net_s, server_s.url)
        for _ in range(5):
            conn_s.search(REQUEST)
        assert net_p.stats.as_dict() == net_s.stats.as_dict()


class TestInstruments:
    def test_depth_and_latency_metrics(self):
        net, server = build_network(round_trip_latency_ms=10.0)
        conn = connect(net, server.url)
        pipe = conn.pipeline(service_ms=2.0)
        ops = [pipe.submit(conn.search, REQUEST) for _ in range(3)]
        assert pipe.depth == 3
        assert net.registry.gauge("net.pipeline.depth").value == 3
        for op in ops:
            op.result()
        assert pipe.depth == 0
        assert net.registry.counter("net.pipeline.submitted").value == 3
        assert net.registry.counter("net.pipeline.completed").value == 3
        assert net.registry.gauge("net.pipeline.depth_max").value == 3
        hist = net.registry.histogram("net.pipeline.latency_ms")
        assert hist.mean > 0

    def test_pipeline_needs_network(self):
        server = DirectoryServer("M")
        server.add_naming_context("o=xyz")
        from repro.server.connection import Connection, RequestPipeline

        conn = Connection(server)  # no network attached
        with pytest.raises(ValueError):
            RequestPipeline(conn)
