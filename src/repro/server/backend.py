"""In-memory directory backend: the entry store.

One :class:`EntryStore` holds the entries of one server, keyed by DN,
with a parent→children tree index for scope traversal and per-attribute
value indexes (:mod:`repro.server.indexes`) for filter evaluation.

The store is deliberately dumb about LDAP semantics — naming contexts,
referrals and schema live in :class:`repro.server.directory.DirectoryServer`.
It guarantees:

* hierarchy integrity: an entry's parent must exist (except context
  suffixes, which the server registers as roots),
* index consistency: every mutation goes through :meth:`put` /
  :meth:`delete` which keep value indexes in sync (property-tested),
* candidate soundness: :meth:`candidates_for` returns a superset of the
  entries matching a filter within the store.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..ldap.attributes import AttributeRegistry, DEFAULT_REGISTRY
from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filters import Filter
from ..ldap.query import Scope
from .indexes import AttributeIndexSet
from .planner import SearchPlan, SearchPlanner

__all__ = ["EntryStore"]


class _MaxKey:
    """Sorts after every reversed-DN key component (reflected compares).

    Appending it to a subtree key yields the exclusive upper bound of
    that subtree's range: ``key < anything-in-subtree < key + (_MAX,)``.
    """

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


_MAX_KEY = _MaxKey()


class EntryStore:
    """DN-keyed entry storage with tree and attribute indexes."""

    def __init__(
        self,
        registry: Optional[AttributeRegistry] = None,
        indexed_attributes: Iterable[str] = (),
        index_all: bool = True,
    ):
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._entries: Dict[DN, Entry] = {}
        self._children: Dict[DN, Set[DN]] = defaultdict(set)
        self._roots: Set[DN] = set()
        self._indexes: Dict[str, AttributeIndexSet] = {}
        self._index_all = index_all
        self._referral_dns: Set[DN] = set()
        # Subtree range index: DNs sorted by reversed-DN key, so every
        # subtree is one contiguous [lo, hi) slice (parents first).
        self._order_keys: List[Tuple] = []
        self._order_dns: List[DN] = []
        self._planner = SearchPlanner(self)
        for attr in indexed_attributes:
            self._ensure_index(attr)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, dn: DN) -> bool:
        return dn in self._entries

    def get(self, dn: DN) -> Optional[Entry]:
        """The entry at *dn*, or None."""
        return self._entries.get(dn)

    def children_of(self, dn: DN) -> List[DN]:
        """DNs of the direct children of *dn*."""
        return sorted(self._children.get(dn, ()), key=str)

    def roots(self) -> List[DN]:
        """Registered root DNs (naming-context suffixes)."""
        return sorted(self._roots, key=str)

    def all_dns(self) -> Iterator[DN]:
        """Every DN in the store (arbitrary order)."""
        return iter(list(self._entries.keys()))

    def all_entries(self) -> Iterator[Entry]:
        """Every entry in the store (arbitrary order)."""
        return iter(list(self._entries.values()))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def register_root(self, dn: DN) -> None:
        """Declare *dn* a tree root (a naming-context suffix).

        Root entries are exempt from the parent-must-exist rule.
        """
        self._roots.add(dn)

    def has_parent(self, dn: DN) -> bool:
        """True when *dn* is a root or its parent entry exists."""
        if dn in self._roots or dn.is_root:
            return True
        return dn.parent in self._entries

    def put(self, entry: Entry) -> None:
        """Insert or replace the entry at ``entry.dn``, updating indexes."""
        existing = self._entries.get(entry.dn)
        if existing is not None:
            self._unindex(existing)
        else:
            if not entry.dn.is_root:
                self._children[entry.dn.parent].add(entry.dn)
            key = entry.dn.reversed_key()
            pos = bisect.bisect_left(self._order_keys, key)
            self._order_keys.insert(pos, key)
            self._order_dns.insert(pos, entry.dn)
        stored = entry.copy()
        self._entries[entry.dn] = stored
        self._index(stored)
        if "referral" in stored.object_classes:
            self._referral_dns.add(entry.dn)
        else:
            self._referral_dns.discard(entry.dn)

    def delete(self, dn: DN) -> Optional[Entry]:
        """Remove the entry at *dn*; returns it (or None if absent).

        Children are untouched — the caller (the server) enforces the
        leaf-only rule or performs subtree deletes child-first.
        """
        entry = self._entries.pop(dn, None)
        if entry is None:
            return None
        self._unindex(entry)
        self._referral_dns.discard(dn)
        key = dn.reversed_key()
        pos = bisect.bisect_left(self._order_keys, key)
        if pos < len(self._order_keys) and self._order_keys[pos] == key:
            del self._order_keys[pos]
            del self._order_dns[pos]
        if not dn.is_root:
            siblings = self._children.get(dn.parent)
            if siblings is not None:
                siblings.discard(dn)
                if not siblings:
                    del self._children[dn.parent]
        return entry

    def has_children(self, dn: DN) -> bool:
        """True when *dn* has at least one child entry."""
        return bool(self._children.get(dn))

    def referral_dns(self) -> Set[DN]:
        """DNs of held referral objects (maintained on put/delete)."""
        return set(self._referral_dns)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_scope(self, base: DN, scope: Scope) -> Iterator[Entry]:
        """Yield entries in the (base, scope) region, base first.

        The base entry must exist for BASE/ONE/SUB per LDAP semantics;
        callers check existence beforehand (the server returns
        NO_SUCH_OBJECT otherwise).
        """
        if scope is Scope.BASE:
            entry = self._entries.get(base)
            if entry is not None:
                yield entry
            return
        if scope is Scope.ONE:
            for child in self.children_of(base):
                yield self._entries[child]
            return
        # SUBTREE: depth-first, base included.  Absent intermediate DNs
        # (e.g. the virtual root) are traversed but not yielded.
        stack = [base]
        while stack:
            dn = stack.pop()
            entry = self._entries.get(dn)
            if entry is not None:
                yield entry
            stack.extend(self._children.get(dn, ()))

    def subtree_region(self, base: DN) -> List[DN]:
        """DNs in the subtree at *base*, sorted parents-first.

        One ``bisect`` range over the reversed-DN order index — no tree
        walking.  Includes *base* itself when stored.
        """
        key = base.reversed_key()
        lo = bisect.bisect_left(self._order_keys, key)
        hi = bisect.bisect_left(self._order_keys, key + (_MAX_KEY,), lo)
        return self._order_dns[lo:hi]

    def subtree_dns(self, base: DN) -> List[DN]:
        """All DNs in the subtree rooted at *base* (base included)."""
        return self.subtree_region(base)

    # ------------------------------------------------------------------
    # index-accelerated candidate selection
    # ------------------------------------------------------------------
    def plan_for(self, flt: Filter) -> SearchPlan:
        """Cost-based plan for *flt*: strategy plus candidate set.

        See :mod:`repro.server.planner` — the plan intersects multiple
        indexable conjuncts of an AND (cheapest first), unions OR
        children, and degrades to a scope scan (``candidates is None``)
        when no branch is indexable or the candidate set would approach
        the store size.  Candidate sets are sound supersets of the true
        matches within the store; callers re-verify with the filter.
        """
        return self._planner.plan(flt)

    def candidates_for(self, flt: Filter) -> Optional[Set[DN]]:
        """Candidate DNs possibly matching *flt*, or None for "scan all"."""
        return self.plan_for(flt).candidates

    def index_for(self, attr: str) -> Optional[AttributeIndexSet]:
        """The index set for *attr* (case-insensitive), or None."""
        return self._indexes.get(attr.lower())

    @property
    def indexes_all_attributes(self) -> bool:
        """True when every stored attribute is indexed (``index_all``).

        The planner then treats a missing index as proof the attribute
        occurs on no entry.
        """
        return self._index_all

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_index(self, attr: str) -> AttributeIndexSet:
        key = attr.lower()
        index = self._indexes.get(key)
        if index is None:
            index = AttributeIndexSet(self._registry.get(attr))
            self._indexes[key] = index
        return index

    def _index(self, entry: Entry) -> None:
        for name, values in entry:
            key = name.lower()
            index = self._indexes.get(key)
            if index is None and self._index_all:
                index = self._ensure_index(name)
            if index is not None:
                index.insert(entry.dn, values)

    def _unindex(self, entry: Entry) -> None:
        for name, values in entry:
            index = self._indexes.get(name.lower())
            if index is not None:
                index.remove(entry.dn, values)
