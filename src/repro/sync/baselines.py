"""Baseline synchronization mechanisms (§5.2's alternatives to ReSync).

The paper argues that, absent ReSync's per-session history, existing
mechanisms either lose convergence or inflate history/traffic:

* **Tombstones** — hidden entries recording the *state but not the data*
  of deleted entries.  Because a tombstone has no attributes, the server
  cannot tell whether a deleted entry was in a filter's content, so it
  must transmit **all** deleted-entry DNs since the last poll.  Finding
  entries *modified out* of the content requires scanning every entry
  changed since the cookie and conservatively deleting the ones that do
  not match now.
* **Changelogs** — a log of update operations recording only the
  *changed attributes*.  Same all-deleted-DNs obligation; for modifies
  the changelog at least names the touched DNs and attributes, letting
  the server skip conservative deletes when the changed attributes are
  disjoint from the filter's attributes (the entry cannot have moved
  across the content boundary).
* **Full reload** — retransmit the whole content each poll; trivially
  convergent, maximal traffic.

All three speak the provider interface of :mod:`repro.sync.resync`
(``handle(request, control) → SyncResponse``) so the consumer and the
E11 bench treat every mechanism uniformly.  All are *convergent* in this
implementation — the paper's complaint about them is cost, which the
bench measures; the pure information-theoretic failure (changelog alone
cannot reconstruct whether a modified-then-deleted entry was in content)
shows up as the conservative extra DELETE PDUs they must send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ldap.controls import ReSyncControl, SyncMode
from ..ldap.dn import DN
from ..ldap.filters import attributes_of
from ..ldap.query import SearchRequest
from ..server.directory import DirectoryServer
from ..server.operations import Modification, UpdateOp, UpdateRecord
from .protocol import SyncProtocolError, SyncResponse, SyncUpdate

__all__ = [
    "ChangelogRecord",
    "Changelog",
    "ChangelogProvider",
    "TombstoneStore",
    "TombstoneProvider",
    "FullReloadProvider",
]


# ----------------------------------------------------------------------
# changelog (draft-good-ldap-changelog style)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChangelogRecord:
    """One changelog entry: op, DN and the *changed attributes only*.

    Faithful to [18]: an add record carries the new entry's attributes,
    a modify record carries the modifications, a delete record carries
    nothing but the DN, a modrdn record carries the new RDN.
    """

    csn: int
    op: UpdateOp
    dn: DN
    new_dn: Optional[DN] = None
    modifications: Tuple[Modification, ...] = ()


class Changelog:
    """Update listener persisting a changelog for one master."""

    def __init__(self, server: DirectoryServer):
        self.server = server
        self.records: List[ChangelogRecord] = []
        server.add_update_listener(self)

    def on_update(self, record: UpdateRecord) -> None:
        self.records.append(
            ChangelogRecord(
                csn=record.csn,
                op=record.op,
                dn=record.dn,
                new_dn=record.new_dn,
                modifications=record.modifications,
            )
        )

    def since(self, csn: int) -> List[ChangelogRecord]:
        """Records with CSN strictly greater than *csn*."""
        return [r for r in self.records if r.csn > csn]

    def history_size(self) -> int:
        """Number of retained history records (E11's history metric)."""
        return len(self.records)


class _CsnCookieMixin:
    """Shared cookie handling: cookies encode the last-poll CSN."""

    COOKIE_PREFIX: str = "csn"

    def _parse_cookie(self, cookie: Optional[str]) -> int:
        if cookie is None:
            return 0
        prefix, _, csn = cookie.partition(":")
        if prefix != self.COOKIE_PREFIX or not csn.isdigit():
            raise SyncProtocolError(f"malformed cookie {cookie!r}")
        return int(csn)

    def _make_cookie(self, csn: int) -> str:
        return f"{self.COOKIE_PREFIX}:{csn}"


class ChangelogProvider(_CsnCookieMixin):
    """Synchronization by changelog replay.

    Replays records since the cookie's CSN against the live DIT:

    * ADD / MODIFY / MODIFY_DN whose live entry matches now → add/modify
      PDU with the full (current) entry;
    * MODIFY whose live entry does not match now → conservative DELETE,
      *unless* the record's changed attributes are disjoint from the
      filter's attributes (then the match status cannot have changed);
    * DELETE / MODIFY_DN-away → unconditional DELETE of the old DN
      (the all-deleted-DNs obligation).
    """

    def __init__(self, server: DirectoryServer, changelog: Optional[Changelog] = None):
        self.server = server
        self.changelog = changelog if changelog is not None else Changelog(server)

    def handle(self, request: SearchRequest, control: ReSyncControl) -> SyncResponse:
        if control.mode is SyncMode.SYNC_END:
            return SyncResponse(updates=[], cookie=None)
        if control.mode is not SyncMode.POLL:
            raise SyncProtocolError("ChangelogProvider supports poll mode only")
        now = self.server.current_csn
        if control.cookie is None:
            content = self.server.search(request).entries
            return SyncResponse(
                updates=[SyncUpdate.add(e) for e in content],
                cookie=self._make_cookie(now),
                initial=True,
            )
        since = self._parse_cookie(control.cookie)
        filter_attrs = set(attributes_of(request.filter))
        # Net action per DN, replayed in order; later records win.
        net: Dict[DN, SyncUpdate] = {}
        for record in self.changelog.since(since):
            for update in self._replay(record, request, filter_attrs):
                net[update.dn] = update
        updates = sorted(
            net.values(), key=lambda u: (u.entry is not None, str(u.dn))
        )
        return SyncResponse(updates=updates, cookie=self._make_cookie(now))

    def _replay(
        self,
        record: ChangelogRecord,
        request: SearchRequest,
        filter_attrs: Set[str],
    ) -> List[SyncUpdate]:
        updates: List[SyncUpdate] = []
        if record.op is UpdateOp.DELETE:
            # No attributes in the record: cannot tell whether the entry
            # was in content — send the DN regardless.
            if request.in_scope(record.dn):
                updates.append(SyncUpdate.delete(record.dn))
            return updates
        if record.op is UpdateOp.MODIFY_DN:
            if request.in_scope(record.dn):
                updates.append(SyncUpdate.delete(record.dn))
            live = self.server.store.get(record.new_dn)
            if live is not None and request.selects(live):
                updates.append(SyncUpdate.add(request.project(live)))
            return updates
        live = self.server.store.get(record.dn)
        if live is not None and request.selects(live):
            make = SyncUpdate.add if record.op is UpdateOp.ADD else SyncUpdate.modify
            updates.append(make(request.project(live)))
            return updates
        if record.op is UpdateOp.MODIFY and request.in_scope(record.dn):
            touched = {m.attr.lower() for m in record.modifications}
            if touched & filter_attrs:
                # Changed attributes overlap the filter: the entry may
                # have been modified out of the content — conservative
                # delete.
                updates.append(SyncUpdate.delete(record.dn))
        return updates


# ----------------------------------------------------------------------
# tombstones
# ----------------------------------------------------------------------
class TombstoneStore:
    """Update listener keeping tombstones and per-entry change CSNs.

    A tombstone records the DN and deletion CSN of a deleted entry, but
    none of its former attributes.  The per-entry change CSN models the
    ``modifyTimestamp`` operational attribute real servers maintain.
    """

    def __init__(self, server: DirectoryServer):
        self.server = server
        self.tombstones: List[Tuple[int, DN]] = []
        self.change_csn: Dict[DN, int] = {}
        server.add_update_listener(self)

    def on_update(self, record: UpdateRecord) -> None:
        if record.op is UpdateOp.DELETE:
            self.tombstones.append((record.csn, record.dn))
            self.change_csn.pop(record.dn, None)
            return
        if record.op is UpdateOp.MODIFY_DN:
            self.tombstones.append((record.csn, record.dn))
            self.change_csn.pop(record.dn, None)
        self.change_csn[record.effective_dn] = record.csn

    def deleted_since(self, csn: int) -> List[DN]:
        return [dn for (tomb_csn, dn) in self.tombstones if tomb_csn > csn]

    def changed_since(self, csn: int) -> List[DN]:
        return [dn for dn, change in self.change_csn.items() if change > csn]

    def history_size(self) -> int:
        """Retained tombstone count (E11's history metric)."""
        return len(self.tombstones)


class TombstoneProvider(_CsnCookieMixin):
    """Synchronization from tombstones + per-entry change timestamps.

    Each poll: (i) every tombstone DN since the cookie is sent as a
    DELETE (in-scope ones only — scope is in the DN); (ii) every entry
    changed since the cookie is re-evaluated — matching entries are sent
    in full, non-matching in-scope ones are conservatively DELETEd
    (the server cannot know whether they used to match).
    """

    def __init__(self, server: DirectoryServer, store: Optional[TombstoneStore] = None):
        self.server = server
        self.tombstones = store if store is not None else TombstoneStore(server)

    def handle(self, request: SearchRequest, control: ReSyncControl) -> SyncResponse:
        if control.mode is SyncMode.SYNC_END:
            return SyncResponse(updates=[], cookie=None)
        if control.mode is not SyncMode.POLL:
            raise SyncProtocolError("TombstoneProvider supports poll mode only")
        now = self.server.current_csn
        if control.cookie is None:
            content = self.server.search(request).entries
            return SyncResponse(
                updates=[SyncUpdate.add(e) for e in content],
                cookie=self._make_cookie(now),
                initial=True,
            )
        since = self._parse_cookie(control.cookie)
        net: Dict[DN, SyncUpdate] = {}
        for dn in self.tombstones.deleted_since(since):
            if request.in_scope(dn):
                net[dn] = SyncUpdate.delete(dn)
        for dn in self.tombstones.changed_since(since):
            live = self.server.store.get(dn)
            if live is None:
                continue  # a later tombstone covers it
            if request.selects(live):
                net[dn] = SyncUpdate.modify(request.project(live))
            elif request.in_scope(dn):
                net[dn] = SyncUpdate.delete(dn)
        updates = sorted(
            net.values(), key=lambda u: (u.entry is not None, str(u.dn))
        )
        return SyncResponse(updates=updates, cookie=self._make_cookie(now))


# ----------------------------------------------------------------------
# full reload
# ----------------------------------------------------------------------
class FullReloadProvider(_CsnCookieMixin):
    """The trivial mechanism: retransmit the whole content every poll."""

    def __init__(self, server: DirectoryServer):
        self.server = server

    def handle(self, request: SearchRequest, control: ReSyncControl) -> SyncResponse:
        if control.mode is SyncMode.SYNC_END:
            return SyncResponse(updates=[], cookie=None)
        content = self.server.search(request).entries
        return SyncResponse(
            updates=[SyncUpdate.add(e) for e in content],
            cookie=self._make_cookie(self.server.current_csn),
            initial=control.cookie is None,
            uses_retain=control.cookie is not None,
        )
