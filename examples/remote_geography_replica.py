#!/usr/bin/env python3
"""The §7 case study, end to end: a partial replica for one geography.

Generates the synthetic enterprise directory (≈30% of employees in the
AP geography), a two-day Table 1 workload, and compares the two
replication models for a branch replica serving AP users:

* a **subtree replica** holding the AP country subtrees,
* a **filter replica** holding generalized ``(serialnumber=_*_)`` site
  block filters selected from day-1 statistics, the whole location
  tree, hot department queries, and a 50-query recent-user-query cache,

then reports hit ratio per query type, replica size and update traffic.

Run:  python examples/remote_geography_replica.py
"""

from repro.core import FilterReplica, SubtreeReplica
from repro.ldap import Scope, SearchRequest
from repro.metrics import ReplicaDriver
from repro.server import SimulatedNetwork, DirectoryServer
from repro.sync import ResyncProvider
from repro.workload import (
    DirectoryConfig,
    QueryType,
    WorkloadConfig,
    WorkloadGenerator,
    generate_directory,
)
from repro.workload.updates import UpdateGenerator

GEOGRAPHY = "AP"


def main() -> None:
    directory = generate_directory(DirectoryConfig(employees=4000))
    trace = WorkloadGenerator(directory, WorkloadConfig()).generate(6000, days=2)
    print(
        f"directory: {len(directory.entries)} entries, "
        f"{directory.employee_count} employees, "
        f"{len(directory.geography_employees(GEOGRAPHY))} in {GEOGRAPHY}"
    )
    print("workload:", {t.value: f"{s:.0%}" for t, s in trace.distribution().items()})

    # ------------------------------------------------------------------
    # day-1 statistics: hot serial blocks and hot departments
    # ------------------------------------------------------------------
    block_hits, dept_queries = {}, {}
    for record in trace.day(1):
        if record.qtype is QueryType.SERIAL:
            value = str(record.request.filter)[len("(serialNumber=") : -1]
            block_hits[(value[:4], value[6:])] = (
                block_hits.get((value[:4], value[6:]), 0) + 1
            )
        elif record.qtype is QueryType.DEPARTMENT:
            dept_queries[record.request] = dept_queries.get(record.request, 0) + 1
    hot_blocks = sorted(block_hits, key=block_hits.get, reverse=True)[:25]
    hot_departments = sorted(dept_queries, key=dept_queries.get, reverse=True)[:20]

    day2 = trace.day(2)

    # ------------------------------------------------------------------
    # model 1: subtree replica over the AP countries
    # ------------------------------------------------------------------
    def fresh_master() -> DirectoryServer:
        master = DirectoryServer("master")
        master.add_naming_context(directory.suffix)
        master.load(directory.entries)
        return master

    master = fresh_master()
    provider = ResyncProvider(master)
    net = SimulatedNetwork()
    subtree = SubtreeReplica("ap-subtree", network=net)
    for cc in directory.geography_countries(GEOGRAPHY):
        subtree.add_context(f"c={cc},o=xyz")
    subtree.sync(provider)
    net.stats.reset()
    subtree_result = ReplicaDriver(
        master,
        subtree,
        provider=provider,
        update_generator=UpdateGenerator(directory, master),
        updates_per_query=0.2,
        sync_interval=300,
        use_scoped=True,  # subtree replicas need directory-aware clients
        network=net,
    ).run(day2)

    # ------------------------------------------------------------------
    # model 2: filter replica (blocks + location tree + depts + cache)
    # ------------------------------------------------------------------
    master = fresh_master()
    provider = ResyncProvider(master)
    net = SimulatedNetwork()
    filt = FilterReplica("ap-filter", network=net, cache_capacity=50)
    for block, cc in hot_blocks:
        filt.add_filter(
            SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc})"), provider
        )
    filt.add_filter(SearchRequest("", Scope.SUB, "(objectClass=location)"), provider)
    for request in hot_departments:
        filt.add_filter(request, provider)
    net.stats.reset()
    filter_result = ReplicaDriver(
        master,
        filt,
        provider=provider,
        update_generator=UpdateGenerator(directory, master),
        updates_per_query=0.2,
        sync_interval=300,
        network=net,  # answers the faithful null-based queries
    ).run(day2)

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    print(f"\n{'':<24}{'subtree':>12}{'filter':>12}")
    rows = [
        ("replica entries", subtree_result.replica_entries, filter_result.replica_entries),
        ("replica size (KB)", subtree_result.replica_bytes // 1024, filter_result.replica_bytes // 1024),
        ("overall hit ratio", f"{subtree_result.hit_ratio:.3f}", f"{filter_result.hit_ratio:.3f}"),
    ]
    for qtype in QueryType:
        rows.append(
            (
                f"  {qtype.value} hits",
                f"{subtree_result.hit_ratio_by_type.get(qtype.value, 0):.3f}",
                f"{filter_result.hit_ratio_by_type.get(qtype.value, 0):.3f}",
            )
        )
    rows.append(("sync entry PDUs", subtree_result.sync_entry_pdus, filter_result.sync_entry_pdus))
    rows.append(("sync bytes (KB)", subtree_result.sync_bytes // 1024, filter_result.sync_bytes // 1024))
    for label, a, b in rows:
        print(f"{label:<24}{str(a):>12}{str(b):>12}")

    print(
        "\nthe filter replica answers root-based queries (§3.1.1), holds "
        "far fewer entries, and syncs less — the paper's Figures 4 and 6."
    )


if __name__ == "__main__":
    main()
