"""Shared benchmark machinery: environment, sweeps, result reporting.

Every bench (one per paper table/figure, see DESIGN.md §3) runs against
the same session-scoped environment: a synthetic enterprise directory
(DESIGN.md §4 documents why it substitutes for the paper's IBM
directory), a loaded master, and a two-day Table 1 workload.  Day 1 is
the training half (filter selection / warm-up), day 2 the evaluation
half, mirroring the paper's two-day trace.

Scale note: the paper's directory has ~500k entries and its workload
hundreds of applications; this harness defaults to a few thousand
entries so the full figure sweep reproduces in seconds.  All reported
quantities that the paper normalizes (hit ratio, replica size as a
fraction of person entries, traffic in entries) are normalized here the
same way, so shapes are scale-independent.  Revolution intervals are
scaled down with the trace length (paper: R = 6000/10000 queries on a
multi-day trace; here R = 600/1000 on a 10k-query trace).

Results of each bench are printed and appended to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote the
measured rows next to the paper's, and exported as machine-readable
``benchmarks/results/<experiment>.json`` with the schema
``{bench, params, metrics, paper_expected, table}`` (validated by
``benchmarks/validate_results.py``; documented in
docs/OBSERVABILITY.md §5).  Every JSON export carries the protocol
counters (``round_trips``, ``bytes_sent``) and the QC containment-cache
statistics so perf PRs have a baseline to diff against.
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core import FilterReplica, FilterSelector, SubtreeReplica
from repro.core.containment import (
    clear_containment_cache,
    containment_cache_metrics,
)
from repro.ldap import Scope, SearchRequest
from repro.metrics import ExperimentResult, ReplicaDriver
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import (
    DirectoryConfig,
    EnterpriseDirectory,
    QueryType,
    Trace,
    WorkloadConfig,
    WorkloadGenerator,
    generate_directory,
)
from repro.workload.updates import UpdateGenerator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

GEOGRAPHY = "AP"


@dataclass
class BenchEnv:
    """The shared evaluation environment."""

    directory: EnterpriseDirectory
    trace: Trace

    @property
    def person_entries(self) -> int:
        return self.directory.employee_count

    def fresh_master(self) -> DirectoryServer:
        """A new master loaded with the directory (isolated per run)."""
        master = DirectoryServer("master")
        master.add_naming_context(self.directory.suffix)
        master.load(self.directory.entries)
        return master

    def day(self, day: int) -> Trace:
        return self.trace.day(day)


def build_env(
    employees: int = 6000, queries: int = 10000, seed: int = 20050607
) -> BenchEnv:
    directory = generate_directory(DirectoryConfig(employees=employees, seed=seed))
    trace = WorkloadGenerator(
        directory, WorkloadConfig(seed=seed + 1)
    ).generate(queries, days=2)
    return BenchEnv(directory=directory, trace=trace)


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
@contextmanager
def quiesced_gc():
    """GC off for a timed window.  Bench loops are short enough that a
    single gen-2 collection of the suite's whole heap landing inside
    one would dominate the measurement — and make a bench's committed
    numbers depend on which benches ran before it in the process."""
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def timed_best(
    fn: Callable[[], object], repeats: int = 5, warmup: int = 1
) -> float:
    """Best (minimum) wall-clock seconds of *repeats* calls to *fn*,
    after *warmup* untimed calls, with the GC quiesced.

    Committed timing metrics come through here.  The warm-up call pays
    one-time costs (first-touch allocation, lazy imports); the minimum
    is the estimator ``timeit`` recommends because interference from a
    shared runner — host CPU steal, scheduler hiccups — only ever slows
    a pass down, so the fastest pass is the stable machine-capability
    number.  A median still drifts 20-40% through sustained steal
    phases, which is exactly the committed-rate flake the 20% baseline
    gate must not inherit.
    """
    for _ in range(warmup):
        fn()
    samples = []
    with quiesced_gc():
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
    return float(min(samples))


# ----------------------------------------------------------------------
# training-side statistics (day 1)
# ----------------------------------------------------------------------
def hot_blocks(env: BenchEnv, day: int = 1) -> List[Tuple[str, str, int]]:
    """serialNumber blocks ranked by day-*day* access count.

    Returns (block prefix, country code upper, hits), hottest first —
    the statistics a static benefit/size selection works from (§6.2).
    """
    counts: Dict[Tuple[str, str], int] = {}
    for record in env.trace.day(day).of_type(QueryType.SERIAL):
        value = str(record.request.filter)[len("(serialNumber=") : -1]
        key = (value[:4], value[6:])
        counts[key] = counts.get(key, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    return [(block, cc, hits) for (block, cc), hits in ranked]


def hot_countries(env: BenchEnv, day: int = 1) -> List[Tuple[str, int]]:
    """Countries ranked by day-1 person-query access count."""
    counts: Dict[str, int] = {}
    for record in env.trace.day(day):
        if record.qtype in (QueryType.SERIAL, QueryType.MAIL):
            cc = str(record.scoped_request.base).split(",")[0].split("=")[1]
            counts[cc] = counts.get(cc, 0) + 1
    return sorted(counts.items(), key=lambda kv: kv[1], reverse=True)


def block_filter(block: str, cc_upper: str) -> SearchRequest:
    """The generalized ``(serialnumber=_*_)`` filter for one site block."""
    return SearchRequest("", Scope.SUB, f"(serialNumber={block}*{cc_upper})")


# ----------------------------------------------------------------------
# single experiment points
# ----------------------------------------------------------------------
def run_filter_point(
    env: BenchEnv,
    filters: Sequence[SearchRequest],
    eval_trace: Trace,
    cache_capacity: int = 0,
    updates_per_query: float = 0.0,
    sync_interval: int = 500,
    selector_factory: Optional[Callable[[FilterReplica, ResyncProvider, DirectoryServer], FilterSelector]] = None,
) -> Tuple[ExperimentResult, FilterReplica]:
    """Run one filter-replica configuration over *eval_trace*."""
    master = env.fresh_master()
    provider = ResyncProvider(master)
    network = SimulatedNetwork()
    replica = FilterReplica(
        "branch", network=network, cache_capacity=cache_capacity
    )
    for request in filters:
        replica.add_filter(request, provider)
    network.stats.reset()  # initial load is not update traffic
    selector = (
        selector_factory(replica, provider, master) if selector_factory else None
    )
    update_generator = (
        UpdateGenerator(env.directory, master) if updates_per_query > 0 else None
    )
    driver = ReplicaDriver(
        master,
        replica,
        provider=provider,
        selector=selector,
        update_generator=update_generator,
        updates_per_query=updates_per_query,
        sync_interval=sync_interval,
        network=network,
    )
    return driver.run(eval_trace), replica


def run_subtree_point(
    env: BenchEnv,
    country_codes: Sequence[str],
    eval_trace: Trace,
    updates_per_query: float = 0.0,
    sync_interval: int = 500,
) -> Tuple[ExperimentResult, SubtreeReplica]:
    """Run one subtree-replica configuration (scoped queries — the most
    favourable interpretation for the baseline, §3.1.1)."""
    master = env.fresh_master()
    provider = ResyncProvider(master)
    network = SimulatedNetwork()
    replica = SubtreeReplica("branch", network=network)
    for cc in country_codes:
        replica.add_context(f"c={cc},o=xyz")
    replica.sync(provider)
    network.stats.reset()
    update_generator = (
        UpdateGenerator(env.directory, master) if updates_per_query > 0 else None
    )
    driver = ReplicaDriver(
        master,
        replica,
        provider=provider,
        update_generator=update_generator,
        updates_per_query=updates_per_query,
        sync_interval=sync_interval,
        use_scoped=True,
        network=network,
    )
    return driver.run(eval_trace), replica


def plan_metrics(server: DirectoryServer) -> Dict[str, float]:
    """The ``server.plan.*`` counters of one server's metrics registry.

    Search-planner accounting (docs/PLANNER.md): per-strategy plan
    counts plus entries examined/matched.  Benches merge this mapping
    into their exported JSON so planner regressions show up in baseline
    diffs.
    """
    return {
        name: value
        for name, value in server.metrics.to_dict().items()
        if name.startswith("server.plan.")
    }


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def report(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    params: Optional[Mapping[str, object]] = None,
    metrics: Optional[Mapping[str, float]] = None,
    paper_expected: Optional[Mapping[str, object]] = None,
    network: Optional[SimulatedNetwork] = None,
) -> str:
    """Format, print and persist one experiment table (text + JSON).

    The text table keeps its historical format for EXPERIMENTS.md; the
    JSON side effect goes through :func:`export_json` with the same
    rows, so every bench emits a schema-valid
    ``results/<experiment>.json`` even when it passes no extra
    arguments.  ``params``/``metrics``/``paper_expected``/``network``
    flow straight through to the exporter.
    """
    rows = [list(row) for row in rows]
    lines = [f"== {experiment}: {title} =="]
    header = " | ".join(f"{h:>14}" for h in headers)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            " | ".join(
                f"{v:>14.4f}" if isinstance(v, float) else f"{str(v):>14}"
                for v in row
            )
        )
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    export_json(
        experiment,
        params=params,
        metrics=metrics,
        paper_expected=paper_expected,
        network=network,
        title=title,
        headers=headers,
        rows=rows,
    )
    return text


def export_json(
    bench: str,
    params: Optional[Mapping[str, object]] = None,
    metrics: Optional[Mapping[str, float]] = None,
    paper_expected: Optional[Mapping[str, object]] = None,
    network: Optional[SimulatedNetwork] = None,
    title: str = "",
    headers: Sequence[str] = (),
    rows: Sequence[Sequence] = (),
) -> str:
    """Write ``benchmarks/results/<bench>.json`` and return its path.

    Schema (checked by ``benchmarks/validate_results.py``)::

        {
          "bench": str,                # experiment name
          "params": {str: scalar},     # sweep/configuration inputs
          "metrics": {str: number},    # measured quantities
          "paper_expected": {...}|null,# the paper's anchors, if any
          "title": str,                # human table caption
          "table": {"headers": [...], "rows": [[...], ...]}
        }

    ``metrics`` is always completed with the protocol counters
    (``round_trips``, ``bytes_sent`` — taken from *network* when one is
    passed, else defaulting to the values already in *metrics* or 0)
    and the QC containment-cache statistics
    (``qc_cache_hits``/``qc_cache_misses``/``qc_cache_evictions``), so
    any single bench run yields a self-describing perf baseline.

    The QC memo is process-global, so the exporter *resets it after
    reading*: each result file reports only the cache activity since
    the previous export (i.e. this bench's own), and every bench
    starts from a cold memo regardless of which benches ran before it
    in the process — suite runs and standalone runs export the same
    per-bench counters.
    """
    merged: Dict[str, float] = dict(metrics or {})
    if network is not None:
        for field_name, value in network.stats.as_dict().items():
            merged.setdefault(field_name, value)
    merged.setdefault("round_trips", 0)
    merged.setdefault("bytes_sent", 0)
    qc = containment_cache_metrics()
    merged.setdefault("qc_cache_hits", qc["core.qc.cache.hits"])
    merged.setdefault("qc_cache_misses", qc["core.qc.cache.misses"])
    merged.setdefault("qc_cache_evictions", qc["core.qc.cache.evictions"])
    clear_containment_cache()  # per-bench counters: next export starts at zero
    payload = {
        "bench": bench,
        "params": dict(params or {}),
        "metrics": merged,
        "paper_expected": dict(paper_expected) if paper_expected else None,
        "title": title,
        "table": {
            "headers": list(headers),
            "rows": [list(row) for row in rows],
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{bench}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return path
