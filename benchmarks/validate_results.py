#!/usr/bin/env python
"""Schema-check every ``benchmarks/results/*.json`` export.

The bench JSON schema (produced by :func:`benchmarks.common.export_json`,
documented in docs/OBSERVABILITY.md §5):

* top-level keys ``bench`` (str), ``params`` (object of scalars),
  ``metrics`` (object of numbers), ``paper_expected`` (object or null);
  ``title`` (str) and ``table`` ({headers, rows}) are optional extras;
* ``metrics`` must contain at least ``round_trips``, ``bytes_sent``,
  ``qc_cache_hits`` and ``qc_cache_misses``;
* ``bench`` must match the file name stem.

Exit status 0 when every file validates (and at least one exists when
``--require-any`` is passed); 1 otherwise.  Wired into CI
(.github/workflows/ci.yml) after the bench suite.

Usage::

    python benchmarks/validate_results.py [--dir DIR] [--require-any]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

REQUIRED_METRICS = ("round_trips", "bytes_sent", "qc_cache_hits", "qc_cache_misses")

SCALAR = (str, int, float, bool, type(None))


def validate_payload(payload: object, stem: str) -> List[str]:
    """All schema violations in one parsed JSON payload (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    for key in ("bench", "params", "metrics"):
        if key not in payload:
            errors.append(f"missing required key {key!r}")
    if "paper_expected" not in payload:
        errors.append("missing required key 'paper_expected'")

    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append("'bench' must be a non-empty string")
    elif bench != stem:
        errors.append(f"'bench' ({bench!r}) does not match file stem ({stem!r})")

    params = payload.get("params")
    if not isinstance(params, dict):
        errors.append("'params' must be an object")
    else:
        for key, value in params.items():
            if not isinstance(value, SCALAR):
                errors.append(f"params[{key!r}] is not a scalar")

    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("'metrics' must be an object")
    else:
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"metrics[{key!r}] is not a number")
        for key in REQUIRED_METRICS:
            if key not in metrics:
                errors.append(f"metrics missing required key {key!r}")

    expected = payload.get("paper_expected", None)
    if expected is not None and not isinstance(expected, dict):
        errors.append("'paper_expected' must be an object or null")

    table = payload.get("table")
    if table is not None:
        if not isinstance(table, dict):
            errors.append("'table' must be an object")
        else:
            if not isinstance(table.get("headers", []), list):
                errors.append("table.headers must be a list")
            if not isinstance(table.get("rows", []), list):
                errors.append("table.rows must be a list")
    return errors


def validate_file(path: str) -> List[str]:
    """Schema violations for one results file (empty list = valid)."""
    stem = os.path.splitext(os.path.basename(path))[0]
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]
    return validate_payload(payload, stem)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
        help="results directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--require-any",
        action="store_true",
        help="fail when no *.json results exist at all",
    )
    args = parser.parse_args(argv)

    paths = sorted(
        os.path.join(args.dir, name)
        for name in (os.listdir(args.dir) if os.path.isdir(args.dir) else [])
        if name.endswith(".json")
    )
    if not paths:
        if args.require_any:
            print(f"FAIL: no JSON results under {args.dir}", file=sys.stderr)
            return 1
        print(f"no JSON results under {args.dir} (nothing to validate)")
        return 0

    failures = 0
    for path in paths:
        errors = validate_file(path)
        if errors:
            failures += 1
            print(f"FAIL {os.path.basename(path)}", file=sys.stderr)
            for error in errors:
                print(f"  - {error}", file=sys.stderr)
        else:
            print(f"ok   {os.path.basename(path)}")
    if failures:
        print(f"{failures}/{len(paths)} files failed validation", file=sys.stderr)
        return 1
    print(f"{len(paths)} result files schema-valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
