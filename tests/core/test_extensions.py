"""Tests for beyond-the-paper extensions: union composition, cache
policies, operational timestamps."""

import pytest

from repro.core import FilterReplica, RecentQueryCache
from repro.ldap import DN, Entry, Scope, SearchRequest
from repro.server import DirectoryServer, Modification
from repro.sync import ResyncProvider


@pytest.fixture()
def master() -> DirectoryServer:
    m = DirectoryServer("master")
    m.add_naming_context("o=xyz")
    m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    for i in range(6):
        m.add(
            Entry(
                f"cn=P{i},o=xyz",
                {
                    "objectClass": ["person"],
                    "cn": f"P{i}",
                    "sn": "T",
                    "departmentNumber": str(i % 3),
                },
            )
        )
    return m


def dept(n: int) -> SearchRequest:
    return SearchRequest("o=xyz", Scope.SUB, f"(departmentNumber={n})")


class TestUnionComposition:
    def test_disjunction_answered_from_two_filters(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r", compose_unions=True)
        replica.add_filter(dept(0), provider)
        replica.add_filter(dept(1), provider)
        query = SearchRequest(
            "o=xyz", Scope.SUB, "(|(departmentNumber=0)(departmentNumber=1))"
        )
        answer = replica.answer(query)
        assert answer.is_hit
        assert answer.answered_by.startswith("union:")
        truth = master.search(query).entries
        assert {str(e.dn) for e in answer.entries} == {str(e.dn) for e in truth}

    def test_uncovered_disjunct_misses(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r", compose_unions=True)
        replica.add_filter(dept(0), provider)
        query = SearchRequest(
            "o=xyz", Scope.SUB, "(|(departmentNumber=0)(departmentNumber=2))"
        )
        assert not replica.answer(query).is_hit

    def test_disabled_by_default(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r")
        replica.add_filter(dept(0), provider)
        replica.add_filter(dept(1), provider)
        query = SearchRequest(
            "o=xyz", Scope.SUB, "(|(departmentNumber=0)(departmentNumber=1))"
        )
        assert not replica.answer(query).is_hit

    def test_overlapping_results_deduplicated(self, master):
        provider = ResyncProvider(master)
        replica = FilterReplica("r", compose_unions=True)
        replica.add_filter(dept(0), provider)
        replica.add_filter(
            SearchRequest("o=xyz", Scope.SUB, "(sn=*)"), provider
        )
        query = SearchRequest(
            "o=xyz", Scope.SUB, "(|(departmentNumber=0)(sn=T))"
        )
        answer = replica.answer(query)
        assert answer.is_hit
        dns = [str(e.dn) for e in answer.entries]
        assert len(dns) == len(set(dns))
        truth = master.search(query).entries
        assert set(dns) == {str(e.dn) for e in truth}

    def test_single_containment_still_preferred(self, master):
        """A query contained in one stored filter is answered directly,
        not via union composition."""
        provider = ResyncProvider(master)
        replica = FilterReplica("r", compose_unions=True)
        replica.add_filter(
            SearchRequest("o=xyz", Scope.SUB, "(departmentNumber=*)"), provider
        )
        query = SearchRequest(
            "o=xyz", Scope.SUB, "(|(departmentNumber=0)(departmentNumber=1))"
        )
        answer = replica.answer(query)
        assert answer.is_hit
        assert not answer.answered_by.startswith("union:")


class TestCachePolicies:
    def person(self, name: str) -> Entry:
        return Entry(
            f"cn={name},o=xyz", {"objectClass": ["person"], "cn": name, "sn": "x"}
        )

    def q(self, name: str) -> SearchRequest:
        return SearchRequest("", Scope.SUB, f"(cn={name})")

    def test_lru_keeps_hot_entries(self):
        cache = RecentQueryCache(2, policy="lru")
        cache.insert(self.q("hot"), [self.person("hot")])
        cache.insert(self.q("cold"), [self.person("cold")])
        assert cache.lookup(self.q("hot")) is not None  # refreshes 'hot'
        cache.insert(self.q("new"), [self.person("new")])  # evicts 'cold'
        assert cache.lookup(self.q("hot")) is not None
        assert cache.lookup(self.q("cold")) is None

    def test_fifo_evicts_by_arrival(self):
        cache = RecentQueryCache(2, policy="fifo")
        cache.insert(self.q("hot"), [self.person("hot")])
        cache.insert(self.q("cold"), [self.person("cold")])
        assert cache.lookup(self.q("hot")) is not None  # does NOT refresh
        cache.insert(self.q("new"), [self.person("new")])  # evicts 'hot'
        assert cache.lookup(self.q("hot")) is None
        assert cache.lookup(self.q("cold")) is not None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            RecentQueryCache(2, policy="random")

    def test_replica_passes_policy_through(self):
        replica = FilterReplica("r", cache_capacity=5, cache_policy="lru")
        assert replica.cache.policy == "lru"


class TestOperationalTimestamps:
    def test_disabled_by_default(self, master):
        entry = master.store.get(DN.parse("cn=P0,o=xyz"))
        assert not entry.has_attribute("modifyTimestamp")

    def test_stamped_on_add(self):
        m = DirectoryServer("m")
        m.maintain_timestamps = True
        m.add_naming_context("o=xyz")
        m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        entry = m.store.get(DN.parse("o=xyz"))
        assert entry.first("createTimestamp") == "1"
        assert entry.first("modifyTimestamp") == "1"

    def test_modify_advances_timestamp(self):
        m = DirectoryServer("m")
        m.maintain_timestamps = True
        m.add_naming_context("o=xyz")
        m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        m.modify("o=xyz", [Modification.replace("description", "x")])
        entry = m.store.get(DN.parse("o=xyz"))
        assert entry.first("createTimestamp") == "1"
        assert int(entry.first("modifyTimestamp")) > 1

    def test_rename_stamps_moved_entries(self):
        m = DirectoryServer("m")
        m.maintain_timestamps = True
        m.add_naming_context("o=xyz")
        m.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
        m.add(Entry("cn=a,o=xyz", {"objectClass": ["person"], "cn": "a", "sn": "s"}))
        m.modify_dn("cn=a,o=xyz", new_rdn="cn=b")
        entry = m.store.get(DN.parse("cn=b,o=xyz"))
        assert int(entry.first("modifyTimestamp")) >= 3

    def test_caller_entry_not_mutated(self):
        m = DirectoryServer("m")
        m.maintain_timestamps = True
        m.add_naming_context("o=xyz")
        mine = Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"})
        m.add(mine)
        assert not mine.has_attribute("modifyTimestamp")
