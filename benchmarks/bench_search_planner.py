"""E17 — derived: master search-path cost under the query planner.

The paper's premise (§1, §7) is that directory workloads are read
dominated: every master search that degrades to a full scope scan pays
for filter evaluation over the whole region, while index-pruned
searches touch only a candidate set.  This bench drives a mixed filter
workload (equality, AND-intersections, OR-unions, ranges, substrings)
straight against one loaded master and reports wall-clock
searches/second plus the planner's own accounting: which strategies
were chosen and how many entries were examined per entry matched —
``server.plan.*`` in the exported JSON.
"""

from __future__ import annotations

import pytest

from repro.ldap import Scope, SearchRequest

from .common import BenchEnv, hot_blocks, plan_metrics, report, timed_best

N_QUERIES = 600
TIMING_REPEATS = 5  # best-of-N workload passes for elapsed_s


def mixed_requests(env: BenchEnv, n: int):
    """A deterministic mixed-shape filter workload over the bench tree."""
    suffix = env.directory.suffix
    blocks = [block for block, _cc, _h in hot_blocks(env)[:40]] or ["0010"]
    depts = sorted(
        {
            e.first("departmentNumber")
            for e in env.directory.entries
            if e.first("departmentNumber")
        }
    )
    requests = []
    for i in range(n):
        block = blocks[i % len(blocks)]
        dept = depts[i % len(depts)]
        shape = i % 5
        if shape == 0:
            flt = f"(serialNumber={block}*)"
        elif shape == 1:
            flt = f"(&(objectClass=person)(serialNumber={block}*))"
        elif shape == 2:
            other = blocks[(i + 1) % len(blocks)]
            flt = f"(|(serialNumber={block}*)(serialNumber={other}*))"
        elif shape == 3:
            flt = f"(departmentNumber={dept})"
        else:
            flt = f"(&(departmentNumber>={dept})(departmentNumber<={dept}))"
        requests.append(SearchRequest(suffix, Scope.SUB, flt))
    return requests


@pytest.fixture(scope="module")
def planner_rows(env: BenchEnv):
    master = env.fresh_master()
    requests = mixed_requests(env, N_QUERIES)

    def run_workload():
        return sum(len(master.search(r).entries) for r in requests)

    # Warm-up pass: pays first-touch costs and supplies the per-pass
    # planner counters; the committed elapsed_s is the best of N
    # repeat passes so one scheduler hiccup cannot fail the 20%
    # baseline gate on a quiet-but-shared runner.
    matched = run_workload()
    plans = plan_metrics(master)
    elapsed = timed_best(run_workload, repeats=TIMING_REPEATS, warmup=0)
    examined = plans.get("server.plan.examined", 0)
    rows = [
        ("searches", N_QUERIES),
        ("entries_matched", matched),
        ("entries_examined", examined),
        ("searches_per_s", N_QUERIES / elapsed if elapsed else 0.0),
        ("examined_per_match", examined / matched if matched else 0.0),
    ]
    for name, value in sorted(plans.items()):
        rows.append((name, value))
    return rows, plans, elapsed, matched


def test_planner_search_path(benchmark, env: BenchEnv, planner_rows):
    rows, plans, elapsed, matched = planner_rows
    metrics = {
        "searches": float(N_QUERIES),
        "entries_matched": float(matched),
        "elapsed_s": elapsed,
        "searches_per_s": N_QUERIES / elapsed if elapsed else 0.0,
    }
    metrics.update({k: float(v) for k, v in plans.items()})
    report(
        "search_planner",
        f"Master search-path cost, mixed filter workload ({N_QUERIES} queries)",
        ["quantity", "value"],
        rows,
        params={"queries": N_QUERIES, "entries": len(env.fresh_master().store)},
        metrics=metrics,
        paper_expected={
            "shape": "index strategies dominate; examined/match stays near 1"
        },
    )

    # The planner must have produced index-backed plans for the bulk of
    # the workload; a scan-only outcome means the index layer is dead.
    scans = plans.get('server.plan.strategy{strategy="scan"}', 0)
    assert scans < N_QUERIES * 0.5

    # Candidate pruning: examined entries stay well below a full-scan
    # workload (N_QUERIES * store size).
    store_size = len(env.fresh_master().store)
    examined = plans.get("server.plan.examined", 0)
    assert examined < N_QUERIES * store_size * 0.25

    # Timed unit: one AND-intersection search (the planner's hot case).
    master = env.fresh_master()
    sample = mixed_requests(env, 2)[1]
    benchmark(lambda: master.search(sample))
