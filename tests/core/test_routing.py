"""ContainmentIndex unit behaviour + the completeness property.

The index is pure routing: it must never *miss* a registered query that
could contain an incoming one (completeness), while extra candidates
only cost a containment check.  Completeness is the load-bearing
invariant — it is what lets `FilterReplica`/`RecentQueryCache` skip the
linear scan without changing a single answer — so it gets a Hypothesis
property over the same closed world the containment soundness suite
uses.
"""

from hypothesis import given, settings, strategies as st

from repro.core import query_contained_in
from repro.core.routing import ContainmentIndex, guard_atoms, probe_atoms
from repro.ldap import (
    And,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Scope,
    SearchRequest,
    Substring,
    parse_filter,
)

# ----------------------------------------------------------------------
# guard/probe atom unit behaviour
# ----------------------------------------------------------------------


def test_equality_guard_is_exact_value():
    assert guard_atoms(Equality("sn", "Kumar")) == {("eq", "sn", "kumar")}


def test_anchored_substring_guard_is_prefix():
    assert guard_atoms(Substring("sn", initial="Ku")) == {("pfx", "sn", "ku")}


def test_unanchored_substring_guard_is_attribute():
    assert guard_atoms(Substring("sn", any_parts=("um",))) == {("attr", "sn")}


def test_range_and_present_guards_are_attribute():
    assert guard_atoms(GreaterOrEqual("uid", "5")) == {("attr", "uid")}
    assert guard_atoms(Present("uid")) == {("attr", "uid")}


def test_not_guard_is_any():
    assert guard_atoms(Not(Equality("sn", "a"))) == {("any",)}


def test_and_guard_picks_most_selective_conjunct():
    flt = And((Present("objectClass"), Equality("sn", "a")))
    assert guard_atoms(flt) == {("eq", "sn", "a")}


def test_or_guard_unions_children():
    flt = Or((Equality("sn", "a"), Substring("cn", initial="b")))
    assert guard_atoms(flt) == {("eq", "sn", "a"), ("pfx", "cn", "b")}


def test_probe_atoms_cover_equality_prefixes():
    atoms = probe_atoms(Equality("sn", "abc"))
    assert ("eq", "sn", "abc") in atoms
    assert ("attr", "sn") in atoms
    assert {("pfx", "sn", "a"), ("pfx", "sn", "ab"), ("pfx", "sn", "abc")} <= atoms
    assert ("any",) in atoms


# ----------------------------------------------------------------------
# index routing behaviour
# ----------------------------------------------------------------------


def _req(filter_text: str, base: str = "o=xyz") -> SearchRequest:
    return SearchRequest(base, Scope.SUB, parse_filter(filter_text))


def test_candidates_route_equality_to_anchored_substring():
    index = ContainmentIndex()
    stored = _req("(serialNumber=0001*US)")
    index.add(stored, "h")
    got = index.candidates(_req("(serialNumber=000123US)"))
    assert [c.request for c in got] == [stored]


def test_or_stored_filter_reached_from_single_disjunct_query():
    # The Or-right containment rule: (sn=a) ⊆ (|(sn=a)(cn=b)).  A naive
    # attribute-subset prescreen would skip the stored OR; the guard
    # union must not.
    index = ContainmentIndex()
    stored = _req("(|(sn=a)(cn=b))")
    index.add(stored, "h")
    query = _req("(sn=a)")
    assert query_contained_in(query, stored)
    assert stored in [c.request for c in index.candidates(query)]


def test_unrelated_attribute_is_not_a_candidate():
    index = ContainmentIndex()
    index.add(_req("(sn=a)"), "h")
    assert index.candidates(_req("(uid=a)")) == []


def test_region_prefix_probing():
    index = ContainmentIndex()
    wide = _req("(sn=a)", base="o=xyz")
    narrow = _req("(sn=a)", base="c=us,o=xyz")
    other = _req("(sn=a)", base="c=in,o=xyz")
    index.add(wide, "w")
    index.add(narrow, "n")
    index.add(other, "o")
    got = [c.request for c in index.candidates(_req("(sn=a)", base="c=us,o=xyz"))]
    # Stored bases must be ancestor-or-self of the query base.
    assert got == [wide, narrow]


def test_insertion_order_preserved():
    index = ContainmentIndex()
    first = _req("(sn=a)")
    second = _req("(|(sn=a)(sn=b))")
    index.add(first, 1)
    index.add(second, 2)
    got = [c.request for c in index.candidates(_req("(sn=a)"))]
    assert got == [first, second]


def test_recency_order_newest_first_and_touch():
    index = ContainmentIndex(order="recency")
    first = _req("(sn=a)")
    second = _req("(|(sn=a)(sn=b))")
    index.add(first, 1)
    index.add(second, 2)
    probe = _req("(sn=a)")
    assert [c.request for c in index.candidates(probe)] == [second, first]
    index.touch(first)  # LRU hit moves it to the front
    assert [c.request for c in index.candidates(probe)] == [first, second]


def test_remove_unregisters_and_invalidates_memo():
    index = ContainmentIndex()
    stored = _req("(sn=a)")
    cand = index.add(stored, "h")
    query = _req("(sn=a)")
    index.memo_put(query, cand)
    assert index.memo_get(query) is cand
    index.remove(stored)
    assert index.candidates(query) == []
    assert index.memo_get(query) is None  # liveness check drops it


def test_readd_after_remove_gets_fresh_memo_identity():
    index = ContainmentIndex()
    stored = _req("(sn=a)")
    old = index.add(stored, "h")
    query = _req("(sn=a)")
    index.memo_put(query, old)
    index.remove(stored)
    fresh = index.add(stored, "h2")
    # The stale memo entry must not resurrect the removed candidate.
    assert index.memo_get(query) is None
    assert [c is fresh for c in index.candidates(query)] == [True]


def test_memo_disabled_in_recency_order():
    index = ContainmentIndex(order="recency")
    stored = _req("(sn=a)")
    cand = index.add(stored, "h")
    query = _req("(sn=a)")
    index.memo_put(query, cand)
    assert index.memo_get(query) is None


# ----------------------------------------------------------------------
# completeness property
# ----------------------------------------------------------------------

_ATTRS = ["sn", "uid", "l"]
_VALUES = ["a", "ab", "abc", "b", "ba", "c"]
_attr = st.sampled_from(_ATTRS)
_value = st.sampled_from(_VALUES)

_leaves = st.one_of(
    st.builds(Equality, _attr, _value),
    st.builds(GreaterOrEqual, _attr, _value),
    st.builds(LessOrEqual, _attr, _value),
    st.builds(Present, _attr),
    st.builds(lambda a, v: Substring(a, initial=v), _attr, _value),
    st.builds(lambda a, v: Substring(a, final=v), _attr, _value),
    st.builds(lambda a, v: Substring(a, any_parts=(v,)), _attr, _value),
)

_filters = st.recursive(
    _leaves,
    lambda kids: st.one_of(
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(kids, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        kids.map(Not),
    ),
    max_leaves=6,
)

_BASES = ["", "o=xyz", "c=us,o=xyz", "cn=probe,c=us,o=xyz"]
_requests = st.builds(
    SearchRequest,
    st.sampled_from(_BASES),
    st.sampled_from(list(Scope)),
    _filters,
)


@settings(max_examples=300, deadline=None)
@given(_requests, st.lists(_requests, min_size=1, max_size=8))
def test_candidates_superset_of_containing(query, population):
    """Any stored query that contains *query* must be routed."""
    index = ContainmentIndex()
    for stored in population:
        index.add(stored, stored)
    routed = {c.request for c in index.candidates(query)}
    for stored in set(population):
        if query_contained_in(query, stored):
            assert stored in routed, (
                f"routing skipped containing query {stored} for {query}"
            )
