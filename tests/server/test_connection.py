"""Tests for the connection layer: bind / unbind / abandon (§2.2)."""

import pytest

from repro.ldap import Entry, Scope, SearchRequest
from repro.server import (
    BindState,
    ConnectionError_,
    DirectoryServer,
    LdapError,
    Modification,
    SimulatedNetwork,
    connect,
)
from repro.sync import ResyncProvider


@pytest.fixture()
def network_and_server():
    network = SimulatedNetwork()
    server = DirectoryServer("hostA")
    server.add_naming_context("o=xyz")
    server.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
    server.add(
        Entry(
            "cn=admin,o=xyz",
            {
                "objectClass": ["person"],
                "cn": "admin",
                "sn": "admin",
                "userPassword": "secret",
            },
        )
    )
    server.add(
        Entry("cn=user,o=xyz", {"objectClass": ["person"], "cn": "user", "sn": "u"})
    )
    network.register(server)
    return network, server


class TestLifecycle:
    def test_connect_counts_connection(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        assert network.open_connections == 1
        conn.unbind()
        assert network.open_connections == 0
        assert network.total_connections == 1

    def test_starts_anonymous(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        assert conn.state is BindState.ANONYMOUS

    def test_context_manager_unbinds(self, network_and_server):
        network, _server = network_and_server
        with connect(network, "ldap://hostA") as conn:
            assert conn.state is BindState.ANONYMOUS
        assert conn.state is BindState.CLOSED
        assert network.open_connections == 0

    def test_operations_on_closed_rejected(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        conn.unbind()
        with pytest.raises(ConnectionError_):
            conn.search(SearchRequest("o=xyz", Scope.SUB))

    def test_double_unbind_is_noop(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        conn.unbind()
        conn.unbind()
        assert network.open_connections == 0


class TestBind:
    def test_successful_bind(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        conn.bind("cn=admin,o=xyz", "secret")
        assert conn.state is BindState.BOUND
        assert str(conn.bound_dn) == "cn=admin,o=xyz"

    def test_wrong_password_rejected(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        with pytest.raises(LdapError):
            conn.bind("cn=admin,o=xyz", "wrong")

    def test_unknown_dn_rejected(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        with pytest.raises(LdapError):
            conn.bind("cn=ghost,o=xyz", "x")

    def test_password_on_passwordless_entry_rejected(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        with pytest.raises(LdapError):
            conn.bind("cn=user,o=xyz", "anything")

    def test_rebind_anonymous(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        conn.bind("cn=admin,o=xyz", "secret")
        conn.bind(None)
        assert conn.state is BindState.ANONYMOUS


class TestAuthorization:
    def test_updates_require_bind_when_configured(self, network_and_server):
        network, server = network_and_server
        server.updates_require_bind = True
        conn = connect(network, "ldap://hostA")
        with pytest.raises(LdapError):
            conn.modify("cn=user,o=xyz", [Modification.replace("sn", "x")])
        conn.bind("cn=admin,o=xyz", "secret")
        conn.modify("cn=user,o=xyz", [Modification.replace("sn", "x")])

    def test_anonymous_updates_allowed_by_default(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        conn.modify("cn=user,o=xyz", [Modification.replace("sn", "y")])


class TestOperations:
    def test_search_charges_traffic(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        network.stats.reset()
        result = conn.search(SearchRequest("o=xyz", Scope.SUB, "(cn=user)"))
        assert len(result.entries) == 1
        assert network.stats.round_trips == 1
        assert network.stats.entry_pdus == 1

    def test_add_delete_roundtrip(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        conn.add(
            Entry("cn=temp,o=xyz", {"objectClass": ["person"], "cn": "temp", "sn": "t"})
        )
        conn.delete("cn=temp,o=xyz")

    def test_modify_dn(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        records = conn.modify_dn("cn=user,o=xyz", new_rdn="cn=user2")
        assert str(records[0].new_dn) == "cn=user2,o=xyz"


class TestAbandon:
    def test_unbind_abandons_persistent_searches(self, network_and_server):
        network, server = network_and_server
        provider = ResyncProvider(server)
        conn = connect(network, "ldap://hostA")
        notes = []
        _resp, handle = provider.persist(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"), notes.append
        )
        conn.track_persist(handle)
        assert conn.outstanding_persists == 1
        conn.unbind()
        assert provider.active_session_count == 0

    def test_abandon_all_keeps_connection(self, network_and_server):
        network, server = network_and_server
        provider = ResyncProvider(server)
        conn = connect(network, "ldap://hostA")
        _resp, handle = provider.persist(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"), lambda u: None
        )
        conn.track_persist(handle)
        conn.abandon_all()
        assert conn.outstanding_persists == 0
        assert conn.state is not BindState.CLOSED


class TestCrashAccounting:
    """Open/close accounting across server restarts (docs/PROTOCOL.md §9).

    A crash closes connections under their clients: ``drop()`` must
    abandon outstanding persistent searches locally and decrement
    ``net.connections.open`` exactly once — re-counted on reconnect,
    never leaked, never negative.
    """

    def test_drop_closes_and_decrements_once(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        assert network.open_connections == 1
        conn.drop()
        assert conn.state is BindState.CLOSED
        assert network.open_connections == 0
        conn.drop()  # idempotent: a second drop must not go negative
        conn.unbind()
        assert network.open_connections == 0

    def test_drop_abandons_persist_handles(self, network_and_server):
        network, server = network_and_server
        provider = ResyncProvider(server)
        conn = connect(network, "ldap://hostA")
        _resp, handle = provider.persist(
            SearchRequest("o=xyz", Scope.SUB, "(objectClass=person)"), lambda u: None
        )
        conn.track_persist(handle)
        conn.drop()
        assert not handle.active
        assert provider.active_session_count == 0

    def test_disconnect_server_drops_only_that_servers_connections(self):
        network = SimulatedNetwork()
        for name in ("hostA", "hostB"):
            server = DirectoryServer(name)
            server.add_naming_context("o=xyz")
            server.add(Entry("o=xyz", {"objectClass": ["organization"], "o": "xyz"}))
            network.register(server)
        conn_a = connect(network, "ldap://hostA")
        conn_b = connect(network, "ldap://hostB")
        assert network.open_connections == 2

        dropped = network.disconnect_server("ldap://hostA")
        assert dropped == 1
        assert conn_a.state is BindState.CLOSED
        assert conn_b.state is not BindState.CLOSED
        assert network.open_connections == 1

    def test_reconnect_after_crash_recounts(self, network_and_server):
        network, _server = network_and_server
        conn = connect(network, "ldap://hostA")
        network.disconnect_server("ldap://hostA")
        assert conn.state is BindState.CLOSED
        reconnected = connect(network, "ldap://hostA")
        assert network.open_connections == 1
        assert network.total_connections == 2
        reconnected.unbind()
        assert network.open_connections == 0
