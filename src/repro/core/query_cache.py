"""Sliding-window cache of recent user queries (§7.4).

Besides replicating generalized filters, it is advantageous to store
recently performed user queries: they capture *temporal* locality.
Cached queries are "simply cached for a short time window and not
updated" — the window is a FIFO of the last N queries with their result
entries, answered through the same containment machinery as stored
filters, and results may be slightly stale by design.

Lookup is routed through a recency-ordered
:class:`~repro.core.routing.ContainmentIndex` (``indexed=True``, the
default): instead of scanning the whole window newest-first, only
guard-atom/region candidates are containment-checked, in the same
newest-first order, so hits and results are byte-identical to the
linear scan (kept reachable with ``indexed=False`` as the test oracle).
Hit evaluation uses compiled filters (one closure per distinct query
filter via :func:`~repro.ldap.matching.compile_filter_cached`), and
``containment_checks`` counts the :func:`query_contained_in` calls
actually made — the replica folds it into its §7.4 overhead metric.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ldap.dn import DN
from ..ldap.entry import Entry
from ..ldap.filters import attributes_of
from ..ldap.matching import compile_filter_cached
from ..ldap.query import SearchRequest
from .containment import query_contained_in
from .routing import ContainmentIndex

__all__ = ["CachedQuery", "NegativeResultCache", "RecentQueryCache"]


class NegativeResultCache:
    """Exact-key memo of requests known to miss a containment scan.

    Today only *positive* containment outcomes are memoized (the
    routing index's winner memo); a repeated miss re-derives the whole
    "nothing contains this" proof every time.  This cache closes that
    gap: ``note_miss`` records a request that provably missed, and
    ``known_miss`` answers the repeat in one dict probe.

    Soundness requires exactness — an approximate structure could
    wrongly skip a *hit* — so keys are the full :class:`~repro.ldap.
    query.SearchRequest` (hashable by value), and any event that can
    turn a miss into a hit (a query or filter **added** to the
    population) drops the whole cache via :meth:`invalidate`.
    Removals and evictions can only turn hits into misses, so they
    need no invalidation.  FIFO-bounded; owners count hits/misses/
    invalidations and mirror them into ``core.qc.negcache.*``.
    """

    def __init__(self, capacity: int = 4_096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._misses: "OrderedDict[SearchRequest, None]" = OrderedDict()
        self.hits = 0
        self.lookups = 0
        self.invalidations = 0

    def known_miss(self, request: SearchRequest) -> bool:
        """True iff *request* missed since the last invalidation."""
        self.lookups += 1
        if request in self._misses:
            self.hits += 1
            return True
        return False

    def note_miss(self, request: SearchRequest) -> None:
        """Record a proven miss, evicting the oldest beyond capacity."""
        self._misses[request] = None
        while len(self._misses) > self.capacity:
            self._misses.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every recorded miss (the population gained a member)."""
        if self._misses:
            self._misses.clear()
            self.invalidations += 1

    def __len__(self) -> int:
        return len(self._misses)


@dataclass
class CachedQuery:
    """One cached user query and its (frozen) result entries."""

    request: SearchRequest
    entries: Dict[DN, Entry]
    filter_attrs: frozenset = frozenset()
    """Attributes of the cached filter — a cheap containment prescreen:
    our sound checker can only prove ``q ⊆ qs`` when every attribute
    *qs* constrains is also constrained by *q*."""


class RecentQueryCache:
    """Window of the last *capacity* user queries.

    The paper caches "recently performed user queries … for a short time
    window" — a FIFO of arrivals.  The ``lru`` policy is the classical
    alternative (hits refresh a query's position), exposed for the
    replacement-policy ablation; FIFO remains the paper-faithful
    default.

    Queries identical to an already-cached one refresh its result but do
    not consume an extra slot.

    ``indexed=False`` disables candidate routing and replays the seed
    linear scan — the equivalence oracle for the property tests.

    ``amq=True`` (the default) adds the miss-side prescreens of
    docs/ROUTING.md §10: the routing index's guard-atom AMQ, plus a
    :class:`NegativeResultCache` so a request that already proved to
    miss the window is re-answered in one probe.  Insertions (the only
    event that can turn a miss into a hit) invalidate it wholesale;
    answers are byte-identical with ``amq=False``.
    """

    POLICIES = ("fifo", "lru")

    def __init__(
        self,
        capacity: int = 50,
        policy: str = "fifo",
        indexed: bool = True,
        amq: bool = True,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {self.POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._window: "OrderedDict[SearchRequest, CachedQuery]" = OrderedDict()
        self._index: Optional[ContainmentIndex] = (
            ContainmentIndex(order="recency", amq=amq) if indexed and capacity else None
        )
        self.negatives: Optional[NegativeResultCache] = (
            NegativeResultCache() if amq and capacity else None
        )
        self._dn_refs: Dict[DN, int] = {}
        self.lookups = 0
        self.hits = 0
        self.containment_checks = 0

    def __len__(self) -> int:
        return len(self._window)

    # ------------------------------------------------------------------
    # replica-size refcounts (entry_count in O(1), not a window scan)
    # ------------------------------------------------------------------
    def _ref(self, dns) -> None:
        refs = self._dn_refs
        for dn in dns:
            refs[dn] = refs.get(dn, 0) + 1

    def _deref(self, dns) -> None:
        refs = self._dn_refs
        for dn in dns:
            left = refs.get(dn, 1) - 1
            if left <= 0:
                refs.pop(dn, None)
            else:
                refs[dn] = left

    def _evict(self, request: SearchRequest, cached: CachedQuery) -> None:
        self._deref(cached.entries)
        if self._index is not None:
            self._index.remove(request)

    def insert(self, request: SearchRequest, entries: Sequence[Entry]) -> None:
        """Cache *request* with its result, evicting the oldest entry."""
        if self.capacity == 0:
            return
        previous = self._window.pop(request, None)
        if previous is not None:
            self._evict(request, previous)
        cached = CachedQuery(
            request=request,
            entries={e.dn: e.copy() for e in entries},
            filter_attrs=attributes_of(request.filter),
        )
        self._window[request] = cached
        self._ref(cached.entries)
        if self._index is not None:
            self._index.add(request, cached)
        if self.negatives is not None:
            # A new cached query may contain a previously-missed
            # request; evictions below cannot create hits, so this is
            # the only invalidation point.
            self.negatives.invalidate()
        while len(self._window) > self.capacity:
            old_request, old_cached = self._window.popitem(last=False)
            self._evict(old_request, old_cached)

    def lookup(self, request: SearchRequest) -> Optional[Tuple[List[Entry], str]]:
        """Answer *request* from a containing cached query, if any.

        Returns (entries, cache key) on a hit, None on a miss.  Newest
        cached queries are consulted first (temporal locality); with the
        index only routed candidates are checked, in the same order.
        """
        self.lookups += 1
        if self.negatives is not None and self.negatives.known_miss(request):
            return None
        request_attrs = attributes_of(request.filter)
        if self._index is not None:
            window = (c.handle for c in self._index.candidates(request))
        else:
            window = reversed(self._window.values())
        for cached in window:
            if not cached.filter_attrs <= request_attrs:
                continue
            self.containment_checks += 1
            if query_contained_in(request, cached.request):
                self.hits += 1
                compiled = compile_filter_cached(request.filter)
                answer = [
                    request.project(entry)
                    for entry in cached.entries.values()
                    if request.in_scope(entry.dn) and compiled(entry)
                ]
                if self.policy == "lru":
                    self._window.move_to_end(cached.request)
                    if self._index is not None:
                        self._index.touch(cached.request)
                return answer, str(cached.request)
        if self.negatives is not None:
            self.negatives.note_miss(request)
        return None

    def entry_count(self) -> int:
        """Unique entries held in the window (counts toward replica size)."""
        return len(self._dn_refs)

    def stored_queries(self) -> List[SearchRequest]:
        """Cached requests, oldest first."""
        return list(self._window.keys())

    def clear(self) -> None:
        self._window.clear()
        self._dn_refs.clear()
        if self._index is not None:
            self._index.clear()
