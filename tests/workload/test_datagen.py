"""Tests for the synthetic enterprise directory generator."""

import pytest

from repro.ldap import DN, validate_entry
from repro.workload import DirectoryConfig, GeographyConfig, generate_directory


class TestStructure:
    def test_counts(self, small_directory):
        assert small_directory.employee_count == pytest.approx(600, abs=10)
        assert len(small_directory.departments) == 4 * 10
        assert len(small_directory.locations) == 20

    def test_geography_share(self, small_directory):
        """One geography holds ≈30% of employees (§7.1)."""
        share = len(small_directory.geography_employees("AP")) / small_directory.employee_count
        assert 0.25 <= share <= 0.35

    def test_employees_flat_under_country(self, small_directory):
        """§3.3: all employees of a country are children of the country
        entry — a flat namespace."""
        for cc, employees in small_directory.employees_by_country.items():
            country_dn = DN.parse(f"c={cc},o=xyz")
            for employee in employees:
                assert employee.dn.parent == country_dn

    def test_departments_under_their_division(self, small_directory):
        for dept in small_directory.departments:
            div = dept.first("divisionNumber")
            assert f"ou=div{div}" in str(dept.dn)

    def test_department_numbers_share_division_prefix(self, small_directory):
        """§3.1.2 semantic locality: dept 2406 belongs to division 24."""
        for dept in small_directory.departments:
            assert dept.first("departmentNumber").startswith(
                dept.first("divisionNumber")
            )

    def test_parents_exist_for_all_entries(self, small_directory):
        dns = {str(e.dn) for e in small_directory.entries}
        for entry in small_directory.entries:
            if str(entry.dn) != "o=xyz":
                assert str(entry.dn.parent) in dns


class TestSerialNumbers:
    def test_format_block_seq_country(self, small_directory):
        for cc, employees in small_directory.employees_by_country.items():
            for employee in employees:
                serial = employee.first("serialNumber")
                assert len(serial) == 8
                assert serial[:6].isdigit()
                assert serial[6:] == cc.upper()

    def test_blocks_are_per_country(self, small_directory):
        seen = {}
        for cc, blocks in small_directory.blocks_by_country.items():
            for block in blocks:
                assert block not in seen, "block allocated to two countries"
                seen[block] = cc

    def test_block_capacity_respected(self, small_directory):
        cap = small_directory.config.employees_per_block
        counts = {}
        for employee in small_directory.all_employees():
            block = employee.first("serialNumber")[:4]
            counts[block] = counts.get(block, 0) + 1
        assert max(counts.values()) <= cap

    def test_unique_serials(self, small_directory):
        serials = [e.first("serialNumber") for e in small_directory.all_employees()]
        assert len(serials) == len(set(serials))


class TestAttributes:
    def test_mail_format(self, small_directory):
        for cc, employees in small_directory.employees_by_country.items():
            for employee in employees[:5]:
                mail = employee.first("mail")
                assert mail.endswith(f"@{cc}.xyz.com")

    def test_employee_entry_size_stamped(self, small_directory):
        sizes = [e.estimated_size() for e in small_directory.all_employees()]
        avg = sum(sizes) / len(sizes)
        assert 5000 <= avg <= 7000  # ≈6KB like the paper's entries

    def test_schema_valid_employees(self, small_directory):
        for employee in small_directory.all_employees()[:20]:
            assert validate_entry(employee) == []

    def test_employee_departments_exist(self, small_directory):
        dept_numbers = {
            d.first("departmentNumber") for d in small_directory.departments
        }
        for employee in small_directory.all_employees()[:50]:
            assert employee.first("departmentNumber") in dept_numbers


class TestDeterminismAndConfig:
    def test_same_seed_same_directory(self):
        cfg = DirectoryConfig(employees=100, seed=5)
        a = generate_directory(cfg)
        b = generate_directory(cfg)
        assert [str(e.dn) for e in a.entries] == [str(e.dn) for e in b.entries]

    def test_different_seed_differs(self):
        a = generate_directory(DirectoryConfig(employees=100, seed=5))
        b = generate_directory(DirectoryConfig(employees=100, seed=6))
        assert [str(e.dn) for e in a.entries] != [str(e.dn) for e in b.entries]

    def test_custom_geographies(self):
        cfg = DirectoryConfig(
            employees=100,
            geographies=(
                GeographyConfig("X", (("aa", 0.5),)),
                GeographyConfig("Y", (("bb", 0.5),)),
            ),
        )
        d = generate_directory(cfg)
        assert set(d.countries()) == {"aa", "bb"}
        assert d.geography_countries("X") == ["aa"]

    def test_unknown_geography_rejected(self, small_directory):
        with pytest.raises(KeyError):
            small_directory.geography_countries("ZZ")

    def test_loadable_into_server(self, small_directory):
        from repro.server import DirectoryServer

        server = DirectoryServer("m")
        server.add_naming_context(small_directory.suffix)
        assert server.load(small_directory.entries) == len(small_directory.entries)
