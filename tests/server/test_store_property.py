"""Property test: EntryStore indexes stay consistent under mutation.

Random sequences of put/replace/delete must leave the store in a state
where index-driven candidate search agrees with a brute-force scan for
every probe filter — the soundness condition the server's correctness
rests on.
"""

from hypothesis import given, settings, strategies as st

from repro.ldap import DN, Entry, Scope, matches, parse_filter
from repro.ldap.filters import (
    And,
    Equality,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Present,
    Substring,
)
from repro.ldap.matching import compile_filter
from repro.server import EntryStore, SearchPlan

NAMES = [f"e{i}" for i in range(8)]
VALUES = ["aa", "ab", "ba", "bb", "ccc"]
# Integer-syntax values per sn value — includes the "9" vs "10" pair the
# old lexicographic OrderingIndex got wrong, plus a schema violator.
AGES = {"aa": "7", "ab": "9", "ba": "10", "bb": "41", "ccc": "oops"}

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(NAMES), st.sampled_from(VALUES)),
        st.tuples(st.just("delete"), st.sampled_from(NAMES), st.just("")),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=100, deadline=None)
@given(_ops, st.sampled_from(VALUES))
def test_index_scan_agreement(ops, probe):
    store = EntryStore()
    root = DN.parse("o=xyz")
    store.register_root(root)
    store.put(Entry(root, {"objectClass": ["organization"], "o": "xyz"}))

    for op, name, value in ops:
        dn = root.child(f"cn={name}")
        if op == "put":
            store.put(
                Entry(dn, {"objectClass": ["person"], "cn": name, "sn": value})
            )
        else:
            store.delete(dn)

    for flt_text in (
        f"(sn={probe})",
        f"(sn={probe[:1]}*)",
        f"(sn>={probe})",
        f"(sn<={probe})",
    ):
        flt = parse_filter(flt_text)
        truth = {e.dn for e in store.all_entries() if matches(flt, e)}
        candidates = store.candidates_for(flt)
        if candidates is not None:
            assert truth <= candidates, f"index dropped a match for {flt_text}"


# ----------------------------------------------------------------------
# planner property: candidates ⊇ brute-force matches for random trees
# ----------------------------------------------------------------------
def _leaf_predicates():
    preds = []
    for attr, values in (
        ("sn", VALUES),
        ("age", ["7", "9", "10", "41", "100", "oops"]),
        ("nosuchattr", ["zz"]),
    ):
        preds.append(Present(attr))
        for value in values:
            preds.append(Equality(attr, value))
            preds.append(GreaterOrEqual(attr, value))
            preds.append(LessOrEqual(attr, value))
        preds.append(Substring(attr, initial=values[0][:1]))
        preds.append(Substring(attr, any_parts=(values[-1][-2:],)))
    return preds


_filter_trees = st.recursive(
    st.sampled_from(_leaf_predicates()),
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3).map(lambda cs: And(tuple(cs))),
        st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(tuple(cs))),
        children.map(Not),
    ),
    max_leaves=6,
)


@settings(max_examples=150, deadline=None)
@given(_ops, _filter_trees)
def test_planner_superset_property(ops, flt):
    """Plan candidates are supersets of brute force for random AND/OR/NOT
    trees, and the compiled filter agrees with the interpreter."""
    store = EntryStore()
    root = DN.parse("o=xyz")
    store.register_root(root)
    store.put(Entry(root, {"objectClass": ["organization"], "o": "xyz"}))

    for op, name, value in ops:
        dn = root.child(f"cn={name}")
        if op == "put":
            store.put(
                Entry(
                    dn,
                    {
                        "objectClass": ["person"],
                        "cn": name,
                        "sn": value,
                        "age": AGES[value],
                    },
                )
            )
        else:
            store.delete(dn)

    truth = {e.dn for e in store.all_entries() if matches(flt, e)}
    plan = store.plan_for(flt)
    assert plan.strategy in SearchPlan.STRATEGIES
    if plan.candidates is not None:
        missing = truth - plan.candidates
        assert not missing, f"plan {plan.strategy} dropped {missing} for {flt}"

    compiled = compile_filter(flt)
    for entry in store.all_entries():
        assert compiled(entry) == matches(flt, entry), f"compile mismatch for {flt}"


@settings(max_examples=100, deadline=None)
@given(_ops)
def test_tree_structure_consistent(ops):
    """children_of and iter_scope agree with the live DN set."""
    store = EntryStore()
    root = DN.parse("o=xyz")
    store.register_root(root)
    store.put(Entry(root, {"objectClass": ["organization"], "o": "xyz"}))

    live = {root}
    for op, name, value in ops:
        dn = root.child(f"cn={name}")
        if op == "put":
            store.put(Entry(dn, {"objectClass": ["person"], "cn": name, "sn": value or "x"}))
            live.add(dn)
        else:
            store.delete(dn)
            live.discard(dn)

    assert set(store.children_of(root)) == live - {root}
    subtree = {e.dn for e in store.iter_scope(root, Scope.SUB)}
    assert subtree == live
    assert len(store) == len(live)
