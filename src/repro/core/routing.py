"""Sublinear candidate routing for query containment (the QC scan).

``FilterReplica._answer`` and ``RecentQueryCache.lookup`` both scan a
population of stored queries calling :func:`~repro.core.containment.
query_contained_in` until one contains the incoming query — linear in
the population size.  The :class:`ContainmentIndex` here replaces the
scan with candidate routing: every registered query is summarized by

* a set of **guard atoms** — a necessary condition on the incoming
  query's leaf predicates for containment to be provable (see
  :func:`guard_atoms`; docs/ROUTING.md carries the soundness argument),
* its **region key** — ``base.reversed_key()``, so the region-
  containment prerequisite (stored base is ancestor-or-self of the
  query base) becomes prefix probing of the query's own key.

``candidates(q)`` returns the registered queries whose guard atoms
intersect ``probe_atoms(q)`` *and* whose region key prefixes ``q``'s —
a superset of everything the linear scan could match, usually a few
entries instead of the whole population.  A bounded positive memo
(query → first containing candidate) short-circuits repeat queries; it
is invalidated lazily through candidate liveness, so ``remove()`` (and
cache eviction, which removes) needs no memo bookkeeping.

Completeness contract (property-tested in
``tests/core/test_routing.py``): for every pair with
``query_contained_in(q, qs)`` true, ``qs`` appears in
``candidates(q)``.  The index never *proves* containment — callers
still run the full check on each candidate — so a routing bug can cost
recall of nothing: missing candidates are impossible by the tests, and
extra candidates only cost a check.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ldap.attributes import AttributeRegistry, DEFAULT_REGISTRY
from ..ldap.filters import (
    And,
    Equality,
    Filter,
    Not,
    Or,
    Predicate,
    Substring,
    iter_predicates,
    simplify,
)
from ..ldap.query import SearchRequest
from .amq import AdaptiveQuotientFilter

__all__ = ["ContainmentIndex", "Candidate", "guard_atoms", "probe_atoms"]

#: ``(kind, ...)`` tuples; kinds: ``eq``, ``pfx``, ``attr``, ``any``.
Atom = Tuple[str, ...]

_ANY: Atom = ("any",)

#: Memo entries kept before the positive memo is wholesale cleared.
MEMO_CAPACITY = 65_536

#: Populations below this skip the AMQ prescreen: a dict probe on a
#: small atom map is already one hash, so the summary only pays off
#: once the guard-atom map is large (docs/ROUTING.md §10).
AMQ_MIN_POPULATION = 1_024


def _norm(registry: AttributeRegistry, attr: str, value: str) -> str:
    return str(registry.get(attr).normalize(value))


def _predicate_guard(pred: Predicate, registry: AttributeRegistry) -> Atom:
    """The single guard atom of a stored leaf predicate.

    Chosen so that ``predicate_contained_in(p1, pred)`` (for any query
    leaf ``p1``) implies ``p1`` probes this atom:

    * ``Equality`` is only containable by an equal-valued equality →
      ``("eq", attr, value)``;
    * ``Substring`` with an anchored initial needs the query value /
      initial to start with it → ``("pfx", attr, initial)``;
    * everything else (ranges, presence, approx, unanchored substrings)
      only requires a query predicate on the same attribute →
      ``("attr", attr)``.
    """
    key = pred.attr_key
    if isinstance(pred, Equality):
        value = _norm(registry, pred.attr, pred.value)
        if value:
            return ("eq", key, value)
    elif isinstance(pred, Substring) and pred.initial:
        prefix = _norm(registry, pred.attr, pred.initial)
        if prefix:
            return ("pfx", key, prefix)
    return ("attr", key)


_STRENGTH = {"any": 0, "attr": 1, "pfx": 2, "eq": 3}


def _guard_score(atoms: FrozenSet[Atom]) -> Tuple[int, int, int]:
    """Selectivity rank of one guard set (higher = better).

    A guard set has OR semantics, so it is as weak as its weakest atom;
    prefer any-free sets, then a stronger weakest atom, then fewer
    atoms.
    """
    has_any = any(a[0] == "any" for a in atoms)
    weakest = min(_STRENGTH[a[0]] for a in atoms)
    return (0 if has_any else 1, weakest, -len(atoms))


def guard_atoms(flt: Filter, registry: Optional[AttributeRegistry] = None) -> FrozenSet[Atom]:
    """Guard atoms of a *stored* filter.

    Necessary condition: if ``filter_contained_in(q, flt)`` holds for
    any query filter ``q``, then ``probe_atoms(q)`` intersects
    ``guard_atoms(flt)``.  Shape rules mirror the recursion of
    :func:`repro.core.filter_containment.filter_contained_in`:

    * AND — containment requires ``q ⊆ c`` for *every* conjunct, so any
      single conjunct's guards suffice; the most selective one is kept.
    * OR — ``q ⊆ (| d…)`` may be proved through any one disjunct (and a
      disjunctive ``q`` through different disjuncts per branch), so the
      guard is the union over children.  This is why a plain
      attribute-subset prescreen would be unsound here.
    * NOT and other unprovable shapes — the always-match ``("any",)``
      bucket.
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    return _guard(simplify(flt), reg)


def _guard(flt: Filter, reg: AttributeRegistry) -> FrozenSet[Atom]:
    if isinstance(flt, Predicate):
        return frozenset((_predicate_guard(flt, reg),))
    if isinstance(flt, And):
        best: Optional[FrozenSet[Atom]] = None
        for child in flt.children:
            atoms = _guard(child, reg)
            if best is None or _guard_score(atoms) > _guard_score(best):
                best = atoms
        return best if best is not None else frozenset((_ANY,))
    if isinstance(flt, Or):
        merged: Set[Atom] = set()
        for child in flt.children:
            merged |= _guard(child, reg)
        return frozenset(merged) if merged else frozenset((_ANY,))
    if isinstance(flt, Not):
        return frozenset((_ANY,))
    return frozenset((_ANY,))  # pragma: no cover - all node kinds handled


def probe_atoms(flt: Filter, registry: Optional[AttributeRegistry] = None) -> Set[Atom]:
    """Atoms an incoming *query* filter satisfies.

    Every leaf predicate contributes its attribute atom; equalities add
    their exact-value atom plus every prefix (matching stored anchored
    substrings); anchored substrings add their initial's prefixes.  The
    ``("any",)`` bucket is always probed.  Probing all leaves — also
    those under NOT — keeps the set a superset of what any containment
    derivation can require.
    """
    reg = registry if registry is not None else DEFAULT_REGISTRY
    atoms: Set[Atom] = {_ANY}
    for pred in iter_predicates(flt):
        key = pred.attr_key
        atoms.add(("attr", key))
        if isinstance(pred, Equality):
            value = _norm(reg, pred.attr, pred.value)
            if value:
                atoms.add(("eq", key, value))
                for i in range(1, len(value) + 1):
                    atoms.add(("pfx", key, value[:i]))
        elif isinstance(pred, Substring) and pred.initial:
            prefix = _norm(reg, pred.attr, pred.initial)
            for i in range(1, len(prefix) + 1):
                atoms.add(("pfx", key, prefix[:i]))
    return atoms


class Candidate:
    """One registered query plus its routing summary."""

    __slots__ = ("uid", "seq", "request", "handle", "atoms", "region")

    def __init__(
        self,
        uid: int,
        seq: int,
        request: SearchRequest,
        handle: object,
        atoms: FrozenSet[Atom],
        region: Tuple,
    ):
        self.uid = uid
        self.seq = seq
        self.request = request
        self.handle = handle
        self.atoms = atoms
        self.region = region

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Candidate(#{self.uid}, {self.request})"


class ContainmentIndex:
    """Candidate index over a population of registered queries.

    Args:
        registry: attribute registry for atom normalization (must match
            the one containment checks run under; default registry by
            default, like the memoized ``query_contained_in``).
        order: candidate iteration order — ``"insertion"`` replays the
            stored-filter dict's first-match semantics (and enables the
            positive memo); ``"recency"`` iterates newest-first,
            mirroring the recent-query cache's window (the memo stays
            off: a later insert may preempt an older winner).
        amq: keep an :class:`~repro.core.amq.AdaptiveQuotientFilter`
            over the guard atoms and prescreen every probe atom through
            it before touching the posting map — a definitely-absent
            atom costs one hash instead of a dict miss on a population-
            sized map.  ``False`` bypasses the prescreen (the oracle
            for the byte-identical-candidates property tests).
        amq_min_population: registered queries needed before the
            prescreen activates (tests pass 0 to force it on).
    """

    ORDERS = ("insertion", "recency")

    def __init__(
        self,
        registry: Optional[AttributeRegistry] = None,
        order: str = "insertion",
        memo_capacity: int = MEMO_CAPACITY,
        amq: bool = True,
        amq_min_population: int = AMQ_MIN_POPULATION,
    ):
        if order not in self.ORDERS:
            raise ValueError(f"unknown order {order!r}; pick from {self.ORDERS}")
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._order = order
        self._memo_capacity = memo_capacity
        self._amq_enabled = amq
        self._amq_min_population = amq_min_population
        self._amq: Optional[AdaptiveQuotientFilter] = None
        self._amq_stale = 0
        self._uids = itertools.count(1)
        self._seqs = itertools.count(1)
        self._by_request: Dict[SearchRequest, Candidate] = {}
        self._atom_postings: Dict[Atom, Set[Candidate]] = {}
        self._memo: Dict[SearchRequest, Candidate] = {}
        # plain-int accounting; owners mirror these into metric counters
        self.probes = 0
        self.candidates_yielded = 0
        self.memo_hits = 0

    # ------------------------------------------------------------------
    # population maintenance
    # ------------------------------------------------------------------
    def add(self, request: SearchRequest, handle: object) -> Candidate:
        """Register *request*; an existing registration is replaced."""
        self.remove(request)
        cand = Candidate(
            uid=next(self._uids),
            seq=next(self._seqs),
            request=request,
            handle=handle,
            atoms=guard_atoms(request.filter, self._registry),
            region=request.base.reversed_key(),
        )
        self._by_request[request] = cand
        for atom in cand.atoms:
            self._atom_postings.setdefault(atom, set()).add(cand)
            if self._amq is not None:
                self._amq.add(atom)
        return cand

    def remove(self, request: SearchRequest) -> bool:
        """Unregister *request*; memo entries die by liveness check.

        The AMQ cannot delete: removed guard atoms stay as stale
        "maybe" entries (sound — they only re-admit the dict probe the
        prescreen would have skipped) until staleness reaches the live
        population, at which point the summary is rebuilt.
        """
        cand = self._by_request.pop(request, None)
        if cand is None:
            return False
        for atom in cand.atoms:
            postings = self._atom_postings.get(atom)
            if postings is not None:
                postings.discard(cand)
                if not postings:
                    del self._atom_postings[atom]
        if self._amq is not None:
            self._amq_stale += len(cand.atoms)
            if self._amq_stale > max(64, len(self._atom_postings)):
                self._amq = None  # rebuilt lazily on the next prescreen
                self._amq_stale = 0
        return True

    def touch(self, request: SearchRequest) -> None:
        """Refresh *request*'s recency stamp (LRU move-to-end)."""
        cand = self._by_request.get(request)
        if cand is not None:
            cand.seq = next(self._seqs)

    def clear(self) -> None:
        self._by_request.clear()
        self._atom_postings.clear()
        self._memo.clear()
        self._amq = None
        self._amq_stale = 0

    def __len__(self) -> int:
        return len(self._by_request)

    def __contains__(self, request: SearchRequest) -> bool:
        return request in self._by_request

    # ------------------------------------------------------------------
    # AMQ prescreen
    # ------------------------------------------------------------------
    @property
    def amq(self) -> Optional[AdaptiveQuotientFilter]:
        """The live guard-atom summary (None while inactive)."""
        return self._amq

    def _active_amq(self) -> Optional[AdaptiveQuotientFilter]:
        """The prescreen summary, (re)built once the population
        justifies it; None below the activation threshold."""
        if not self._amq_enabled:
            return None
        if len(self._by_request) < self._amq_min_population:
            return None
        if self._amq is None:
            summary = AdaptiveQuotientFilter(
                expected_items=max(64, 2 * len(self._atom_postings))
            )
            for atom in self._atom_postings:
                summary.add(atom)
            self._amq = summary
            self._amq_stale = 0
        return self._amq

    # ------------------------------------------------------------------
    # candidate routing
    # ------------------------------------------------------------------
    def candidates(self, request: SearchRequest) -> List[Candidate]:
        """Registered queries that could contain *request*, in order.

        Guard-atom buckets are intersected with the region prefix
        probes of ``request.base.reversed_key()`` — a registered query
        can only contain *request* when its base is an ancestor-or-self
        of the request's base (:func:`~repro.core.containment.
        region_contained_in`), i.e. its region key is one of the
        ``len(rk) + 1`` prefixes of the request's own key.  The region
        test is a per-candidate membership check against that small
        prefix set, so its cost tracks the matched candidates, not the
        population.  With the AMQ prescreen active, probe atoms the
        summary rules out skip the posting map entirely; the summary
        has no false negatives, so the matched set — and therefore the
        returned candidates — are identical with and without it.
        """
        self.probes += 1
        if not self._by_request:
            return []
        amq = self._active_amq()
        atoms: Iterable[Atom] = probe_atoms(request.filter, self._registry)
        if amq is not None:
            atoms = amq.screen(atoms)
        matched: Set[Candidate] = set()
        postings_get = self._atom_postings.get
        for atom in atoms:
            postings = postings_get(atom)
            if postings:
                matched |= postings
        if not matched:
            return []
        rk = request.base.reversed_key()
        prefixes = {rk[:i] for i in range(len(rk) + 1)}
        matched = {c for c in matched if c.region in prefixes}
        if self._order == "insertion":
            ordered = sorted(matched, key=lambda c: c.uid)
        else:
            ordered = sorted(matched, key=lambda c: -c.seq)
        self.candidates_yielded += len(ordered)
        return ordered

    # ------------------------------------------------------------------
    # positive memo (insertion order only)
    # ------------------------------------------------------------------
    def memo_get(self, request: SearchRequest) -> Optional[Candidate]:
        """The memoized containing candidate for *request*, if still
        registered.  Stale entries (removed/evicted winners) are
        dropped on sight — new registrations can never preempt an
        insertion-ordered winner, so liveness is the only condition."""
        if self._order != "insertion":
            return None
        cand = self._memo.get(request)
        if cand is None:
            return None
        if self._by_request.get(cand.request) is not cand:
            del self._memo[request]
            return None
        self.memo_hits += 1
        return cand

    def memo_put(self, request: SearchRequest, cand: Candidate) -> None:
        if self._order != "insertion":
            return
        if len(self._memo) >= self._memo_capacity:
            self._memo.clear()
        self._memo[request] = cand
