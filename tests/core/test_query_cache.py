"""Tests for the recent-user-query cache (§7.4)."""

import pytest

from repro.core import RecentQueryCache
from repro.ldap import Entry, Scope, SearchRequest


def q(filter_text: str) -> SearchRequest:
    return SearchRequest("", Scope.SUB, filter_text)


def person(name: str, **attrs) -> Entry:
    base = {"objectClass": ["person"], "cn": name, "sn": "T"}
    base.update(attrs)
    return Entry(f"cn={name},o=xyz", base)


class TestWindow:
    def test_insert_and_len(self):
        cache = RecentQueryCache(3)
        cache.insert(q("(cn=a)"), [person("a")])
        assert len(cache) == 1

    def test_fifo_eviction(self):
        cache = RecentQueryCache(2)
        for name in ("a", "b", "c"):
            cache.insert(q(f"(cn={name})"), [person(name)])
        stored = [str(r.filter) for r in cache.stored_queries()]
        assert stored == ["(cn=b)", "(cn=c)"]

    def test_reinsert_refreshes_position(self):
        cache = RecentQueryCache(2)
        cache.insert(q("(cn=a)"), [person("a")])
        cache.insert(q("(cn=b)"), [person("b")])
        cache.insert(q("(cn=a)"), [person("a")])  # refresh, not new slot
        cache.insert(q("(cn=c)"), [person("c")])
        stored = [str(r.filter) for r in cache.stored_queries()]
        assert stored == ["(cn=a)", "(cn=c)"]

    def test_zero_capacity_never_stores(self):
        cache = RecentQueryCache(0)
        cache.insert(q("(cn=a)"), [person("a")])
        assert len(cache) == 0
        assert cache.lookup(q("(cn=a)")) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RecentQueryCache(-1)

    def test_clear(self):
        cache = RecentQueryCache(2)
        cache.insert(q("(cn=a)"), [person("a")])
        cache.clear()
        assert len(cache) == 0


class TestLookup:
    def test_exact_hit(self):
        cache = RecentQueryCache(5)
        cache.insert(q("(cn=a)"), [person("a")])
        found = cache.lookup(q("(cn=a)"))
        assert found is not None
        entries, source = found
        assert [e.first("cn") for e in entries] == ["a"]

    def test_contained_hit(self):
        cache = RecentQueryCache(5)
        cache.insert(
            q("(serialNumber=0042*IN)"),
            [person("a", serialNumber="004205IN"), person("b", serialNumber="004299IN")],
        )
        found = cache.lookup(q("(serialNumber=004205IN)"))
        assert found is not None
        entries, _source = found
        assert [e.first("cn") for e in entries] == ["a"]

    def test_miss(self):
        cache = RecentQueryCache(5)
        cache.insert(q("(cn=a)"), [person("a")])
        assert cache.lookup(q("(cn=b)")) is None

    def test_attribute_prescreen_blocks_cross_attr(self):
        cache = RecentQueryCache(5)
        cache.insert(q("(mail=a@b.c)"), [person("a", mail="a@b.c")])
        assert cache.lookup(q("(serialNumber=1)")) is None

    def test_newest_consulted_first(self):
        cache = RecentQueryCache(5)
        cache.insert(q("(sn=*)"), [person("old")])
        cache.insert(q("(sn=T)"), [person("new")])
        _entries, source = cache.lookup(q("(sn=T)"))
        assert "(sn=T)" in source

    def test_hit_statistics(self):
        cache = RecentQueryCache(5)
        cache.insert(q("(cn=a)"), [person("a")])
        cache.lookup(q("(cn=a)"))
        cache.lookup(q("(cn=zz)"))
        assert cache.lookups == 2
        assert cache.hits == 1

    def test_projection_applied(self):
        cache = RecentQueryCache(5)
        cache.insert(q("(cn=a)"), [person("a", mail="a@x.com")])
        narrowed = SearchRequest("", Scope.SUB, "(cn=a)", ["cn"])
        entries, _ = cache.lookup(narrowed)
        assert not entries[0].has_attribute("mail")


class TestEntryCount:
    def test_unique_entries_counted(self):
        cache = RecentQueryCache(5)
        shared = person("shared")
        cache.insert(q("(cn=shared)"), [shared])
        cache.insert(q("(sn=T)"), [shared, person("other")])
        assert cache.entry_count() == 2

    def test_cached_entries_independent_of_source(self):
        cache = RecentQueryCache(5)
        entry = person("a")
        cache.insert(q("(cn=a)"), [entry])
        entry.put("cn", "mutated")
        entries, _ = cache.lookup(q("(cn=a)"))
        assert entries[0].first("cn") == "a"
