"""Integration: one real bench run emits schema-valid results JSON.

Runs ``benchmarks/bench_fig2_referrals.py`` (the cheapest bench — no
session workload fixture) in a subprocess, then validates the JSON it
wrote with the same checker CI uses (``benchmarks/validate_results.py``,
schema in docs/OBSERVABILITY.md §5).
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS = REPO_ROOT / "benchmarks" / "results"


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "validate_results", REPO_ROOT / "benchmarks" / "validate_results.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def fig2_json():
    fig2 = RESULTS / "fig2.json"
    if fig2.exists():
        fig2.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_fig2_referrals.py",
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"bench run failed:\n{proc.stdout}\n{proc.stderr}"
    assert fig2.exists(), "bench_fig2 must write benchmarks/results/fig2.json"
    return fig2


def test_fig2_json_is_schema_valid(fig2_json):
    validator = _load_validator()
    assert validator.validate_file(fig2_json) == []


def test_fig2_json_carries_required_metrics(fig2_json):
    payload = json.loads(fig2_json.read_text())
    assert payload["bench"] == "fig2"
    metrics = payload["metrics"]
    for key in (
        "round_trips",
        "bytes_sent",
        "qc_cache_hits",
        "qc_cache_misses",
        "qc_cache_evictions",
    ):
        assert isinstance(metrics[key], (int, float)), key
    # Figure 2's whole point: referral chasing costs real round trips.
    assert metrics["round_trips"] >= 4
    assert payload["paper_expected"]["worst_round_trips"] == 4


def test_validator_rejects_broken_payloads(tmp_path):
    validator = _load_validator()
    good = {
        "bench": "sample",
        "params": {"n": 1},
        "metrics": {
            "round_trips": 1,
            "bytes_sent": 0,
            "qc_cache_hits": 0,
            "qc_cache_misses": 0,
        },
        "paper_expected": None,
    }
    path = tmp_path / "sample.json"
    path.write_text(json.dumps(good))
    assert validator.validate_file(path) == []

    for mutate, fragment in [
        (lambda p: p.pop("metrics"), "metrics"),
        (lambda p: p.__setitem__("bench", "other"), "stem"),
        (lambda p: p["metrics"].pop("round_trips"), "round_trips"),
        (lambda p: p["metrics"].__setitem__("round_trips", "many"), "number"),
        (lambda p: p.__setitem__("paper_expected", 7), "paper_expected"),
    ]:
        broken = json.loads(json.dumps(good))
        mutate(broken)
        path.write_text(json.dumps(broken))
        problems = validator.validate_file(path)
        assert problems, f"expected a failure mentioning {fragment!r}"
        assert any(fragment in p for p in problems)


def test_baseline_diff_gates_regression_sensitive_metrics():
    validator = _load_validator()
    baseline = {
        "round_trips": 100,
        "baseline_avg_ms": 10.0,
        "searches_per_s": 500.0,
        "qc_cache_hits": 50,
        "zero_elapsed_s": 0,
        "s25_recovery_seconds": 0.010,
    }
    # Within tolerance, improvements, non-gated churn, zero baselines,
    # wall-time jitter under the sanity multiple: ok.
    ok = {
        "round_trips": 110,  # +10% < 20%
        "baseline_avg_ms": 2.0,  # improvement
        "searches_per_s": 900.0,  # improvement
        "qc_cache_hits": 5000,  # informational, not gated
        "zero_elapsed_s": 3,  # baseline 0: no ratio, skipped
        "s25_recovery_seconds": 0.050,  # 5x: noisy but under the 8x bound
    }
    assert validator.diff_metrics(ok, baseline, 0.20) == []

    regressed = {
        "round_trips": 130,  # +30%
        "baseline_avg_ms": 13.0,  # +30%
        "searches_per_s": 300.0,  # -40%
        "s25_recovery_seconds": 0.586,  # 58x: a cold-start artifact
    }
    problems = validator.diff_metrics(regressed, baseline, 0.20)
    assert len(problems) == 4
    assert any("round_trips" in p for p in problems)
    assert any("baseline_avg_ms" in p for p in problems)
    assert any("searches_per_s" in p for p in problems)
    assert any(
        "s25_recovery_seconds" in p and "sanity" in p for p in problems
    )


def test_baseline_diff_fails_on_missing_current_result(tmp_path):
    validator = _load_validator()
    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    payload = {"bench": "sample", "params": {}, "metrics": {"round_trips": 1}}
    (baselines / "sample.json").write_text(json.dumps(payload))
    assert validator.diff_against_baselines(str(results), str(baselines), 0.20) == 1
    (results / "sample.json").write_text(json.dumps(payload))
    assert validator.diff_against_baselines(str(results), str(baselines), 0.20) == 0
