"""LDAP client with referral chasing.

Reproduces the distributed operation processing of §2.3/Figure 2: the
client sends a search to some server; if the server does not hold the
target it answers with its default (superior) referral; once the target
server is found, continuation references for subordinate naming
contexts are chased with modified bases until the result is complete.

Every request/response exchange is charged as one round trip on the
:class:`~repro.server.network.SimulatedNetwork`, which is how the
bench for Figure 2 counts the four round trips of the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..ldap.entry import Entry
from ..ldap.query import SearchRequest
from .network import SimulatedNetwork
from .operations import Referral, ResultCode, SearchResult

__all__ = ["ChasedResult", "LdapClient", "ReferralLimitExceeded"]


class ReferralLimitExceeded(RuntimeError):
    """Raised when referral chasing exceeds the hop limit (loop guard)."""


@dataclass
class ChasedResult:
    """Outcome of a fully processed distributed search.

    Attributes:
        entries: all entries gathered across servers (DN-deduplicated).
        round_trips: client/server exchanges used (Figure 2's metric).
        servers_contacted: URLs in contact order, repeats included.
        unresolved: referrals that could not be chased (unknown server).
    """

    entries: List[Entry] = field(default_factory=list)
    round_trips: int = 0
    servers_contacted: List[str] = field(default_factory=list)
    unresolved: List[Referral] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when no referral was left unchased."""
        return not self.unresolved


class LdapClient:
    """A minimally-directory-enabled client (§3.1.1) that chases referrals.

    Args:
        network: the simulated network carrying requests.
        max_hops: referral-chasing budget guarding against loops.
    """

    def __init__(self, network: SimulatedNetwork, max_hops: int = 32):
        self.network = network
        self.max_hops = max_hops

    def search(self, server_url: str, request: SearchRequest) -> ChasedResult:
        """Run *request* starting at *server_url*, chasing every referral.

        Follows the two referral flavours of §2.3:

        * name-resolution (superior) referrals — re-send the *same*
          request to the referred server;
        * continuation references — re-send with the base *modified* to
          the subordinate context's target DN.
        """
        result = ChasedResult()
        seen_entry_dns: Set = set()
        # Work list of (server url, request) pairs still to execute.
        pending: List[Tuple[str, SearchRequest]] = [(server_url, request)]
        visited: Set[Tuple[str, str]] = set()
        hops = 0

        while pending:
            url, current = pending.pop(0)
            key = (url, str(current))
            if key in visited:
                continue  # referral loop — already asked this exact question
            visited.add(key)
            hops += 1
            if hops > self.max_hops:
                raise ReferralLimitExceeded(
                    f"exceeded {self.max_hops} hops chasing referrals for {request}"
                )

            try:
                server = self.network.resolve(url)
            except KeyError:
                result.unresolved.extend(
                    [Referral(url, current.base)]
                )
                continue

            self.network.charge_round_trip()
            result.round_trips += 1
            result.servers_contacted.append(server.url)

            response: SearchResult = server.search(current)
            self.network.charge_entries(
                len(response.entries),
                sum(e.estimated_size() for e in response.entries),
            )
            self.network.charge_referrals(len(response.referrals))

            for entry in response.entries:
                if entry.dn not in seen_entry_dns:
                    seen_entry_dns.add(entry.dn)
                    result.entries.append(entry)

            for referral in response.referrals:
                if response.code is ResultCode.REFERRAL and referral.target == current.base:
                    # Superior referral: same request, different server.
                    pending.append((referral.url, current))
                else:
                    # Continuation reference: modified base.
                    pending.append((referral.url, current.with_base(referral.target)))

        return result
