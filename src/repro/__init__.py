"""repro — Filter Based Directory Replication (ICDCS 2005), reproduced.

A self-contained Python implementation of Apurva Kumar's *Filter Based
Directory Replication: Algorithms and Performance*:

* :mod:`repro.ldap` — the LDAP v3 substrate (DNs, entries, filters,
  queries, controls, schema, LDIF);
* :mod:`repro.server` — simulated directory servers, partitioning,
  referral-chasing clients and a message-counting network;
* :mod:`repro.sync` — the ReSync filter-synchronization protocol plus
  changelog / tombstone / full-reload baselines;
* :mod:`repro.core` — the paper's contribution: query/filter
  containment, LDAP templates, subtree and filter replicas, filter
  generalization, dynamic selection, recent-query caching;
* :mod:`repro.workload` — synthetic enterprise directory and Table 1
  workload generation;
* :mod:`repro.metrics` — the experiment harness driving the benches.

Quickstart::

    from repro.workload import generate_directory, WorkloadGenerator
    from repro.server import DirectoryServer
    from repro.sync import ResyncProvider
    from repro.core import FilterReplica
    from repro.ldap import SearchRequest, Scope

    directory = generate_directory()
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)
    provider = ResyncProvider(master)

    replica = FilterReplica("branch")
    replica.add_filter(
        SearchRequest("", Scope.SUB, "(serialNumber=0001*IN)"), provider
    )
    answer = replica.answer(
        SearchRequest("", Scope.SUB, "(serialNumber=000105IN)")
    )
    assert answer.is_hit
"""

__version__ = "1.0.0"

__all__ = ["ldap", "server", "sync", "core", "workload", "metrics"]
