"""E13 — §3.3 ablation: partial replication of a flat namespace.

Paper: carrier directories keep millions of subscribers under a single
container entry.  "Since subtree based replicas can not partially
replicate the container's children, large replicas need to be
deployed. Filter based replication can be used to selectively
replicate entries from a flat namespace."

The bench builds a scaled-down carrier DIT (all subscribers flat under
``ou=subscribers``), a Zipf-skewed MSISDN lookup workload, and compares:

* subtree model — its only useful unit is the whole container (a
  per-subscriber context would carry meta information per entry);
* filter model — generalized ``(telephoneNumber=<prefix>*)`` exchange
  filters selecting just the hot prefixes.
"""

from __future__ import annotations

import random

import pytest

from repro.core import FilterReplica, SubtreeReplica
from repro.ldap import Scope, SearchRequest
from repro.server import DirectoryServer, SimulatedNetwork
from repro.sync import ResyncProvider
from repro.workload import CarrierConfig, generate_carrier_directory
from repro.workload.distributions import ZipfSampler

from .common import report

N_QUERIES = 4000


@pytest.fixture(scope="module")
def carrier_setup():
    directory = generate_carrier_directory(CarrierConfig(subscribers=4000))
    master = DirectoryServer("master")
    master.add_naming_context(directory.suffix)
    master.load(directory.entries)

    rng = random.Random(17)
    by_prefix = {}
    for sub in directory.subscribers:
        by_prefix.setdefault(sub.first("telephoneNumber")[:6], []).append(sub)
    prefix_sampler = ZipfSampler(sorted(by_prefix), exponent=1.0, rng=rng)
    queries = []
    for _ in range(N_QUERIES):
        prefix = prefix_sampler.sample()
        sub = rng.choice(by_prefix[prefix])
        queries.append(
            SearchRequest(
                "", Scope.SUB, f"(telephoneNumber={sub.first('telephoneNumber')})"
            )
        )
    return directory, master, queries


def run_replica(replica, queries):
    hits = 0
    for query in queries:
        if replica.answer(query).is_hit:
            hits += 1
    return hits / len(queries)


def test_flat_namespace_partial_replication(benchmark, carrier_setup):
    directory, master, queries = carrier_setup
    total = len(directory.subscribers)
    train, evaluate = queries[: N_QUERIES // 2], queries[N_QUERIES // 2 :]
    rows = []

    # Filter model: hot exchange prefixes from the training half.
    counts = {}
    for query in train:
        prefix = str(query.filter)[len("(telephoneNumber=") : -1][:6]
        counts[prefix] = counts.get(prefix, 0) + 1
    hot = sorted(counts, key=counts.get, reverse=True)

    provider = ResyncProvider(master)
    for k in (2, 5, 10, 20):
        replica = FilterReplica("branch", network=SimulatedNetwork())
        for prefix in hot[:k]:
            replica.add_filter(
                SearchRequest("", Scope.SUB, f"(telephoneNumber={prefix}*)"),
                provider,
            )
        hit = run_replica(replica, evaluate)
        rows.append(
            ("filter", k, replica.entry_count(), replica.entry_count() / total, hit)
        )

    # Subtree model: the only unit below the suffix is the whole flat
    # container (§3.3) — all or nothing.
    subtree = SubtreeReplica("branch", network=SimulatedNetwork())
    subtree.add_context(directory.container_dn)
    subtree.sync(provider)
    scoped = [q.with_base(directory.container_dn) for q in evaluate]
    hits = sum(1 for q in scoped if subtree.answer(q).is_hit)
    rows.append(
        (
            "subtree",
            1,
            subtree.entry_count(),
            subtree.entry_count() / total,
            hits / len(scoped),
        )
    )

    filter_rows = [r for r in rows if r[0] == "filter"]
    report(
        "flat_namespace",
        "Flat carrier namespace: selective filters vs all-or-nothing subtree",
        ["model", "units", "entries", "size frac", "hit ratio"],
        rows,
        params={"subscribers": total, "queries": N_QUERIES},
        metrics={
            "filter_best_hit": max((r[4] for r in filter_rows), default=0.0),
            "filter_min_size_frac": min((r[3] for r in filter_rows), default=0.0),
            "subtree_size_frac": rows[-1][3],
        },
        paper_expected={
            "shape": "filters replicate a flat container selectively; subtree cannot"
        },
    )
    # Paper shape: useful hit ratios at small fractions of the container.
    assert any(frac <= 0.25 and hit >= 0.5 for _m, _k, _e, frac, hit in filter_rows)
    # The subtree replica must hold (essentially) everything for its hit.
    subtree_row = rows[-1]
    assert subtree_row[3] > 0.99

    # Timed unit: one filter-replica answer on the flat namespace.
    replica = FilterReplica("bench", network=SimulatedNetwork())
    for prefix in hot[:5]:
        replica.add_filter(
            SearchRequest("", Scope.SUB, f"(telephoneNumber={prefix}*)"), provider
        )
    sample = evaluate[0]
    benchmark(lambda: replica.answer(sample))
